//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic mini property-testing engine covering the
//! strategy combinators its test suites use: ranges, `any`, tuples,
//! `prop_map`, `collection::vec`, `prop_oneof!`, `prop::option::of`,
//! and `prop::sample::Index`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the
//!   panic message (every generated binding is `Debug`-printed by
//!   `proptest!`); minimisation is manual.
//! * **Fixed case count** (256 per property) with a deterministic
//!   per-property seed, so failures reproduce exactly across runs.
//! * `.proptest-regressions` files are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Cases generated per `proptest!` property.
pub const CASES: u64 = 256;

/// The deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for one (property, case) pair. `label` is the
    /// property name so distinct properties draw distinct streams.
    pub fn for_case(label: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Uniform index in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n.max(1))
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (the engine of
/// `prop_oneof!`).
pub fn one_of<V: 'static>(alternatives: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
    assert!(
        !alternatives.is_empty(),
        "prop_oneof! needs at least one arm"
    );
    BoxedStrategy(Rc::new(move |rng| {
        let i = rng.below(alternatives.len() as u64) as usize;
        alternatives[i].generate(rng)
    }))
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Whole-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::sample::Index`, `prop::option::of`,
/// `prop::collection`).
pub mod prop {
    pub use crate::collection;

    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection whose length is only known at use
        /// time.
        #[derive(Copy, Clone, Debug)]
        pub struct Index(u64);

        impl Index {
            /// This index reduced to `[0, len)`.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }

    pub mod option {
        use crate::{BoxedStrategy, Strategy};
        use std::rc::Rc;

        /// `Option` strategy: `None` in roughly one case out of five.
        pub fn of<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>> {
            BoxedStrategy(Rc::new(move |rng| {
                if rng.below(5) == 0 {
                    None
                } else {
                    Some(inner.generate(rng))
                }
            }))
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, one_of, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines deterministic property tests.
///
/// Each property runs [`CASES`] generated cases; on failure the panic
/// message includes the case number and the `Debug` rendering of every
/// generated input.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let case_body = |__case: u64| {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                };
                for case in 0..$crate::CASES {
                    case_body(case);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u64..9, b in 0u8..=255, f in 0.5f64..1.0) {
            prop_assert!((3..9).contains(&a));
            let _ = b;
            prop_assert!((0.5..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u16..4).prop_map(|v| v as u32),
            (10u16..14).prop_map(|v| v as u32),
        ]) {
            prop_assert!(x < 4 || (10..14).contains(&x));
        }

        #[test]
        fn index_reduces(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn option_of_generates_both(o in prop::option::of(0u32..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = || {
            let mut rng = crate::TestRng::for_case("x", 3);
            (0u64..4).generate(&mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
