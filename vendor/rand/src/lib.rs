//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna)
//! seeded through SplitMix64 — a different stream than upstream
//! `StdRng` (ChaCha12), which only shifts which concrete random values
//! a seed produces; every consumer in this workspace treats seeds as
//! opaque reproducibility tokens, not as contracts about exact streams.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly over their full domain
/// (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly (upstream's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The random-number-generator interface.
///
/// One required method ([`next_u64`](Rng::next_u64)) plus the provided
/// convenience samplers the workspace calls.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value over the type's full domain (`f64` is uniform in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_from(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Seedable construction (upstream's trait, reduced to the one
/// constructor in use).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the 64-bit seed into full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

impl Standard for u64 {
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform integer in `[0, span)`. Modulo with a 64-bit generator: the
/// bias for the span sizes used in this workspace (≪ 2⁶⁴) is far below
/// anything the simulations can resolve.
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::gen_from(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = f64::gen_from(rng);
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b: usize = r.gen_range(5..=5);
            assert_eq!(b, 5);
            let c: f64 = r.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&c));
        }
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let _ = draw(&mut r);
    }
}
