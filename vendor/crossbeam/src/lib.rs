//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the one type it uses: [`queue::SegQueue`]. The upstream
//! version is a lock-free segmented queue; this stand-in is a mutex
//! around a `VecDeque`, which preserves the API and the FIFO + Send +
//! Sync contract. The simulator is single-threaded, so the mutex is
//! uncontended and the performance difference is irrelevant here.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// FIFO queue with interior mutability, shareable across threads.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends `value` at the tail.
        pub fn push(&self, value: T) {
            self.inner.lock().unwrap().push_back(value);
        }

        /// Removes the head, or `None` if empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of queued values.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::SegQueue;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn shared_across_threads() {
            let q = Arc::new(SegQueue::new());
            let q2 = Arc::clone(&q);
            std::thread::spawn(move || q2.push(42u64)).join().unwrap();
            assert_eq!(q.pop(), Some(42));
        }
    }
}
