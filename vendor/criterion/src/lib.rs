//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use. Instead of criterion's
//! statistical sampling this stand-in runs each routine `sample_size`
//! times and prints the mean wall-clock duration — enough to keep
//! `cargo bench` compiling and producing indicative numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each routine runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Upstream parses CLI args here; the stand-in has none.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream prints a summary here; the stand-in prints per-bench.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `routine` under `group/id`.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut routine,
        );
        self
    }

    /// Times `routine` with a borrowed input value.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| routine(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// How `iter_batched` amortises setup cost (kept for API parity; the
/// stand-in re-runs setup every iteration regardless).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing harness passed to each benchmark routine.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Opaque value sink preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: usize, routine: &mut F) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let mean = if iters > 0 {
        b.elapsed / iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {id:<48} {mean:>12.3?}/iter ({iters} iters)");
}

/// Declares a benchmark group in either upstream form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| 2 + 2));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn batched_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(64usize), &64usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
