#!/usr/bin/env python3
"""Render the experiment CSVs as standalone SVG line charts.

Pure standard library — no matplotlib needed:

    cargo run --release -p rfp-bench --bin all_figures -- experiments/
    cargo run --release -p rfp-bench --bin ablations   -- experiments/
    python3 scripts/plot_experiments.py experiments/ plots/

Each `experiments/<name>.csv` (rows: `figure,series,x,y`, comments `#`)
becomes `plots/<name>.svg` with one polyline per series. Non-numeric x
values (categorical sweeps like GET percentages) are spaced evenly in
row order.
"""

import os
import sys

WIDTH, HEIGHT = 720, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 160, 40, 50
PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
    "#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
]


def parse(path):
    """Returns (title, {series: [(x_numeric, y, x_label), ...]})."""
    series = {}
    title = os.path.basename(path)
    cat_index = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if title == os.path.basename(path):
                    title = line.lstrip("# ")
                continue
            parts = line.split(",")
            if len(parts) != 4:
                continue
            _, name, x_raw, y_raw = parts
            try:
                y = float(y_raw)
            except ValueError:
                continue
            try:
                x = float(x_raw)
                label = None
            except ValueError:
                if x_raw not in cat_index:
                    cat_index[x_raw] = float(len(cat_index))
                x = cat_index[x_raw]
                label = x_raw
            series.setdefault(name, []).append((x, y, label))
    return title, series


def nice_ticks(lo, hi, n=5):
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / n
    mag = 10 ** int(f"{raw:e}".split("e")[1])
    for m in (1, 2, 5, 10):
        if raw <= m * mag:
            step = m * mag
            break
    start = int(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        if t >= lo - step * 0.5:
            ticks.append(t)
        t += step
    return ticks


def render(title, series, out_path):
    points = [p for pts in series.values() for p in pts]
    if not points:
        return False
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys) * 1.08 or 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    def sx(x):
        return MARGIN_L + (x - x_lo) / (x_hi - x_lo) * (WIDTH - MARGIN_L - MARGIN_R)

    def sy(y):
        return HEIGHT - MARGIN_B - (y - y_lo) / (y_hi - y_lo) * (HEIGHT - MARGIN_T - MARGIN_B)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="20" font-size="13" font-weight="bold">{title[:90]}</text>',
    ]

    # Axes + ticks.
    parts.append(
        f'<line x1="{MARGIN_L}" y1="{sy(y_lo)}" x2="{WIDTH - MARGIN_R}" y2="{sy(y_lo)}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{MARGIN_L}" y1="{sy(y_lo)}" x2="{MARGIN_L}" y2="{MARGIN_T}" stroke="black"/>'
    )
    for t in nice_ticks(y_lo, y_hi):
        y = sy(t)
        parts.append(
            f'<line x1="{MARGIN_L - 4}" y1="{y}" x2="{WIDTH - MARGIN_R}" y2="{y}" '
            f'stroke="#dddddd"/>'
        )
        parts.append(f'<text x="{MARGIN_L - 8}" y="{y + 4}" text-anchor="end">{t:g}</text>')
    for t in nice_ticks(x_lo, x_hi):
        x = sx(t)
        parts.append(
            f'<line x1="{x}" y1="{sy(y_lo)}" x2="{x}" y2="{sy(y_lo) + 4}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x}" y="{sy(y_lo) + 16}" text-anchor="middle">{t:g}</text>'
        )

    # Series.
    for i, (name, pts) in enumerate(sorted(series.items())):
        color = PALETTE[i % len(PALETTE)]
        pts = sorted(pts, key=lambda p: p[0])
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y, _ in pts)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y, _ in pts:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.5" fill="{color}"/>')
        ly = MARGIN_T + 14 * i
        parts.append(
            f'<line x1="{WIDTH - MARGIN_R + 8}" y1="{ly}" x2="{WIDTH - MARGIN_R + 28}" '
            f'y2="{ly}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{WIDTH - MARGIN_R + 32}" y="{ly + 4}">{name[:22]}</text>')

    parts.append("</svg>")
    with open(out_path, "w") as f:
        f.write("\n".join(parts))
    return True


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    src, dst = sys.argv[1], sys.argv[2]
    os.makedirs(dst, exist_ok=True)
    rendered = 0
    for name in sorted(os.listdir(src)):
        if not name.endswith(".csv"):
            continue
        title, series = parse(os.path.join(src, name))
        out = os.path.join(dst, name[:-4] + ".svg")
        if render(title, series, out):
            rendered += 1
            print(f"wrote {out}")
    print(f"{rendered} charts rendered")


if __name__ == "__main__":
    main()
