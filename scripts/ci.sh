#!/usr/bin/env bash
# Full local CI: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
cargo clippy -p rfp-chaos -- -D warnings
cargo fmt --check

# Chaos smoke: every fault scenario under a fixed seed must hold the
# safety invariants (the binary asserts zero lost acked writes and zero
# stale reads) and be deterministic run-to-run.
cargo run -q --release -p rfp-bench --bin chaos 42 > /tmp/chaos_a.csv
cargo run -q --release -p rfp-bench --bin chaos 42 > /tmp/chaos_b.csv
cmp /tmp/chaos_a.csv /tmp/chaos_b.csv
