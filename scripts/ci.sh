#!/usr/bin/env bash
# Full local CI: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
cargo clippy -p rfp-chaos -- -D warnings
cargo clippy -p rfp-core -p rfp-kvstore -p rfp-bench -p rfp-rnic -- -D warnings
cargo clippy -p rfp-paradigms -p rfp-workload -p rfp-simnet -- -D warnings
cargo fmt --check

# Chaos smoke: every fault scenario under a fixed seed must hold the
# safety invariants (the binary asserts zero lost acked writes and zero
# stale reads) and be deterministic run-to-run.
cargo run -q --release -p rfp-bench --bin chaos 42 > /tmp/chaos_a.csv
cargo run -q --release -p rfp-bench --bin chaos 42 > /tmp/chaos_b.csv
cmp /tmp/chaos_a.csv /tmp/chaos_b.csv

# Overload smoke: the binary itself asserts the shed cost (2 in-bound,
# 0 out-bound NIC ops per shed) and the goodput plateau (controlled
# goodput at 4x saturation >= 70% of peak, uncontrolled below it);
# here we additionally pin run-to-run determinism under a fixed seed.
cargo run -q --release -p rfp-bench --bin overload 42 > /tmp/overload_a.csv
cargo run -q --release -p rfp-bench --bin overload 42 > /tmp/overload_b.csv
cmp /tmp/overload_a.csv /tmp/overload_b.csv

# Integrity smoke: the binary asserts zero corrupt payloads ever reach
# a caller across the whole fault-rate sweep (and that the fault knobs
# actually fire); here we additionally pin run-to-run determinism of
# the sweep under a fixed seed.
cargo run -q --release -p rfp-bench --bin integrity 42 > /tmp/integrity_a.csv
cargo run -q --release -p rfp-bench --bin integrity 42 > /tmp/integrity_b.csv
cmp /tmp/integrity_a.csv /tmp/integrity_b.csv

# Pipeline smoke: the binary asserts the window-scaling bars (>= 2x
# single-client 32 B throughput at W >= 8, monotone doorbell-batched
# issue-cost decay, adaptive idle backoff free at saturation); here we
# additionally pin run-to-run determinism under a fixed seed and that
# the exported registry keeps the committed BENCH_pipeline.json shape
# (same metric names; values may move with the model).
cargo run -q --release -p rfp-bench --bin pipeline 42 > /tmp/pipeline_a.csv
mv BENCH_pipeline.json /tmp/pipeline_a.json
cargo run -q --release -p rfp-bench --bin pipeline 42 > /tmp/pipeline_b.csv
cmp /tmp/pipeline_a.csv /tmp/pipeline_b.csv
cmp /tmp/pipeline_a.json BENCH_pipeline.json
if git cat-file -e HEAD:BENCH_pipeline.json 2>/dev/null; then
  diff <(grep -o '"[^"]*":' /tmp/pipeline_a.json | sort) \
       <(git show HEAD:BENCH_pipeline.json | grep -o '"[^"]*":' | sort)
fi

# Doctor smoke: the binary asserts the full fault-class detection
# matrix (every injected class surfaces as its signature anomaly with
# an intact cause chain, and the clean baseline raises nothing); here
# we additionally pin run-to-run determinism under a fixed seed and
# that the exported registry keeps the committed BENCH_doctor.json
# shape (same matrix cells; counts may move with the model).
cargo run -q --release -p rfp-bench --bin doctor 42 > /tmp/doctor_a.csv
mv BENCH_doctor.json /tmp/doctor_a.json
cargo run -q --release -p rfp-bench --bin doctor 42 > /tmp/doctor_b.csv
cmp /tmp/doctor_a.csv /tmp/doctor_b.csv
cmp /tmp/doctor_a.json BENCH_doctor.json
if git cat-file -e HEAD:BENCH_doctor.json 2>/dev/null; then
  diff <(grep -o '"[^"]*":' /tmp/doctor_a.json | sort) \
       <(git show HEAD:BENCH_doctor.json | grep -o '"[^"]*":' | sort)
fi

# Fleet smoke: the binary asserts the fleet-scaling claims (flat server
# memory/QP footprint and flat scan cost per request across 10^2..10^5
# logical clients, a flat goodput plateau, lease churn actually firing,
# and >= 80% cold-tenant goodput retention under a hot tenant); here we
# additionally pin run-to-run determinism under a fixed seed and that
# the exported registry keeps the committed BENCH_fleet.json shape
# (same metric names; values may move with the model).
cargo run -q --release -p rfp-bench --bin fleet 42 > /tmp/fleet_a.csv
mv BENCH_fleet.json /tmp/fleet_a.json
cargo run -q --release -p rfp-bench --bin fleet 42 > /tmp/fleet_b.csv
cmp /tmp/fleet_a.csv /tmp/fleet_b.csv
cmp /tmp/fleet_a.json BENCH_fleet.json
if git cat-file -e HEAD:BENCH_fleet.json 2>/dev/null; then
  diff <(grep -o '"[^"]*":' /tmp/fleet_a.json | sort) \
       <(git show HEAD:BENCH_fleet.json | grep -o '"[^"]*":' | sort)
fi

# Failover smoke: the binary asserts the replication/failover claims
# (sync mode loses no acked write, reads never run backwards, every
# surviving history passes the linearizability checker, failover time
# stays inside budget, and the sync replication tax on the 32 B
# GET-heavy bar stays under 5%); here we additionally pin run-to-run
# determinism under a fixed seed and that the exported registry keeps
# the committed BENCH_failover.json shape (same metric names; values
# may move with the model).
cargo run -q --release -p rfp-bench --bin failover 42 > /tmp/failover_a.csv
mv BENCH_failover.json /tmp/failover_a.json
cargo run -q --release -p rfp-bench --bin failover 42 > /tmp/failover_b.csv
cmp /tmp/failover_a.csv /tmp/failover_b.csv
cmp /tmp/failover_a.json BENCH_failover.json
if git cat-file -e HEAD:BENCH_failover.json 2>/dev/null; then
  diff <(grep -o '"[^"]*":' /tmp/failover_a.json | sort) \
       <(git show HEAD:BENCH_failover.json | grep -o '"[^"]*":' | sort)
fi

# Gray-failure smoke: the binary asserts the resilience claims (each
# fail-slow fault inflates the unmitigated read p99 past 3x clean
# while scored routing and hedging stay within it, no acked write is
# lost, histories linearize, hedges never double-apply a write, and
# retry amplification stays under the budget bound); here we
# additionally pin run-to-run determinism under a fixed seed and that
# the exported registry keeps the committed BENCH_grayfail.json shape
# (same metric names; values may move with the model).
cargo run -q --release -p rfp-bench --bin grayfail 42 > /tmp/grayfail_a.csv
mv BENCH_grayfail.json /tmp/grayfail_a.json
cargo run -q --release -p rfp-bench --bin grayfail 42 > /tmp/grayfail_b.csv
cmp /tmp/grayfail_a.csv /tmp/grayfail_b.csv
cmp /tmp/grayfail_a.json BENCH_grayfail.json
if git cat-file -e HEAD:BENCH_grayfail.json 2>/dev/null; then
  diff <(grep -o '"[^"]*":' /tmp/grayfail_a.json | sort) \
       <(git show HEAD:BENCH_grayfail.json | grep -o '"[^"]*":' | sort)
fi

# Cores smoke: the binary asserts the core-scaling claims (uniform
# 4-core throughput >= 3x one core, the skewed worst case within 2.5x
# of uniform with stealing and visibly collapsed/imbalanced without,
# and same-seed registry byte-identity); here we additionally pin
# run-to-run determinism under a fixed seed and that the exported
# registry keeps the committed BENCH_cores.json shape (same metric
# names; values may move with the model).
cargo run -q --release -p rfp-bench --bin cores 42 > /tmp/cores_a.csv
mv BENCH_cores.json /tmp/cores_a.json
cargo run -q --release -p rfp-bench --bin cores 42 > /tmp/cores_b.csv
cmp /tmp/cores_a.csv /tmp/cores_b.csv
cmp /tmp/cores_a.json BENCH_cores.json
if git cat-file -e HEAD:BENCH_cores.json 2>/dev/null; then
  diff <(grep -o '"[^"]*":' /tmp/cores_a.json | sort) \
       <(git show HEAD:BENCH_cores.json | grep -o '"[^"]*":' | sort)
fi
