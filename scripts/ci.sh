#!/usr/bin/env bash
# Full local CI: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
cargo fmt --check
