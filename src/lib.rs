//! Umbrella crate for the RFP reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so that the runnable
//! examples (`examples/*.rs`) and cross-crate integration tests
//! (`tests/*.rs`) can depend on a single package.
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use rfp_core as core;
pub use rfp_kvstore as kvstore;
pub use rfp_paradigms as paradigms;
pub use rfp_rnic as rnic;
pub use rfp_simnet as simnet;
pub use rfp_workload as workload;
