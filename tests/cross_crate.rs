//! Cross-crate integration: the umbrella crate's re-exports compose, a
//! custom application can be built from the public API alone, and the
//! parameter selector's predictions track the simulator's measurements.

use std::cell::Cell;
use std::rc::Rc;

use rfp_repro::core::{connect, serve_loop, ParamSelector, RfpConfig, WorkloadSample};
use rfp_repro::rnic::{Cluster, ClusterProfile};
use rfp_repro::simnet::{derive_seed, SimSpan, Simulation};
use rfp_repro::workload::ValueSize;

/// A bespoke "counter service" built purely from public APIs.
#[test]
fn custom_service_composes_from_public_api() {
    let mut sim = Simulation::new(derive_seed(1, 2));
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 3);
    let server_m = cluster.machine(0);

    let counter = Rc::new(Cell::new(0i64));
    let mut conns = Vec::new();
    let mut clients = Vec::new();
    for m in 1..=2 {
        let cm = cluster.machine(m);
        let (cl, sc) = connect(
            &cm,
            &server_m,
            cluster.qp(m, 0),
            cluster.qp(0, m),
            RfpConfig::default(),
        );
        conns.push(Rc::new(sc));
        clients.push((Rc::new(cl), cm.thread(format!("c{m}"))));
    }

    let ctr = Rc::clone(&counter);
    sim.spawn(serve_loop(
        server_m.thread("server"),
        conns,
        move |req: &[u8]| {
            let delta = i64::from_le_bytes(req[..8].try_into().expect("8 bytes"));
            ctr.set(ctr.get() + delta);
            (ctr.get().to_le_bytes().to_vec(), SimSpan::nanos(100))
        },
        SimSpan::nanos(100),
    ));

    let final_values = Rc::new(Cell::new((0i64, 0i64)));
    for (i, (cl, thread)) in clients.into_iter().enumerate() {
        let fv = Rc::clone(&final_values);
        sim.spawn(async move {
            let mut last = 0;
            for _ in 0..100 {
                let out = cl.call(&thread, &1i64.to_le_bytes()).await;
                last = i64::from_le_bytes(out.data[..8].try_into().expect("8 bytes"));
            }
            let mut cur = fv.get();
            if i == 0 {
                cur.0 = last;
            } else {
                cur.1 = last;
            }
            fv.set(cur);
        });
    }

    sim.run_for(SimSpan::millis(5));
    assert_eq!(counter.get(), 200, "all 200 increments must apply");
    let (a, b) = final_values.get();
    assert!(a == 200 || b == 200, "someone observed the final count");
}

/// The closed-form selector model predicts the simulator within a
/// reasonable tolerance — the property that makes pre-run selection
/// meaningful.
#[test]
fn selector_model_tracks_simulated_throughput() {
    let profile = ClusterProfile::paper_testbed();
    let selector = ParamSelector::new(profile.nic.clone(), profile.link.clone());
    let w = WorkloadSample {
        result_sizes: vec![53],
        process_time: SimSpan::nanos(350),
        request_size: 60,
        client_threads: 35,
    };
    let predicted = selector.rfp_throughput(5, 256, &w, 53);

    // Simulate the same shape via the Jakiro KV system (32 B values ⇒
    // 53 B responses with protocol overhead).
    use rfp_repro::kvstore::{spawn_jakiro, SystemConfig};
    use rfp_repro::workload::WorkloadSpec;
    let cfg = SystemConfig {
        spec: WorkloadSpec {
            key_count: 2_000,
            values: ValueSize::Fixed(32),
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    };
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn_jakiro(&mut sim, &cfg);
    sim.run_for(SimSpan::millis(1));
    sys.reset_measurements();
    let window = SimSpan::millis(4);
    sim.run_for(window);
    let measured = sys.stats.completed.get() as f64 / window.as_secs_f64() / 1e6;

    let ratio = measured / predicted;
    assert!(
        (0.8..1.25).contains(&ratio),
        "selector model {predicted:.2} vs simulated {measured:.2} MOPS (ratio {ratio:.2})"
    );
}

/// Determinism across the whole stack: identical seeds give identical
/// results, different seeds differ.
#[test]
fn full_stack_determinism() {
    use rfp_repro::kvstore::{spawn_jakiro, SystemConfig};
    use rfp_repro::workload::WorkloadSpec;
    let run = |seed: u64| {
        let cfg = SystemConfig {
            seed,
            spec: WorkloadSpec {
                key_count: 1_000,
                ..WorkloadSpec::paper_default()
            },
            client_machines: 2,
            clients_per_machine: 2,
            ..SystemConfig::default()
        };
        let mut sim = Simulation::new(cfg.seed);
        let sys = spawn_jakiro(&mut sim, &cfg);
        sim.run_for(SimSpan::millis(3));
        (
            sys.stats.completed.get(),
            // The GET/PUT split depends on every sampled coin flip, so
            // it discriminates seeds even when the closed-loop op count
            // does not.
            sys.stats.gets.get(),
            sys.stats.latency.percentile(99.0).map(|s| s.as_nanos()),
            sys.server_machine.nic().counters().inbound_ops,
        )
    };
    assert_eq!(run(7), run(7), "same seed must reproduce bit-for-bit");
    assert_ne!(run(7), run(8), "different seeds must differ");
}
