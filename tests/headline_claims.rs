//! The paper's headline claims, verified end-to-end across all crates:
//!
//! * RFP improves throughput 1.6×–4× over both server-reply and
//!   server-bypass (abstract, §4),
//! * the server's NIC handles only in-bound RDMA under RFP (§3),
//! * the taxonomy's predictions match what the running transports
//!   actually do on the simulated NICs (Table 1).

use rfp_repro::kvstore::{
    spawn_jakiro, spawn_pilaf, spawn_server_reply_kv, KvSystem, SystemConfig,
};
use rfp_repro::paradigms::{Paradigm, ProcessChoice, ResultReturn};
use rfp_repro::simnet::{SimSpan, Simulation};
use rfp_repro::workload::{OpMix, WorkloadSpec};

fn measure(
    spawn: impl FnOnce(&mut Simulation, &SystemConfig) -> KvSystem,
    cfg: &SystemConfig,
) -> (KvSystem, f64) {
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn(&mut sim, cfg);
    sim.run_for(SimSpan::millis(1));
    sys.reset_measurements();
    let window = SimSpan::millis(4);
    sim.run_for(window);
    let mops = sys.stats.completed.get() as f64 / window.as_secs_f64() / 1e6;
    (sys, mops)
}

fn cfg(mix: OpMix) -> SystemConfig {
    SystemConfig {
        spec: WorkloadSpec {
            key_count: 2_000,
            mix,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    }
}

#[test]
fn rfp_beats_server_reply_by_1_6x_to_4x() {
    let (_, jakiro) = measure(spawn_jakiro, &cfg(OpMix::READ_INTENSIVE));
    let (_, sr) = measure(spawn_server_reply_kv, &cfg(OpMix::READ_INTENSIVE));
    let gain = jakiro / sr;
    assert!(
        (1.6..4.5).contains(&gain),
        "abstract claims 1.6x-4x over server-reply; measured {gain:.2}x ({jakiro:.2} vs {sr:.2})"
    );
}

#[test]
fn rfp_beats_server_bypass_by_1_6x_to_4x() {
    // The bypass comparison uses the paper's Figure 11 setting (50% GET,
    // where conflicts hurt the bypass store most).
    let (_, jakiro) = measure(spawn_jakiro, &cfg(OpMix::BALANCED));
    let (_, pilaf) = measure(spawn_pilaf, &cfg(OpMix::BALANCED));
    let gain = jakiro / pilaf;
    assert!(
        (1.6..4.5).contains(&gain),
        "abstract claims 1.6x-4x over server-bypass; measured {gain:.2}x ({jakiro:.2} vs {pilaf:.2})"
    );
}

#[test]
fn rfp_server_nic_is_inbound_only() {
    let (sys, _) = measure(spawn_jakiro, &cfg(OpMix::READ_INTENSIVE));
    let counters = sys.server_machine.nic().counters();
    assert!(counters.inbound_ops > 10_000, "{counters:?}");
    assert_eq!(
        counters.outbound_ops, 0,
        "RFP must never issue out-bound RDMA from the server on the fast path"
    );
}

#[test]
fn taxonomy_matches_running_transports() {
    // RFP's row: server involved + client fetch ⇒ in-bound-only server.
    assert!(Paradigm::RFP.server_handles_only_inbound());
    assert!(Paradigm::RFP.supports_legacy_rpc());
    let (rfp_sys, _) = measure(spawn_jakiro, &cfg(OpMix::READ_INTENSIVE));
    assert_eq!(rfp_sys.server_machine.nic().counters().outbound_ops, 0);

    // Server-reply's row: server push ⇒ out-bound at the server. Each
    // client keeps one request in flight, and a request whose response
    // was pushed just before the measurement reset still completes
    // inside the window — so allow one straddler per client.
    assert_eq!(Paradigm::SERVER_REPLY.ret, ResultReturn::ServerPush);
    let sr_cfg = cfg(OpMix::READ_INTENSIVE);
    let in_flight = (sr_cfg.client_machines * sr_cfg.clients_per_machine) as u64;
    let (sr_sys, _) = measure(spawn_server_reply_kv, &sr_cfg);
    assert!(
        sr_sys.server_machine.nic().counters().outbound_ops + in_flight
            >= sr_sys.stats.completed.get(),
        "server-reply pushes every result out-bound"
    );

    // Server-bypass's row: server CPU out of the GET path.
    assert_eq!(
        Paradigm::SERVER_BYPASS.process,
        ProcessChoice::ServerBypassed
    );
    let get_only = SystemConfig {
        spec: WorkloadSpec {
            key_count: 2_000,
            mix: OpMix { get_fraction: 1.0 },
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    };
    let (bp_sys, _) = measure(spawn_pilaf, &get_only);
    // All-GET Pilaf: server answers nothing, clients do everything with
    // one-sided reads.
    assert_eq!(bp_sys.server_machine.nic().counters().outbound_ops, 0);
    assert!(bp_sys.stats.bypass_ops.get() > 0);
}

#[test]
fn rfp_keeps_its_edge_under_write_intensive_load() {
    // §4.4.3: Jakiro's peak holds even at 95% PUT, where bypass designs
    // collapse — the paper's strongest argument for server involvement.
    let (_, jakiro_writes) = measure(spawn_jakiro, &cfg(OpMix::WRITE_INTENSIVE));
    let (_, jakiro_reads) = measure(spawn_jakiro, &cfg(OpMix::READ_INTENSIVE));
    assert!(
        jakiro_writes > 0.9 * jakiro_reads,
        "write-intensive {jakiro_writes:.2} vs read-intensive {jakiro_reads:.2}"
    );
}
