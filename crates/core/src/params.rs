//! Automatic selection of the RFP parameters `R` and `F` (paper §3.2).
//!
//! The paper turns both of its client-side challenges — *when to stop
//! retrying remote fetches* and *how much to fetch per READ* — into one
//! parameter-selection problem (Equation 1): maximise throughput
//! `T = f(R, F, P, S)` over retry threshold `R` and fetch size `F`,
//! given the application's process time `P` and result sizes `S`.
//!
//! The search space is small: `R ∈ [1, N]` where `N` is the retry count
//! beyond which repeated fetching stops beating server-reply (derived
//! from the hardware, Figure 9), and `F ∈ [L, H]` where `L`/`H` bracket
//! the flat region of the NIC's IOPS-vs-size curve (Figure 5). Within
//! that box the selector enumerates candidates and scores each with
//! Equation 2: `T = Σᵢ Tᵢ`, `Tᵢ = I(R,F)` when `F ≥ Sᵢ` and `I(R,F)/2`
//! when a second READ is needed.
//!
//! `I(R,F)` comes from a closed-form throughput model of the simulated
//! NIC (validated against full simulations in the test suite); the paper
//! obtains the equivalent table by benchmarking its RNIC once.

use rfp_rnic::{LinkProfile, NicProfile};
use rfp_simnet::SimSpan;

use crate::header::{REQ_HDR, RESP_HDR};

/// A selected `(R, F)` pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Params {
    /// Retry threshold `R`.
    pub r: u32,
    /// Default fetch size `F` in bytes (covers the response header).
    pub f: usize,
}

/// Workload characteristics fed into the selection (gathered by
/// pre-running the application or sampling it online, §3.2).
#[derive(Clone, Debug)]
pub struct WorkloadSample {
    /// Observed response payload sizes.
    pub result_sizes: Vec<usize>,
    /// Typical server process time `P`.
    pub process_time: SimSpan,
    /// Request payload size (affects the request WRITE's cost).
    pub request_size: usize,
    /// Number of concurrent client threads driving the server.
    pub client_threads: usize,
}

/// Parameter selector bound to a hardware profile.
pub struct ParamSelector {
    nic: NicProfile,
    link: LinkProfile,
    /// Step of the `F` grid in bytes.
    pub f_step: usize,
    /// Relative throughput advantage below which repeated fetching is
    /// not considered worth its client CPU cost (the paper uses 10%).
    pub advantage_cutoff: f64,
    /// Server-side pickup cost (scan + post) assumed by the model.
    pub server_overhead: SimSpan,
}

impl ParamSelector {
    /// Creates a selector for the given hardware.
    pub fn new(nic: NicProfile, link: LinkProfile) -> Self {
        ParamSelector {
            nic,
            link,
            f_step: 64,
            advantage_cutoff: 0.10,
            server_overhead: SimSpan::nanos(200),
        }
    }

    /// Client-observed latency of one READ fetching `f` bytes.
    pub fn fetch_latency(&self, f: usize) -> SimSpan {
        self.nic.issue_cpu
            + self.nic.outbound_service(f)
            + self.link.propagation
            + self.nic.inbound_service(f)
            + self.link.propagation
            + self.nic.read_turnaround
    }

    /// Client-observed latency of one WRITE carrying `n` bytes.
    pub fn write_latency(&self, n: usize) -> SimSpan {
        self.nic.issue_cpu
            + self.nic.outbound_service(n)
            + self.link.propagation
            + self.nic.inbound_service(n)
            + self.link.propagation
    }

    /// Time between the request landing at the server and the first
    /// fetch sampling server memory: process times below this overlap
    /// window are hidden entirely by the fetch pipeline.
    fn first_fetch_overlap(&self, f: usize) -> SimSpan {
        // Client completion of the WRITE (one propagation after landing)
        // plus the front half of the READ (issue, out-bound, propagation,
        // in-bound service).
        self.link.propagation
            + self.nic.issue_cpu
            + self.nic.outbound_service(f)
            + self.link.propagation
            + self.nic.inbound_service(f)
    }

    /// Expected fetch attempts for process time `p` and fetch size `f`.
    pub fn expected_attempts(&self, p: SimSpan, f: usize) -> u32 {
        let visible = (p + self.server_overhead).as_nanos() as i64
            - self.first_fetch_overlap(f).as_nanos() as i64;
        if visible <= 0 {
            return 1;
        }
        1 + (visible as u64).div_ceil(self.fetch_latency(f).as_nanos().max(1)) as u32
    }

    /// Modelled throughput (MOPS) of pure server-reply for this
    /// workload: bounded by the server's out-bound engine and by client
    /// concurrency.
    pub fn server_reply_throughput(&self, w: &WorkloadSample, result: usize) -> f64 {
        let resp_bytes = RESP_HDR + result;
        let out_cap = 1e3 / self.nic.outbound_service(resp_bytes).as_nanos() as f64;
        let per_call = self.write_latency(REQ_HDR + w.request_size)
            + w.process_time
            + self.write_latency(resp_bytes);
        let thread_bound = w.client_threads as f64 / per_call.as_nanos() as f64 * 1e3;
        out_cap.min(thread_bound)
    }

    /// Modelled throughput (MOPS) of RFP with parameters `(r, f)` for a
    /// single result size; this is the `I(R,F)`-based `Tᵢ` of
    /// Equation 2, including the halving for oversized results.
    pub fn rfp_throughput(&self, r: u32, f: usize, w: &WorkloadSample, result: usize) -> f64 {
        let attempts = self.expected_attempts(w.process_time, f);
        if attempts.saturating_sub(1) > r {
            // Mode switch: the connection settles in server-reply.
            return self.server_reply_throughput(w, result);
        }
        let needs_second = RESP_HDR + result > f;
        let second_bytes = (RESP_HDR + result).saturating_sub(f);
        let req_bytes = REQ_HDR + w.request_size;

        // Server in-bound engine occupancy per request.
        let mut inbound =
            self.nic.inbound_service(req_bytes) + self.nic.inbound_service(f) * attempts as u64;
        if needs_second {
            inbound += self.nic.inbound_service(second_bytes);
        }
        let capacity = 1e3 / inbound.as_nanos() as f64;

        // Client thread occupancy per request.
        let mut per_call = self.write_latency(req_bytes) + self.fetch_latency(f) * attempts as u64;
        if needs_second {
            per_call += self.fetch_latency(second_bytes);
        }
        // Process time beyond what the fetch pipeline hides extends the
        // call; the hidden part is already inside the attempts term.
        let hidden =
            self.first_fetch_overlap(f) + self.fetch_latency(f) * attempts.saturating_sub(1) as u64;
        if w.process_time + self.server_overhead > hidden {
            per_call += w.process_time + self.server_overhead - hidden;
        }
        let thread_bound = w.client_threads as f64 / per_call.as_nanos() as f64 * 1e3;

        capacity.min(thread_bound)
    }

    /// Equation 2: total score of `(r, f)` across the sampled result
    /// sizes.
    pub fn score(&self, r: u32, f: usize, w: &WorkloadSample) -> f64 {
        w.result_sizes
            .iter()
            .map(|&s| self.rfp_throughput(r, f, w, s))
            .sum()
    }

    /// Detects `[L, H]` from the NIC's in-bound IOPS-vs-size curve: `L`
    /// is the end of the flat region (≥98% of peak), `H` the point where
    /// IOPS has fallen to 40% of peak (bandwidth-dominated).
    pub fn detect_l_h(&self) -> (usize, usize) {
        let peak = 1e9 / self.nic.inbound_service(1).as_nanos() as f64;
        let mut l = RESP_HDR;
        let mut h = RESP_HDR;
        let mut size = RESP_HDR;
        while size <= 64 * 1024 {
            let iops = 1e9 / self.nic.inbound_service(size).as_nanos() as f64;
            if iops >= 0.98 * peak {
                l = size;
            }
            if iops >= 0.40 * peak {
                h = size;
            }
            size += 16;
        }
        (l, h.max(l))
    }

    /// Derives `N`, the retry budget beyond which repeated fetching no
    /// longer beats server-reply by more than the advantage cutoff
    /// (Figure 9's crossover, ≈7 µs ⇒ N = 5 on the paper's hardware).
    pub fn derive_n(&self, w: &WorkloadSample) -> u32 {
        let (l, _) = self.detect_l_h();
        let f = l;
        let tiny = WorkloadSample {
            result_sizes: vec![1],
            ..w.clone()
        };
        let mut p = SimSpan::ZERO;
        loop {
            let probe = WorkloadSample {
                process_time: p,
                ..tiny.clone()
            };
            let rf = self.rfp_throughput(u32::MAX, f, &probe, 1);
            let sr = self.server_reply_throughput(&probe, 1);
            if rf <= sr * (1.0 + self.advantage_cutoff) {
                return self.expected_attempts(p, f).saturating_sub(1).max(1);
            }
            p += SimSpan::nanos(250);
            if p > SimSpan::micros(100) {
                // Degenerate profile: fetching always wins; cap the
                // budget at a sane maximum.
                return 16;
            }
        }
    }

    /// Full selection: enumerate `R ∈ [1, N]`, `F ∈ [L, H]` on the grid
    /// and return the Equation-2 maximiser. Ties prefer smaller `F`
    /// (less bandwidth for equal throughput) and then *larger* `R`:
    /// within `[1, N]` extra retry budget never costs throughput but
    /// protects against spurious mode switches on jitter — which is why
    /// the paper also runs with `R = N` (= 5 on its hardware).
    pub fn select(&self, w: &WorkloadSample) -> Params {
        assert!(
            !w.result_sizes.is_empty(),
            "selection needs at least one sampled result size"
        );
        let (l, h) = self.detect_l_h();
        let n = self.derive_n(w);
        let mut best = Params { r: 1, f: l };
        let mut best_score = f64::MIN;
        let mut f = l;
        while f <= h {
            for r in 1..=n {
                let s = self.score(r, f, w);
                let wins = s > best_score + 1e-9
                    || (s > best_score - 1e-9 && (f < best.f || (f == best.f && r > best.r)));
                if wins {
                    best_score = best_score.max(s);
                    best = Params { r, f };
                }
            }
            f += self.f_step;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector() -> ParamSelector {
        ParamSelector::new(NicProfile::connectx3_40g(), LinkProfile::infiniscale())
    }

    fn paper_workload(sizes: Vec<usize>, p_us: u64) -> WorkloadSample {
        WorkloadSample {
            result_sizes: sizes,
            process_time: SimSpan::micros(p_us),
            request_size: 64,
            client_threads: 35,
        }
    }

    #[test]
    fn attempts_grow_with_process_time() {
        let s = selector();
        assert_eq!(s.expected_attempts(SimSpan::ZERO, 256), 1);
        let a7 = s.expected_attempts(SimSpan::micros(7), 256);
        assert!(
            (4..=6).contains(&a7),
            "P=7µs should need about 5 attempts (paper's N ↔ 7µs mapping), got {a7}"
        );
        assert!(s.expected_attempts(SimSpan::micros(12), 256) > a7);
    }

    #[test]
    fn l_h_bracket_matches_hardware_ballpark() {
        let (l, h) = selector().detect_l_h();
        assert!((256..=512).contains(&l), "L = {l}");
        assert!((768..=1536).contains(&h), "H = {h}");
        assert!(l < h);
    }

    #[test]
    fn n_is_about_five() {
        let n = selector().derive_n(&paper_workload(vec![32], 0));
        assert!((3..=7).contains(&n), "N = {n} (paper: 5)");
    }

    #[test]
    fn small_results_pick_small_f_and_modest_r() {
        let s = selector();
        // Jakiro's default workload: 32 B values (+ a little protocol
        // overhead). Paper selects R=5, F=256.
        let w = paper_workload(vec![48], 0);
        let p = s.select(&w);
        let (l, _) = s.detect_l_h();
        assert_eq!(p.f, l, "smallest F covering the results wins ties");
        assert!(p.r >= 1);
    }

    #[test]
    fn mixed_sizes_stay_inside_l_h() {
        let s = selector();
        // Uniform 32..8192 values (§4.4.3). The paper's RNIC has a flat
        // op-rate region up to ~640 B and selects F = 640; our byte-cost
        // model charges fetches linearly past the knee, so the maximiser
        // may sit at L — but it must stay in [L, H] and never lose to
        // the other grid points.
        let sizes: Vec<usize> = (0..64).map(|i| 32 + i * (8192 - 32) / 63).collect();
        let w = paper_workload(sizes, 0);
        let p = s.select(&w);
        let (l, h) = s.detect_l_h();
        assert!((l..=h).contains(&p.f), "F = {} outside [{l}, {h}]", p.f);
        let best = s.score(p.r, p.f, &w);
        let mut f = l;
        while f <= h {
            assert!(s.score(p.r, f, &w) <= best + 1e-9, "F={f} beats selection");
            f += s.f_step;
        }
    }

    #[test]
    fn f_grows_to_cover_the_common_result_size() {
        let s = selector();
        // All results are 600 B: a fetch must carry 616 B to avoid the
        // second READ, so the selector must pick the first grid point
        // ≥ 616 — mirroring how the paper lands on F = 640.
        let p = s.select(&paper_workload(vec![600], 0));
        assert!(p.f >= 616, "F = {} leaves every result oversized", p.f);
        assert!(p.f < 616 + s.f_step, "F = {} overshoots", p.f);
    }

    #[test]
    fn rfp_beats_server_reply_at_small_p() {
        let s = selector();
        let w = paper_workload(vec![48], 0);
        let rf = s.rfp_throughput(5, 256, &w, 48);
        let sr = s.server_reply_throughput(&w, 48);
        assert!(
            rf > 2.0 * sr,
            "RFP should win by >2x at P≈0: {rf:.2} vs {sr:.2}"
        );
        // And the absolute numbers sit in the paper's ballpark.
        assert!((4.5..6.5).contains(&rf), "Jakiro-like peak {rf:.2}");
        assert!((1.8..2.2).contains(&sr), "ServerReply-like peak {sr:.2}");
    }

    #[test]
    fn rfp_falls_back_to_server_reply_at_large_p() {
        let s = selector();
        let w = paper_workload(vec![48], 12);
        let rf = s.rfp_throughput(5, 256, &w, 48);
        let sr = s.server_reply_throughput(&w, 48);
        assert_eq!(rf, sr, "past the switch point both modes coincide");
    }

    #[test]
    fn score_halves_for_oversized_results() {
        let s = selector();
        let w = paper_workload(vec![48], 0);
        let small = s.rfp_throughput(5, 448, &w, 48);
        let big = s.rfp_throughput(5, 448, &w, 2048);
        assert!(
            big < small * 0.75,
            "second fetch must cost real throughput: {small:.2} -> {big:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sampled result size")]
    fn empty_samples_rejected() {
        let s = selector();
        let w = WorkloadSample {
            result_sizes: vec![],
            process_time: SimSpan::ZERO,
            request_size: 16,
            client_threads: 1,
        };
        let _ = s.select(&w);
    }
}
