//! The Remote Fetching Paradigm (RFP) — the paper's core contribution.
//!
//! RFP is an RDMA-based RPC paradigm that keeps the server CPU in the
//! request path (so legacy RPC applications port with only moderate
//! effort) while making the server's NIC serve **only in-bound** RDMA:
//!
//! 1. clients deposit requests into server memory with one-sided WRITE,
//! 2. the server processes them and posts results into its **local**
//!    response buffers,
//! 3. clients **remotely fetch** results with one-sided READ.
//!
//! Because the paper's measured RNICs serve in-bound operations ≈5×
//! faster than they issue out-bound ones, this layout multiplies
//! attainable request throughput without the application redesign that
//! full server-bypass (Pilaf/FaRM-style) demands.
//!
//! Two client-side mechanisms make it practical (§3.2):
//!
//! * a **hybrid mode switch**: after `R` failed fetch retries on
//!   consecutive calls the connection falls back to classic server-reply
//!   (saving client CPU when the server is slow), and returns to remote
//!   fetching when the server-reported process time shrinks;
//! * a **two-segment fetch**: each fetch grabs `F` bytes (header +
//!   payload prefix) so that typical results arrive in a single READ,
//!   with one extra READ only for oversized results.
//!
//! `R` and `F` are selected automatically by enumerating the small
//! hardware-bounded candidate box ([`ParamSelector`]).
//!
//! # Examples
//!
//! An echo RPC between two simulated machines:
//!
//! ```
//! use std::rc::Rc;
//! use rfp_core::{connect, serve_loop, RfpConfig};
//! use rfp_rnic::{Cluster, ClusterProfile};
//! use rfp_simnet::{SimSpan, Simulation};
//!
//! let mut sim = Simulation::new(0);
//! let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
//! let (client_m, server_m) = (cluster.machine(0), cluster.machine(1));
//! let (client, server_conn) = connect(
//!     &client_m,
//!     &server_m,
//!     cluster.qp(0, 1),
//!     cluster.qp(1, 0),
//!     RfpConfig::default(),
//! );
//!
//! let st = server_m.thread("server");
//! sim.spawn(serve_loop(
//!     st,
//!     vec![Rc::new(server_conn)],
//!     |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
//!     SimSpan::nanos(100),
//! ));
//!
//! let ct = client_m.thread("client");
//! sim.spawn(async move {
//!     let reply = client.call(&ct, b"ping").await;
//!     assert_eq!(reply.data, b"ping");
//! });
//! sim.run_for(SimSpan::millis(1));
//! ```

pub mod api;

mod client;
mod conn;
mod failover;
mod gray;
mod header;
mod integrity;
mod mux;
mod overload;
mod params;
mod pool;
pub mod reactor;
mod recovery;
mod server;
mod tuner;

pub use client::{CallInfo, CallResult, ClientStats, RfpClient};
pub use conn::{connect, Mode, RfpConfig, RfpServerConn, RfpTelemetry};
pub use failover::{FailoverConfig, ReplicaClient};
pub use gray::{GrayConfig, ReplicaScorer, RetryBudget, RetryBudgetConfig, ScorerConfig};
pub use header::{
    resp_canary, slot_of, ReqHeader, RespHeader, RespIntegrity, RespStatus, MAX_PAYLOAD,
    MAX_REQ_PAYLOAD, MAX_REQ_PAYLOAD_EPOCH, REQ_HDR, REQ_HDR_EXT, REQ_HDR_TENANT, RESP_HDR,
    RESP_HDR_EXT, RESP_TRAILER,
};
pub use integrity::{verify_response, IntegrityConfig, IntegrityFault};
pub use mux::{serve_loop_tenant, shard_conns, LogicalClient, MuxConfig, RfpMux, TenantId};
pub use overload::{admit, credits_for, Admission, OverloadConfig, TenantCredits};
pub use params::{ParamSelector, Params, WorkloadSample};
pub use pool::RfpPool;
pub use reactor::{CoreSpec, Reactor, ReactorConfig, ReactorPolicy};
pub use recovery::{FailureCause, RecoveryConfig, RpcError};
pub use server::{serve_loop, IdlePolicy, RfpHandler};
pub use tuner::OnlineTuner;
