//! The multi-core serve reactor.
//!
//! One event-driven abstraction replaces the three serve-loop variants
//! that grew up in layers (the classic scan, the PR 5 admission-swept
//! batch drain, the PR 7 per-tenant poller groups): a [`Reactor`] owns
//! N simulated cores, each core owns a disjoint set of connections
//! (EREW partitioning — keys hash to a partition, a partition's
//! connections pin to its core, so the common case touches no shared
//! state), and every core runs the same scan built from one shared
//! slot-service epilogue.
//!
//! # Steal protocol
//!
//! Pure EREW collapses under zipfian skew: the core owning the hot
//! keys saturates while its siblings idle, and closed-loop clients
//! throttle the whole fleet down to the hot core's capacity. With
//! `steal` enabled, a core whose own scan found nothing goes hunting:
//!
//! 1. **Run-queue steal** — take admitted-but-unprocessed requests
//!    from a sibling's run queue (thief end, most recently admitted
//!    first), paying the modeled cross-core [`Handoff`] cost per
//!    request.
//! 2. **Ring steal** — claim one of a loaded sibling's connections
//!    (connection-granularity claims keep the per-connection in-flight
//!    marker single-writer) and drain its request ring in place, still
//!    applying the *owner's* admission policy and serving with the
//!    owner's handler (its partition of the store).
//!
//! Claims are plain `Cell<bool>` test-and-sets: the simulation is
//! cooperatively single-threaded, so any code run between awaits is
//! atomic, and a claimed connection is simply skipped by whoever
//! arrives second. A stolen request is answered into the slot captured
//! at pickup (the reply marker is restored with no intervening await),
//! so owner and thief can answer different slots of one connection
//! concurrently without crossing responses.
//!
//! # Fidelity
//!
//! A single-core reactor replays the legacy loops *event for event*:
//! the scan orders, crash checks, busy charges, credit stamps, and
//! idle backoff are reproduced exactly, and the byte-identity proptest
//! (`tests/reactor_identity.rs`) pins registry CSV, trace, and payload
//! equality against a frozen copy of the pre-refactor loops.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;

use rfp_rnic::{CoreMeter, Handoff, RunQueue, ThreadCtx};
use rfp_simnet::{
    CoreLoad, CoreSkewReport, Counter, FlightRecorder, Gauge, MetricsRegistry, Severity, SimSpan,
    SimTime,
};

use crate::conn::RfpServerConn;
use crate::header::RespStatus;
use crate::overload::{admit, credits_for, Admission, OverloadConfig, TenantCredits};
use crate::server::{IdlePolicy, RfpHandler};

/// Which admission discipline every core of the reactor runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReactorPolicy {
    /// Serve every request in scan order (no admission).
    Plain,
    /// Two-phase scan with the global queue bound and credit
    /// advertisement of the overload layer (PR 5).
    Overload,
    /// Two-phase scan with per-tenant credit domains (PR 7).
    Tenant,
}

/// Reactor-wide knobs.
pub struct ReactorConfig {
    /// Lets idle cores steal work from loaded siblings.
    pub steal: bool,
    /// Modeled cost of moving one request across cores (charged as
    /// busy time on the thief per stolen request).
    pub handoff_cost: SimSpan,
    /// Most requests one steal pass takes before re-scanning its own
    /// partition (keeps a thief from starving its own ring).
    pub steal_batch: usize,
    /// Per-core gauges/counters land here when set
    /// (`serve.core.<i>.steals`, `serve.core.<i>.queue_depth`, …).
    pub registry: Option<MetricsRegistry>,
    /// Steal events are recorded here when set.
    pub recorder: Option<FlightRecorder>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            steal: false,
            handoff_cost: SimSpan::nanos(150),
            steal_batch: 4,
            registry: None,
            recorder: None,
        }
    }
}

/// One core's share of the server: its thread, the connections whose
/// keys it owns, and the handler closed over its store partition.
pub struct CoreSpec {
    /// The simulated core.
    pub thread: Rc<ThreadCtx>,
    /// Connections pinned to this core (EREW: their clients only send
    /// keys this core's partition owns).
    pub conns: Vec<Rc<RfpServerConn>>,
    /// The application handler for this core's partition.
    pub handler: Box<dyn RfpHandler>,
}

/// A connection plus its steal claim. The claim makes each connection
/// single-poller at any instant: owner and thief test-and-set it
/// around every visit, and whoever arrives second skips.
struct OwnedConn {
    conn: Rc<RfpServerConn>,
    claimed: Cell<bool>,
}

impl OwnedConn {
    fn try_claim(&self) -> bool {
        if self.claimed.get() {
            return false;
        }
        self.claimed.set(true);
        true
    }

    fn release(&self) {
        self.claimed.set(false);
    }
}

/// One admitted request parked on a run queue: everything needed to
/// service it later (or from another core) without re-touching the
/// connection's in-flight marker.
struct Ready {
    /// Core that owns the request's connection (indexes `Shared::cores`).
    owner: usize,
    /// Connection index within the owner's set.
    conn: usize,
    /// Ring slot captured at pickup — the reply target.
    slot: usize,
    /// Tenant stamp captured at pickup (tenant policy only).
    tenant: Option<u32>,
    /// Request payload.
    req: Vec<u8>,
}

struct CoreGauges {
    steals: Rc<Counter>,
    queue_depth: Rc<Gauge>,
    served: Rc<Counter>,
    handoff_ns: Rc<Counter>,
}

struct CoreState {
    thread: Rc<ThreadCtx>,
    conns: Vec<OwnedConn>,
    handler: RefCell<Box<dyn RfpHandler>>,
    ov: OverloadConfig,
    runq: RunQueue<Ready>,
    credits: TenantCredits,
    /// Credits advertised on responses, from the previous scan's
    /// backlog (overload policy).
    advertised: Cell<u16>,
    /// Requests the most recent scan found pending — the backlog
    /// signal thieves use to pick a loaded victim.
    last_backlog: Cell<usize>,
    meter: CoreMeter,
    /// Requests this core executed on siblings' behalf.
    steals: Cell<u64>,
    /// Requests siblings took from this core's domain.
    stolen: Cell<u64>,
    gauges: Option<CoreGauges>,
}

struct ScanOutcome {
    served_any: bool,
    crashed: bool,
    backlog: usize,
}

/// What to do with a request a thief pulled off a victim's ring,
/// decided synchronously by the victim's admission policy.
enum Verdict {
    Run(Option<u16>),
    Reject(RespStatus, u16),
}

struct Shared {
    policy: ReactorPolicy,
    idle: IdlePolicy,
    steal: bool,
    steal_batch: usize,
    recorder: Option<FlightRecorder>,
    handoff: Handoff,
    cores: Vec<CoreState>,
}

/// N cores serving one RFP server's connections (see module docs).
///
/// Construct with [`Reactor::new`], then spawn [`Reactor::run_core`]
/// once per core. The handle stays usable afterwards for telemetry
/// ([`Reactor::skew_report`] and the per-core accessors).
pub struct Reactor {
    shared: Rc<Shared>,
}

impl Reactor {
    /// Builds a reactor over `cores`, all running `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty, any core owns no connections, or
    /// `policy` needs overload control that a core's connections do
    /// not carry.
    pub fn new(
        cfg: ReactorConfig,
        cores: Vec<CoreSpec>,
        idle: impl Into<IdlePolicy>,
        policy: ReactorPolicy,
    ) -> Reactor {
        assert!(!cores.is_empty(), "reactor with no cores");
        let states = cores
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                assert!(
                    !spec.conns.is_empty(),
                    "reactor core {i} owns no connections"
                );
                let ov: OverloadConfig = spec.conns[0].overload().clone();
                match policy {
                    ReactorPolicy::Plain => {}
                    ReactorPolicy::Overload => debug_assert!(
                        spec.conns.iter().all(|c| c.overload().enabled),
                        "mixed overload configs on one server thread"
                    ),
                    ReactorPolicy::Tenant => assert!(
                        ov.enabled,
                        "serve_loop_tenant requires overload control (per-tenant credit domains)"
                    ),
                }
                let gauges = cfg.registry.as_ref().map(|reg| CoreGauges {
                    steals: reg.counter(&format!("serve.core.{i}.steals")),
                    queue_depth: reg.gauge(&format!("serve.core.{i}.queue_depth")),
                    served: reg.counter(&format!("serve.core.{i}.served")),
                    handoff_ns: reg.counter(&format!("serve.core.{i}.handoff_ns")),
                });
                CoreState {
                    thread: spec.thread,
                    conns: spec
                        .conns
                        .into_iter()
                        .map(|conn| OwnedConn {
                            conn,
                            claimed: Cell::new(false),
                        })
                        .collect(),
                    handler: RefCell::new(spec.handler),
                    advertised: Cell::new(ov.credit_max),
                    ov,
                    runq: RunQueue::new(),
                    credits: TenantCredits::new(),
                    last_backlog: Cell::new(0),
                    meter: CoreMeter::new(),
                    steals: Cell::new(0),
                    stolen: Cell::new(0),
                    gauges,
                }
            })
            .collect();
        Reactor {
            shared: Rc::new(Shared {
                policy,
                idle: idle.into(),
                steal: cfg.steal,
                steal_batch: cfg.steal_batch.max(1),
                recorder: cfg.recorder,
                handoff: Handoff::new(cfg.handoff_cost),
                cores: states,
            }),
        }
    }

    /// The future driving core `core` — spawn one per core.
    pub fn run_core(&self, core: usize) -> impl Future<Output = ()> {
        assert!(core < self.shared.cores.len(), "no such core");
        let shared = Rc::clone(&self.shared);
        async move { core_loop(shared, core).await }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.shared.cores.len()
    }

    /// Requests core `i` executed (its own plus stolen ones).
    pub fn served(&self, i: usize) -> u64 {
        self.shared.cores[i].meter.served()
    }

    /// Requests core `i` executed on siblings' behalf.
    pub fn steals(&self, i: usize) -> u64 {
        self.shared.cores[i].steals.get()
    }

    /// Requests siblings took from core `i`'s domain.
    pub fn stolen(&self, i: usize) -> u64 {
        self.shared.cores[i].stolen.get()
    }

    /// Empty scans core `i` paid for (idle burn).
    pub fn empty_scans(&self, i: usize) -> u64 {
        self.shared.cores[i].meter.empty_scans()
    }

    /// Simulated nanoseconds core `i` spent napping.
    pub fn nap_ns(&self, i: usize) -> u64 {
        self.shared.cores[i].meter.nap_ns()
    }

    /// Busy fraction of core `i`'s thread since the last reset.
    pub fn utilization(&self, i: usize) -> f64 {
        self.shared.cores[i].thread.utilization()
    }

    /// Cross-core handoffs charged so far.
    pub fn handoffs(&self) -> u64 {
        self.shared.handoff.count()
    }

    /// Total simulated nanoseconds burned on cross-core handoffs.
    pub fn handoff_ns(&self) -> u64 {
        self.shared.handoff.total_ns()
    }

    /// Point-in-time per-core load rollup (the `CoreSkew` health view).
    pub fn skew_report(&self, now: SimTime) -> CoreSkewReport {
        CoreSkewReport {
            at: now,
            cores: self
                .shared
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| CoreLoad {
                    core: i as u32,
                    served: c.meter.served(),
                    queue_depth: c.last_backlog.get() as u64,
                    steals: c.steals.get(),
                    stolen: c.stolen.get(),
                    utilization: c.thread.utilization(),
                })
                .collect(),
        }
    }

    /// Zeroes every per-core meter and utilization clock (start of a
    /// measurement window after warm-up).
    pub fn reset_measurements(&self) {
        self.shared.handoff.reset();
        for c in &self.shared.cores {
            c.meter.reset();
            c.steals.set(0);
            c.stolen.set(0);
            c.thread.reset_utilization();
        }
    }
}

async fn core_loop(shared: Rc<Shared>, me: usize) {
    let thread = Rc::clone(&shared.cores[me].thread);
    let mut nap = SimSpan::ZERO;
    loop {
        // A crashed machine runs no software: park (idle, not busy)
        // until the restart clears the flag.
        if thread.machine().faults().is_crashed() {
            thread
                .idle_wait(
                    thread
                        .handle()
                        .sleep(shared.idle.spin.max(SimSpan::micros(1))),
                )
                .await;
            continue;
        }
        let scan = match shared.policy {
            ReactorPolicy::Plain => shared.scan_plain(me, &thread).await,
            ReactorPolicy::Overload => shared.scan_overload(me, &thread).await,
            ReactorPolicy::Tenant => shared.scan_tenant(me, &thread).await,
        };
        let core = &shared.cores[me];
        core.last_backlog.set(scan.backlog);
        if let Some(g) = &core.gauges {
            g.queue_depth.set(scan.backlog as i64);
        }
        let mut served_any = scan.served_any;
        // Only an otherwise-idle core goes hunting, and never on a
        // crashed machine.
        if !scan.crashed && !served_any && shared.steal && shared.cores.len() > 1 {
            served_any |= shared.steal_pass(me, &thread).await;
        }
        if !served_any {
            core.meter.note_empty_scan();
            thread.busy(shared.idle.spin).await;
            nap = shared.idle.next_nap(nap);
            if !nap.is_zero() {
                core.meter.note_nap(nap);
                thread.idle_wait(thread.handle().sleep(nap)).await;
            }
        } else {
            nap = SimSpan::ZERO;
        }
    }
}

impl Shared {
    fn note_served(&self, me: usize) {
        let core = &self.cores[me];
        core.meter.note_served(1);
        if let Some(g) = &core.gauges {
            g.served.incr();
        }
    }

    fn note_steal(&self, me: usize, victim: usize, thread: &ThreadCtx) {
        let core = &self.cores[me];
        core.steals.set(core.steals.get() + 1);
        let v = &self.cores[victim];
        v.stolen.set(v.stolen.get() + 1);
        if let Some(g) = &core.gauges {
            g.steals.incr();
            g.handoff_ns.add(self.handoff.cost().as_nanos());
        }
        if let Some(rec) = &self.recorder {
            rec.record(
                thread.now(),
                None,
                0,
                Severity::Info,
                "core.steal",
                format!("core {me} stole work from core {victim}"),
            );
        }
    }

    /// The shared slot-service epilogue, hoisted out of the legacy
    /// plain/overload/tenant loops: run the owner's handler, charge
    /// the processing span, honor a mid-service crash, stamp credits,
    /// and answer into the request's own slot. Returns `false` if the
    /// machine crashed mid-service (the half-done work dies with it;
    /// the client's resubmission redelivers after the restart).
    async fn service_one(
        &self,
        owner: usize,
        thread: &ThreadCtx,
        conn: &RfpServerConn,
        req: &[u8],
        credits: Option<u16>,
        slot: usize,
    ) -> bool {
        let (resp, process) = self.cores[owner].handler.borrow_mut().handle(req);
        if !process.is_zero() {
            thread.busy(process).await;
        }
        if thread.machine().faults().is_crashed() {
            return false;
        }
        if let Some(c) = credits {
            conn.set_advertised_credits(c);
        }
        // No await between the marker restore and the send: the reply
        // marker is connection-global and any concurrent try_recv
        // moves it.
        conn.set_reply_slot(slot);
        conn.send(thread, &resp).await;
        true
    }

    /// The classic scan: every pending request is processed in scan
    /// order, each connection drained (up to its ring window) per
    /// visit.
    async fn scan_plain(&self, me: usize, thread: &ThreadCtx) -> ScanOutcome {
        let core = &self.cores[me];
        let mut served_any = false;
        let mut crashed = false;
        let mut backlog = 0usize;
        'conns: for oc in &core.conns {
            if !oc.try_claim() {
                continue;
            }
            for _ in 0..oc.conn.window() {
                if thread.machine().faults().is_crashed() {
                    crashed = true;
                    break;
                }
                let Some(req) = oc.conn.try_recv(thread).await else {
                    break;
                };
                backlog += 1;
                let slot = oc.conn.reply_slot();
                if !self
                    .service_one(me, thread, &oc.conn, &req, None, slot)
                    .await
                {
                    crashed = true;
                    break;
                }
                served_any = true;
                self.note_served(me);
            }
            oc.release();
            if crashed {
                break 'conns;
            }
        }
        ScanOutcome {
            served_any,
            crashed,
            backlog,
        }
    }

    /// The admission-controlled scan (PR 5): phase 1 sweeps every
    /// pending request through the pure admission rule, answering
    /// rejections on the spot; phase 2 drains the admitted batch.
    /// Admission is final — nothing admitted is ever shed.
    async fn scan_overload(&self, me: usize, thread: &ThreadCtx) -> ScanOutcome {
        let core = &self.cores[me];
        let ov = &core.ov;
        let mut served_any = false;
        let mut crashed = false;
        let mut backlog = 0usize;
        'sweep: for (ci, oc) in core.conns.iter().enumerate() {
            if !oc.try_claim() {
                continue;
            }
            for _ in 0..oc.conn.window() {
                if thread.machine().faults().is_crashed() {
                    crashed = true;
                    break;
                }
                let Some(req) = oc.conn.try_recv(thread).await else {
                    break;
                };
                backlog += 1;
                match admit(
                    ov,
                    thread.now(),
                    oc.conn.current_deadline(),
                    core.runq.len(),
                ) {
                    Admission::Admit => core.runq.push(Ready {
                        owner: me,
                        conn: ci,
                        slot: oc.conn.reply_slot(),
                        tenant: None,
                        req,
                    }),
                    Admission::Busy => {
                        // Out of queue room: advertise zero so the
                        // client backs off before resubmitting.
                        oc.conn.set_advertised_credits(0);
                        oc.conn.reject(thread, RespStatus::Busy).await;
                        served_any = true;
                    }
                    Admission::Shed => {
                        oc.conn.set_advertised_credits(core.advertised.get());
                        oc.conn.reject(thread, RespStatus::Shed).await;
                        served_any = true;
                    }
                }
            }
            oc.release();
            if crashed {
                break 'sweep;
            }
        }
        // Credits advertised on the *next* scan's rejections and this
        // batch's responses come from this scan's backlog — the
        // freshest level the server knows.
        core.advertised.set(credits_for(ov, backlog));
        if !crashed {
            while let Some(r) = core.runq.pop() {
                if thread.machine().faults().is_crashed() {
                    break;
                }
                let ok = self
                    .service_one(
                        me,
                        thread,
                        &core.conns[r.conn].conn,
                        &r.req,
                        Some(core.advertised.get()),
                        r.slot,
                    )
                    .await;
                if !ok {
                    break;
                }
                served_any = true;
                self.note_served(me);
            }
        }
        // A crash drops whatever the sweep admitted (the legacy batch
        // vector died with the scan); already-recv'd requests are
        // redelivered by resubmission after the restart.
        core.runq.clear();
        ScanOutcome {
            served_any,
            crashed,
            backlog,
        }
    }

    /// The per-tenant admission scan (PR 7): the two-phase sweep with
    /// [`TenantCredits`] in place of the single global queue bound.
    async fn scan_tenant(&self, me: usize, thread: &ThreadCtx) -> ScanOutcome {
        let core = &self.cores[me];
        let ov = &core.ov;
        let mut served_any = false;
        let mut crashed = false;
        let mut backlog = 0usize;
        core.credits.begin_scan();
        'sweep: for (ci, oc) in core.conns.iter().enumerate() {
            if !oc.try_claim() {
                continue;
            }
            for _ in 0..oc.conn.window() {
                if thread.machine().faults().is_crashed() {
                    crashed = true;
                    break;
                }
                let Some(req) = oc.conn.try_recv(thread).await else {
                    break;
                };
                backlog += 1;
                let tenant = oc.conn.current_tenant();
                match core
                    .credits
                    .admit(ov, thread.now(), oc.conn.current_deadline(), tenant)
                {
                    Admission::Admit => core.runq.push(Ready {
                        owner: me,
                        conn: ci,
                        slot: oc.conn.reply_slot(),
                        tenant,
                        req,
                    }),
                    Admission::Busy => {
                        oc.conn.set_advertised_credits(0);
                        oc.conn.reject(thread, RespStatus::Busy).await;
                        served_any = true;
                    }
                    Admission::Shed => {
                        oc.conn
                            .set_advertised_credits(core.credits.credits(ov, tenant));
                        oc.conn.reject(thread, RespStatus::Shed).await;
                        served_any = true;
                    }
                }
            }
            oc.release();
            if crashed {
                break 'sweep;
            }
        }
        if !crashed {
            while let Some(r) = core.runq.pop() {
                if thread.machine().faults().is_crashed() {
                    break;
                }
                // The credit level stamped on each response is the
                // *sender's own* domain backlog.
                let credits = core.credits.credits(ov, r.tenant);
                let ok = self
                    .service_one(
                        me,
                        thread,
                        &core.conns[r.conn].conn,
                        &r.req,
                        Some(credits),
                        r.slot,
                    )
                    .await;
                if !ok {
                    break;
                }
                served_any = true;
                self.note_served(me);
            }
        }
        core.runq.clear();
        ScanOutcome {
            served_any,
            crashed,
            backlog,
        }
    }

    /// The victim's admission policy applied to a request a thief just
    /// pulled off the victim's ring. Synchronous — must run with no
    /// await since the `try_recv` that delivered the request.
    fn admission(&self, victim: usize, conn: &RfpServerConn, now: SimTime) -> Verdict {
        let v = &self.cores[victim];
        match self.policy {
            ReactorPolicy::Plain => Verdict::Run(None),
            ReactorPolicy::Overload => {
                match admit(&v.ov, now, conn.current_deadline(), v.runq.len()) {
                    Admission::Admit => Verdict::Run(Some(v.advertised.get())),
                    Admission::Busy => Verdict::Reject(RespStatus::Busy, 0),
                    Admission::Shed => Verdict::Reject(RespStatus::Shed, v.advertised.get()),
                }
            }
            ReactorPolicy::Tenant => {
                let tenant = conn.current_tenant();
                match v.credits.admit(&v.ov, now, conn.current_deadline(), tenant) {
                    Admission::Admit => Verdict::Run(Some(v.credits.credits(&v.ov, tenant))),
                    Admission::Busy => Verdict::Reject(RespStatus::Busy, 0),
                    Admission::Shed => {
                        Verdict::Reject(RespStatus::Shed, v.credits.credits(&v.ov, tenant))
                    }
                }
            }
        }
    }

    /// One steal pass by an idle core: first sibling run queues, then
    /// loaded siblings' rings. Returns whether any response (service
    /// or rejection) was produced.
    async fn steal_pass(&self, me: usize, thread: &ThreadCtx) -> bool {
        let n = self.cores.len();
        let batch = self.steal_batch as u64;
        let mut taken = 0u64;
        let mut any = false;
        'victims: for k in 1..n {
            let v = (me + k) % n;
            let victim = &self.cores[v];
            // (a) Admitted-but-unprocessed work parked on the victim's
            // run queue. The victim already made the admission call;
            // the thief just executes, paying the handoff.
            while taken < batch {
                if thread.machine().faults().is_crashed() {
                    break 'victims;
                }
                let Some(r) = victim.runq.steal() else {
                    break;
                };
                self.handoff.charge(thread).await;
                self.note_steal(me, v, thread);
                let credits = match self.policy {
                    ReactorPolicy::Plain => None,
                    ReactorPolicy::Overload => Some(victim.advertised.get()),
                    ReactorPolicy::Tenant => Some(victim.credits.credits(&victim.ov, r.tenant)),
                };
                let conn = &self.cores[r.owner].conns[r.conn].conn;
                if !self
                    .service_one(r.owner, thread, conn, &r.req, credits, r.slot)
                    .await
                {
                    break 'victims;
                }
                taken += 1;
                any = true;
                self.note_served(me);
            }
            if taken >= batch {
                break;
            }
            // (b) Ring backlog: only victims whose last scan actually
            // found work — polling an idle sibling's rings would burn
            // thief CPU for nothing.
            if victim.last_backlog.get() == 0 {
                continue;
            }
            for oc in &victim.conns {
                if taken >= batch {
                    break 'victims;
                }
                if !oc.try_claim() {
                    continue;
                }
                let mut dead = false;
                for _ in 0..oc.conn.window() {
                    if taken >= batch {
                        break;
                    }
                    if thread.machine().faults().is_crashed() {
                        dead = true;
                        break;
                    }
                    let Some(req) = oc.conn.try_recv(thread).await else {
                        break;
                    };
                    match self.admission(v, &oc.conn, thread.now()) {
                        Verdict::Run(credits) => {
                            let slot = oc.conn.reply_slot();
                            self.handoff.charge(thread).await;
                            self.note_steal(me, v, thread);
                            if !self
                                .service_one(v, thread, &oc.conn, &req, credits, slot)
                                .await
                            {
                                dead = true;
                                break;
                            }
                            taken += 1;
                            any = true;
                            self.note_served(me);
                        }
                        Verdict::Reject(status, adv) => {
                            oc.conn.set_advertised_credits(adv);
                            oc.conn.reject(thread, status).await;
                            any = true;
                        }
                    }
                }
                oc.release();
                if dead {
                    break 'victims;
                }
            }
        }
        any
    }
}
