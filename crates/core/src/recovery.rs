//! Client-side crash recovery policy and errors.
//!
//! The paper evaluates RFP on a healthy cluster; a production deployment
//! additionally needs the connection to survive server crashes, QP
//! errors and loss bursts. The recovery loop
//! ([`RfpClient::call_with_recovery`](crate::RfpClient::call_with_recovery))
//! layers three mechanisms over the plain protocol:
//!
//! * a **deadline** on each attempt's response wait — a server that
//!   stops answering turns into a retryable failure instead of a hang,
//! * **jittered exponential backoff** between attempts (shared
//!   [`RetryPolicy`] machinery, also used by HERD's retransmit loop),
//! * **QP re-establishment** (with buffer re-registration cost) when
//!   the QP is in the error state, via a factory installed with
//!   [`RfpClient::set_reconnect`](crate::RfpClient::set_reconnect),
//! * **idempotent resubmission**: every retry re-deposits the request
//!   under the *same* sequence number, and the server's dedup rule
//!   (accept a request iff its seq differs from the last delivered one)
//!   makes replays harmless — a restarted server recovers the last
//!   answered seq from its response buffer, so an already-served
//!   request is never executed twice after a warm restart.

use rfp_rnic::VerbError;
use rfp_simnet::{RetryPolicy, SimSpan};

use crate::header::RespStatus;

/// Tunables of the client recovery loop.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Per-attempt deadline on the response wait: an attempt whose
    /// response has not arrived within this span of its submission
    /// fails (and the call backs off and resubmits).
    pub fetch_deadline: SimSpan,
    /// Attempt budget and backoff schedule across attempts.
    pub retry: RetryPolicy,
    /// CPU cost of re-establishing the QP and re-registering buffers
    /// (connection setup handshake, `ibv_create_qp` + rkey exchange).
    pub reconnect_cpu: SimSpan,
    /// Optional deadline on the *whole call*, measured from its start:
    /// backoff sleeps are clamped so they never overshoot it, and once
    /// the clock reaches it the loop gives up instead of resubmitting.
    /// `None` (the default) bounds the call by the attempt budget only.
    pub call_deadline: Option<SimSpan>,
    /// Seed of the backoff-jitter stream (independent per client).
    pub seed: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            fetch_deadline: SimSpan::micros(100),
            retry: RetryPolicy::exponential(16, SimSpan::micros(20), SimSpan::millis(2), 0.2),
            reconnect_cpu: SimSpan::micros(5),
            call_deadline: None,
            seed: 0x5EED_0001,
        }
    }
}

/// Why one recovery attempt failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// A verb completed with an error (peer down, QP error).
    Verb(VerbError),
    /// The per-attempt deadline expired with no matching response.
    Deadline,
    /// The server's admission control rejected the request
    /// (`Busy`/`Shed`); it was never executed, and the next attempt
    /// resubmits it under a fresh sequence number.
    Rejected(RespStatus),
    /// The attempt's bounded verify-and-refetch budget was exhausted:
    /// every fetch of an otherwise matching response failed integrity
    /// verification (torn DMA, bit flips). The next attempt escalates
    /// to a QP re-establishment and resubmits under the same seq (the
    /// server may well have executed the request — only the fetched
    /// image is suspect — and dedup makes the replay harmless).
    Corrupt,
}

/// A call that exhausted its recovery budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RpcError {
    /// Attempts made (including the first).
    pub attempts: u32,
    /// The failure that ended the final attempt.
    pub last: FailureCause,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "call failed after {} attempts ({:?})",
            self.attempts, self.last
        )
    }
}

impl std::error::Error for RpcError {}
