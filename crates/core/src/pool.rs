//! A pool of RFP connections to one server.
//!
//! A single RFP connection carries one outstanding call (its buffers
//! hold one request/response pair — the paper's clients are synchronous,
//! §2.2). Concurrency within one client therefore comes from *multiple
//! connections*; this pool manages a set of them behind a FIFO
//! semaphore, so any number of concurrent tasks can issue calls and at
//! most `size` are in flight at once — the building block for open-loop
//! and pipelined client drivers.

use std::cell::RefCell;
use std::rc::Rc;

use rfp_rnic::ThreadCtx;
use rfp_simnet::Semaphore;

use crate::client::{CallResult, RfpClient};

/// A fixed-size pool of RFP connections.
pub struct RfpPool {
    clients: Vec<Rc<RfpClient>>,
    sem: Semaphore,
    free: RefCell<Vec<usize>>,
}

impl RfpPool {
    /// Builds a pool over the given connections.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn new(clients: Vec<Rc<RfpClient>>) -> Self {
        assert!(!clients.is_empty(), "pool needs at least one connection");
        let n = clients.len();
        RfpPool {
            clients,
            sem: Semaphore::new(n),
            free: RefCell::new((0..n).rev().collect()),
        }
    }

    /// Number of connections in the pool.
    pub fn size(&self) -> usize {
        self.clients.len()
    }

    /// Connections currently idle.
    pub fn idle(&self) -> usize {
        self.free.borrow().len()
    }

    /// The pooled connections (for stats aggregation).
    pub fn clients(&self) -> &[Rc<RfpClient>] {
        &self.clients
    }

    /// Issues one call on the next idle connection, waiting FIFO-fair
    /// when all are busy.
    pub async fn call(&self, thread: &ThreadCtx, req: &[u8]) -> CallResult {
        let _permit = self.sem.acquire().await;
        let idx = self
            .free
            .borrow_mut()
            .pop()
            .expect("a permit implies a free connection");
        let out = self.clients[idx].call(thread, req).await;
        self.free.borrow_mut().push(idx);
        out
    }

    /// Total completed calls across the pool.
    pub fn total_calls(&self) -> u64 {
        self.clients.iter().map(|c| c.stats().calls()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::RfpConfig;
    use crate::server::serve_loop;
    use rfp_rnic::{Cluster, ClusterProfile};
    use rfp_simnet::{SimSpan, Simulation, WaitGroup};
    use std::cell::Cell;

    #[test]
    fn pool_runs_concurrent_calls_capped_at_size() {
        let mut sim = Simulation::new(13);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));

        let mut clients = Vec::new();
        let mut conns = Vec::new();
        for _ in 0..4 {
            let (cl, sc) = crate::conn::connect(
                &cm,
                &sm,
                cluster.qp(0, 1),
                cluster.qp(1, 0),
                RfpConfig::default(),
            );
            clients.push(Rc::new(cl));
            conns.push(Rc::new(sc));
        }
        let pool = Rc::new(RfpPool::new(clients));

        // One server thread per connection and a fixed 10µs process
        // time: end-to-end concurrency is then visible in wall-clock
        // terms (a single server thread would serialize the processing
        // regardless of what the pool overlaps).
        for (i, conn) in conns.into_iter().enumerate() {
            let st = sm.thread(format!("server{i}"));
            sim.spawn(serve_loop(
                st,
                vec![conn],
                |req: &[u8]| (req.to_vec(), SimSpan::micros(10)),
                SimSpan::nanos(100),
            ));
        }

        // 8 concurrent tasks over 4 connections.
        let wg = WaitGroup::new();
        let finished_at = Rc::new(Cell::new(0u64));
        for i in 0..8u32 {
            let p = Rc::clone(&pool);
            let t = cm.thread(format!("task{i}"));
            let token = wg.add();
            sim.spawn(async move {
                let out = p.call(&t, &i.to_le_bytes()).await;
                assert_eq!(out.data, i.to_le_bytes());
                drop(token);
            });
        }
        let w = wg.clone();
        let f = Rc::clone(&finished_at);
        let h = sim.handle();
        sim.spawn(async move {
            w.wait().await;
            f.set(h.now().as_nanos());
        });

        sim.run_for(SimSpan::millis(5));
        assert_eq!(pool.total_calls(), 8);
        assert_eq!(pool.idle(), 4);
        // 8 calls × ~13-25µs each (the 10µs server time rides the
        // hybrid switch), 4-way concurrent ⇒ two waves — far below 8
        // serial calls (~110µs+).
        let elapsed_us = finished_at.get() as f64 / 1e3;
        assert!(
            elapsed_us < 60.0,
            "pool failed to overlap calls: {elapsed_us:.1}us"
        );
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn empty_pool_rejected() {
        let _ = RfpPool::new(Vec::new());
    }
}
