//! A pool of RFP connections to one server.
//!
//! A single RFP connection carries one outstanding call (its buffers
//! hold one request/response pair — the paper's clients are synchronous,
//! §2.2). Concurrency within one client therefore comes from *multiple
//! connections*; this pool manages a set of them behind a FIFO
//! semaphore, so any number of concurrent tasks can issue calls and at
//! most `size` are in flight at once — the building block for open-loop
//! and pipelined client drivers.
//!
//! With [`attach_telemetry`](RfpPool::attach_telemetry) the pool reports
//! how long callers queue for a connection (`<prefix>.acquire_wait`) and
//! how many are queued right now (`<prefix>.queue_depth`) — under
//! overload the pool is the first place queueing shows up, before any
//! wire-level symptom.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rfp_rnic::ThreadCtx;
use rfp_simnet::{Counter, Gauge, Histogram, MetricsRegistry, Semaphore, SemaphoreGuard};

use crate::client::{CallInfo, CallResult, RfpClient};
use crate::conn::Mode;
use crate::header::RespStatus;

/// Registry-backed pool instruments (see
/// [`attach_telemetry`](RfpPool::attach_telemetry)).
struct PoolInstruments {
    /// Time callers spent waiting for a free connection.
    acquire_wait: Rc<Histogram>,
    /// Callers currently queued for a connection.
    queue_depth: Rc<Gauge>,
    /// Overload calls shed in the pool because their deadline budget was
    /// spent before a connection freed up (zero wire traffic).
    local_sheds: Rc<Counter>,
    /// Registry + prefix kept for the lazily created
    /// `<prefix>.integrity_retries` counter: like the client's recovery
    /// counters, a run that never sees a corrupt fetch materialises no
    /// instrument (keeping fault-free metric output byte-identical).
    registry: MetricsRegistry,
    prefix: String,
}

impl PoolInstruments {
    /// Folds one call's discarded-fetch count into the lazy pool-level
    /// counter.
    fn note_integrity(&self, retries: u32) {
        if retries > 0 {
            self.registry
                .counter(&format!("{}.integrity_retries", self.prefix))
                .add(retries as u64);
        }
    }
}

/// A fixed-size pool of RFP connections.
pub struct RfpPool {
    clients: Vec<Rc<RfpClient>>,
    sem: Semaphore,
    free: RefCell<Vec<usize>>,
    waiting: Cell<i64>,
    instruments: RefCell<Option<PoolInstruments>>,
}

impl RfpPool {
    /// Builds a pool over the given connections.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn new(clients: Vec<Rc<RfpClient>>) -> Self {
        assert!(!clients.is_empty(), "pool needs at least one connection");
        let n = clients.len();
        RfpPool {
            clients,
            sem: Semaphore::new(n),
            free: RefCell::new((0..n).rev().collect()),
            waiting: Cell::new(0),
            instruments: RefCell::new(None),
        }
    }

    /// Registers the pool's instruments under `prefix` (e.g.
    /// `"kv.pool"`): `<prefix>.acquire_wait` (histogram) and
    /// `<prefix>.queue_depth` (gauge). Without this call the pool
    /// touches no registry at all.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry, prefix: &str) {
        *self.instruments.borrow_mut() = Some(PoolInstruments {
            acquire_wait: registry.histogram(&format!("{prefix}.acquire_wait")),
            queue_depth: registry.gauge(&format!("{prefix}.queue_depth")),
            local_sheds: registry.counter(&format!("{prefix}.local_sheds")),
            registry: registry.clone(),
            prefix: prefix.to_string(),
        });
    }

    /// Number of connections in the pool.
    pub fn size(&self) -> usize {
        self.clients.len()
    }

    /// Connections currently idle.
    pub fn idle(&self) -> usize {
        self.free.borrow().len()
    }

    /// The pooled connections (for stats aggregation).
    pub fn clients(&self) -> &[Rc<RfpClient>] {
        &self.clients
    }

    /// Waits FIFO-fair for a free connection, recording the wait against
    /// the pool instruments when attached.
    async fn acquire(&self, thread: &ThreadCtx) -> (SemaphoreGuard, usize) {
        let t0 = thread.now();
        self.waiting.set(self.waiting.get() + 1);
        if let Some(ins) = &*self.instruments.borrow() {
            ins.queue_depth.set(self.waiting.get());
        }
        let permit = self.sem.acquire().await;
        self.waiting.set(self.waiting.get() - 1);
        if let Some(ins) = &*self.instruments.borrow() {
            ins.queue_depth.set(self.waiting.get());
            ins.acquire_wait.record(thread.now() - t0);
        }
        let idx = self
            .free
            .borrow_mut()
            .pop()
            .expect("a permit implies a free connection");
        (permit, idx)
    }

    /// Issues one call on the next idle connection, waiting FIFO-fair
    /// when all are busy.
    pub async fn call(&self, thread: &ThreadCtx, req: &[u8]) -> CallResult {
        let (_permit, idx) = self.acquire(thread).await;
        let out = self.clients[idx].call(thread, req).await;
        self.free.borrow_mut().push(idx);
        if let Some(ins) = &*self.instruments.borrow() {
            ins.note_integrity(out.info.integrity_retries);
        }
        out
    }

    /// Issues a whole batch of calls pipelined over **one** connection
    /// ([`RfpClient::call_pipelined`]): the connection's ring window
    /// bounds how many ride concurrently, and their fetch polls share
    /// doorbell rings. Waits FIFO-fair for a connection like
    /// [`call`](RfpPool::call); returns one result per request, in
    /// order.
    pub async fn call_pipelined(&self, thread: &ThreadCtx, reqs: &[Vec<u8>]) -> Vec<CallResult> {
        let (_permit, idx) = self.acquire(thread).await;
        let out = self.clients[idx].call_pipelined(thread, reqs).await;
        self.free.borrow_mut().push(idx);
        if let Some(ins) = &*self.instruments.borrow() {
            for call in &out {
                ins.note_integrity(call.info.integrity_retries);
            }
        }
        out
    }

    /// Overload-aware [`call`](RfpPool::call): the call's deadline
    /// budget starts at *arrival*, so time queued in the pool counts
    /// against it, and a call whose budget is spent before a connection
    /// frees up is shed right here — zero wire traffic. That local shed
    /// is the cheapest graceful degradation the subsystem has: the
    /// pool's queue stops amplifying an already-overloaded server.
    ///
    /// # Panics
    ///
    /// Panics if the pooled connections do not have overload control
    /// enabled.
    pub async fn call_overload(&self, thread: &ThreadCtx, req: &[u8]) -> CallResult {
        let t0 = thread.now();
        let deadline = {
            let ov = self.clients[0].overload_config();
            assert!(ov.enabled, "call_overload requires overload control");
            t0 + ov.deadline
        };
        let (_permit, idx) = self.acquire(thread).await;
        if thread.now() >= deadline {
            self.free.borrow_mut().push(idx);
            if let Some(ins) = &*self.instruments.borrow() {
                ins.local_sheds.incr();
            }
            return CallResult {
                data: Vec::new(),
                info: CallInfo {
                    attempts: 0,
                    extra_read: false,
                    completed_in: Mode::RemoteFetch,
                    latency: thread.now() - t0,
                    server_time_us: 0,
                    status: RespStatus::Shed,
                    integrity_retries: 0,
                },
            };
        }
        let out = self.clients[idx]
            .call_overload(thread, req, Some(deadline))
            .await;
        self.free.borrow_mut().push(idx);
        if let Some(ins) = &*self.instruments.borrow() {
            ins.note_integrity(out.info.integrity_retries);
        }
        out
    }

    /// Total completed calls across the pool.
    pub fn total_calls(&self) -> u64 {
        self.clients.iter().map(|c| c.stats().calls()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::RfpConfig;
    use crate::server::serve_loop;
    use rfp_rnic::{Cluster, ClusterProfile};
    use rfp_simnet::{SimSpan, Simulation, WaitGroup};
    use std::cell::Cell;

    fn pooled_rig(
        sim: &mut Simulation,
        cfg: RfpConfig,
        size: usize,
    ) -> (Rc<RfpPool>, Rc<rfp_rnic::Machine>) {
        let cluster = Cluster::new(sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let mut clients = Vec::new();
        let mut conns = Vec::new();
        for _ in 0..size {
            let (cl, sc) =
                crate::conn::connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg.clone());
            clients.push(Rc::new(cl));
            conns.push(Rc::new(sc));
        }
        // One server thread per connection and a fixed 10µs process
        // time: end-to-end concurrency is then visible in wall-clock
        // terms (a single server thread would serialize the processing
        // regardless of what the pool overlaps).
        for (i, conn) in conns.into_iter().enumerate() {
            let st = sm.thread(format!("server{i}"));
            sim.spawn(serve_loop(
                st,
                vec![conn],
                |req: &[u8]| (req.to_vec(), SimSpan::micros(10)),
                SimSpan::nanos(100),
            ));
        }
        (Rc::new(RfpPool::new(clients)), cm)
    }

    #[test]
    fn pool_runs_concurrent_calls_capped_at_size() {
        let mut sim = Simulation::new(13);
        let (pool, cm) = pooled_rig(&mut sim, RfpConfig::default(), 4);

        // 8 concurrent tasks over 4 connections.
        let wg = WaitGroup::new();
        let finished_at = Rc::new(Cell::new(0u64));
        for i in 0..8u32 {
            let p = Rc::clone(&pool);
            let t = cm.thread(format!("task{i}"));
            let token = wg.add();
            sim.spawn(async move {
                let out = p.call(&t, &i.to_le_bytes()).await;
                assert_eq!(out.data, i.to_le_bytes());
                drop(token);
            });
        }
        let w = wg.clone();
        let f = Rc::clone(&finished_at);
        let h = sim.handle();
        sim.spawn(async move {
            w.wait().await;
            f.set(h.now().as_nanos());
        });

        sim.run_for(SimSpan::millis(5));
        assert_eq!(pool.total_calls(), 8);
        assert_eq!(pool.idle(), 4);
        // 8 calls × ~13-25µs each (the 10µs server time rides the
        // hybrid switch), 4-way concurrent ⇒ two waves — far below 8
        // serial calls (~110µs+).
        let elapsed_us = finished_at.get() as f64 / 1e3;
        assert!(
            elapsed_us < 60.0,
            "pool failed to overlap calls: {elapsed_us:.1}us"
        );
    }

    #[test]
    fn pool_acquire_wait_p99_bounded_at_4x_oversubscription() {
        // 16 tasks over 4 connections (4× oversubscription), all
        // arriving together. With strict FIFO handoff every caller
        // waits at most 3 "waves" of calls ahead of it; the old
        // re-race admission let a late arriver overtake queued waiters,
        // which unbounded the tail. Each call is ~13-25µs end-to-end
        // (10µs server time riding the hybrid switch), so three waves
        // stay well under 100µs.
        let mut sim = Simulation::new(17);
        let (pool, cm) = pooled_rig(&mut sim, RfpConfig::default(), 4);
        let registry = MetricsRegistry::new();
        pool.attach_telemetry(&registry, "pool");
        let wait_hist = registry.histogram("pool.acquire_wait");

        for i in 0..16u32 {
            let p = Rc::clone(&pool);
            let t = cm.thread(format!("task{i}"));
            sim.spawn(async move {
                let _ = p.call(&t, &i.to_le_bytes()).await;
            });
        }
        sim.run_for(SimSpan::millis(5));

        assert_eq!(pool.total_calls(), 16);
        assert_eq!(wait_hist.len(), 16);
        let p99 = wait_hist.percentile(99.0).expect("16 samples");
        assert!(
            p99 < SimSpan::micros(100),
            "FIFO handoff should bound the acquire tail: p99 = {}ns",
            p99.as_nanos()
        );
        // The tail is the last wave, not an unlucky starved waiter: the
        // worst wait stays within 2× the median wait plus one wave.
        let p50 = wait_hist.percentile(50.0).expect("16 samples");
        let max = wait_hist.max().expect("16 samples");
        assert!(
            max <= p50 + p50 + SimSpan::micros(30),
            "starved waiter: max {}ns vs p50 {}ns",
            max.as_nanos(),
            p50.as_nanos()
        );
    }

    #[test]
    fn pool_telemetry_records_waits_and_depth() {
        let mut sim = Simulation::new(13);
        let (pool, cm) = pooled_rig(&mut sim, RfpConfig::default(), 2);
        let registry = MetricsRegistry::new();
        pool.attach_telemetry(&registry, "pool");
        let wait_hist = registry.histogram("pool.acquire_wait");
        let depth = registry.gauge("pool.queue_depth");

        for i in 0..6u32 {
            let p = Rc::clone(&pool);
            let t = cm.thread(format!("task{i}"));
            sim.spawn(async move {
                let _ = p.call(&t, &i.to_le_bytes()).await;
            });
        }
        sim.run_for(SimSpan::millis(5));

        // Every call recorded its acquire wait; with 6 tasks over 2
        // connections most of them queued for a while.
        assert_eq!(wait_hist.len(), 6);
        assert!(wait_hist.max().unwrap() > SimSpan::ZERO);
        // Everyone got through: the queue drained back to empty.
        assert_eq!(depth.get(), 0);
        assert_eq!(pool.total_calls(), 6);
    }
}
