//! Overload control: credit-based admission and deadline-aware shedding.
//!
//! Under overload RFP's own mechanics work against it (§2.2 of the
//! paper): clients that exhaust their `R` fetch retries either keep
//! polling with RDMA READs — burning the in-bound engine the server
//! needs to absorb request WRITEs — or switch to server-reply mode and
//! burn the ≈5×-slower out-bound engine. Either way saturation turns
//! into collapse. This module adds the protocol-level pieces that turn
//! the collapse back into a plateau:
//!
//! * **deadline stamping** — a client using the overload path stamps an
//!   absolute deadline into the (extended) request header;
//! * **admission control** — the server bounds how many requests it
//!   admits per scan and sheds requests whose stamped deadline already
//!   passed, answering rejections with an explicit
//!   [`RespStatus`](crate::RespStatus) verdict that costs the client
//!   *one* in-bound READ instead of `R` of them;
//! * **credit advertisement** — every response carries the server's
//!   current admission-credit level; clients pause before submitting
//!   when credits hit zero, keeping rejected work off the wire
//!   entirely.
//!
//! Everything is gated on [`OverloadConfig::enabled`], which defaults to
//! `false`; a disabled config changes no wire byte, schedules no event
//! and creates no instrument, so existing runs are byte-identical.

use std::cell::RefCell;
use std::collections::BTreeMap;

use rfp_simnet::{RetryPolicy, SimSpan, SimTime};

/// Tunables of the overload-control subsystem. Carried by
/// [`RfpConfig`](crate::RfpConfig), so both endpoints of a connection
/// see the same knobs.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Master switch. `false` (the default) keeps every path — wire
    /// format, scheduling, instruments — exactly as without the
    /// subsystem.
    pub enabled: bool,
    /// Requests a server thread admits per scan of its connections;
    /// pending requests beyond this bound are answered `Busy`.
    pub queue_limit: usize,
    /// Per-call budget: the client stamps `now + deadline` into the
    /// request header, the server sheds any request it picks up after
    /// that instant, and the client stops tight-polling for the
    /// response once it passes.
    pub deadline: SimSpan,
    /// Credits advertised when the server is idle (backlog at or below
    /// [`credit_low_water`](OverloadConfig::credit_low_water)).
    pub credit_max: u16,
    /// Backlog (pending requests seen in one scan) at or below which
    /// the full [`credit_max`](OverloadConfig::credit_max) is
    /// advertised.
    pub credit_low_water: usize,
    /// Backlog at or above which zero credits are advertised; between
    /// the waters the advertisement falls linearly.
    pub credit_high_water: usize,
    /// Re-admission schedule: attempts and jittered backoff applied
    /// when a call's submission is answered `Busy`/`Shed`.
    pub retry: RetryPolicy,
    /// Pause before submitting while the last advertised credit level
    /// is zero (jittered like a backoff step).
    pub credit_wait: SimSpan,
    /// After the call's deadline passes, the client stops tight-polling
    /// and probes for the verdict at this (jittered, exponentially
    /// growing) pace instead.
    pub probe_pause: SimSpan,
    /// Verdict probes issued after the deadline before the client gives
    /// up on the attempt locally.
    pub max_probes: u32,
    /// Seed of the client's backoff-jitter stream. Derive a distinct
    /// stream per client (e.g. `derive_seed(base, idx)`) so backoffs
    /// don't synchronise into a thundering herd.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            enabled: false,
            queue_limit: 8,
            deadline: SimSpan::micros(50),
            credit_max: 8,
            credit_low_water: 4,
            credit_high_water: 16,
            retry: RetryPolicy::exponential(4, SimSpan::micros(10), SimSpan::micros(200), 0.3),
            credit_wait: SimSpan::micros(10),
            probe_pause: SimSpan::micros(5),
            max_probes: 8,
            seed: 0x0C10_AD00,
        }
    }
}

/// Verdict of the server's admission check for one pending request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Execute it (and never shed it afterwards).
    Admit,
    /// Reject: the scan's admission budget is exhausted.
    Busy,
    /// Reject: the stamped deadline already passed.
    Shed,
}

/// The admission rule, as a pure function so its safety properties are
/// directly testable: a request is shed **iff** its stamped deadline
/// has passed, turned away `Busy` **iff** it is within deadline but the
/// queue bound is reached, and admitted otherwise. `serve_loop` calls
/// this once per pending request *before* any processing, so a request
/// the server has begun processing can never be shed.
pub fn admit(
    cfg: &OverloadConfig,
    now: SimTime,
    deadline: Option<SimTime>,
    queue_depth: usize,
) -> Admission {
    if let Some(d) = deadline {
        if now > d {
            return Admission::Shed;
        }
    }
    if queue_depth >= cfg.queue_limit.max(1) {
        return Admission::Busy;
    }
    Admission::Admit
}

/// Credits to advertise for a scan that found `backlog` pending
/// requests: `credit_max` at or below the low water, zero at or above
/// the high water, linear in between.
pub fn credits_for(cfg: &OverloadConfig, backlog: usize) -> u16 {
    let low = cfg.credit_low_water;
    let high = cfg.credit_high_water.max(low + 1);
    if backlog <= low {
        return cfg.credit_max;
    }
    if backlog >= high {
        return 0;
    }
    let span = (high - low) as f64;
    let over = (backlog - low) as f64;
    (cfg.credit_max as f64 * (1.0 - over / span)).round() as u16
}

/// Per-tenant admission accounting for one scan of a shared (mux'd)
/// connection group.
///
/// The single-tenant loop bounds *total* admissions per scan with
/// [`admit`]; on a connection group shared by many tenants that one
/// global bound lets a flooding tenant consume the whole budget and
/// starve everyone else. `TenantCredits` keeps a separate admission
/// domain per tenant: each tenant gets the full `queue_limit` for
/// itself, so a hot tenant goes `Busy` once *its* share is spent while
/// cold tenants keep being admitted. Untenanted requests (no stamp in
/// the header) share one implicit domain, which reproduces the global
/// behaviour exactly when no tenant ever stamps — the
/// byte-identical-when-off rule, one layer up.
///
/// Credit advertisements are also per-domain: the level stamped into a
/// response reflects the backlog *of the tenant that sent the request*,
/// so a cold tenant keeps seeing `credit_max` while the hot tenant's
/// own credits collapse to zero (its clients then pace themselves off
/// the wire — the same mechanism, scoped).
#[derive(Default)]
pub struct TenantCredits {
    /// Per-tenant counts for the current scan: requests seen (drives
    /// credits) and requests admitted (drives the queue bound).
    domains: RefCell<BTreeMap<Option<u32>, TenantScan>>,
}

#[derive(Default, Copy, Clone)]
struct TenantScan {
    seen: usize,
    admitted: usize,
}

impl TenantCredits {
    /// Creates an empty accounting table.
    pub fn new() -> Self {
        TenantCredits::default()
    }

    /// Resets all domains for a new scan (admission sweeps are
    /// per-scan, like the single-tenant loop's `admitted` counter).
    pub fn begin_scan(&self) {
        self.domains.borrow_mut().clear();
    }

    /// Admission check for one pending request of `tenant`, charging
    /// the verdict to that tenant's domain. The queue bound applies to
    /// the tenant's own admissions this scan, not the group total.
    pub fn admit(
        &self,
        cfg: &OverloadConfig,
        now: SimTime,
        deadline: Option<SimTime>,
        tenant: Option<u32>,
    ) -> Admission {
        let mut domains = self.domains.borrow_mut();
        let dom = domains.entry(tenant).or_default();
        dom.seen += 1;
        let verdict = admit(cfg, now, deadline, dom.admitted);
        if verdict == Admission::Admit {
            dom.admitted += 1;
        }
        verdict
    }

    /// Credits to advertise to `tenant`, from its own backlog this scan.
    pub fn credits(&self, cfg: &OverloadConfig, tenant: Option<u32>) -> u16 {
        let seen = self.domains.borrow().get(&tenant).map_or(0, |dom| dom.seen);
        credits_for(cfg, seen)
    }

    /// Requests admitted across all domains this scan.
    pub fn admitted_total(&self) -> usize {
        self.domains.borrow().values().map(|d| d.admitted).sum()
    }

    /// Distinct tenant domains seen this scan.
    pub fn domains_seen(&self) -> usize {
        self.domains.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverloadConfig {
        OverloadConfig {
            enabled: true,
            queue_limit: 4,
            credit_max: 8,
            credit_low_water: 2,
            credit_high_water: 10,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn default_is_off() {
        assert!(!OverloadConfig::default().enabled);
    }

    #[test]
    fn expired_deadline_sheds_regardless_of_queue() {
        let c = cfg();
        let now = SimTime::from_nanos(1_000);
        let past = Some(SimTime::from_nanos(999));
        assert_eq!(admit(&c, now, past, 0), Admission::Shed);
        assert_eq!(admit(&c, now, past, 100), Admission::Shed);
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // A pickup exactly at the deadline still makes it.
        let c = cfg();
        let now = SimTime::from_nanos(1_000);
        assert_eq!(
            admit(&c, now, Some(SimTime::from_nanos(1_000)), 0),
            Admission::Admit
        );
    }

    #[test]
    fn queue_bound_turns_busy() {
        let c = cfg();
        let now = SimTime::from_nanos(50);
        let future = Some(SimTime::from_nanos(10_000));
        assert_eq!(admit(&c, now, future, 3), Admission::Admit);
        assert_eq!(admit(&c, now, future, 4), Admission::Busy);
        // No deadline stamped: only the queue bound applies.
        assert_eq!(admit(&c, now, None, 4), Admission::Busy);
        assert_eq!(admit(&c, now, None, 0), Admission::Admit);
    }

    #[test]
    fn zero_queue_limit_behaves_like_one() {
        let c = OverloadConfig {
            queue_limit: 0,
            ..cfg()
        };
        assert_eq!(admit(&c, SimTime::ZERO, None, 0), Admission::Admit);
        assert_eq!(admit(&c, SimTime::ZERO, None, 1), Admission::Busy);
    }

    #[test]
    fn credits_interpolate_between_waters() {
        let c = cfg();
        assert_eq!(credits_for(&c, 0), 8);
        assert_eq!(credits_for(&c, 2), 8);
        assert_eq!(credits_for(&c, 6), 4);
        assert_eq!(credits_for(&c, 10), 0);
        assert_eq!(credits_for(&c, 50), 0);
    }

    #[test]
    fn credits_monotone_in_backlog() {
        let c = cfg();
        let mut prev = u16::MAX;
        for backlog in 0..20 {
            let cur = credits_for(&c, backlog);
            assert!(cur <= prev, "credits rose with backlog at {backlog}");
            prev = cur;
        }
    }

    #[test]
    fn tenant_domains_are_independent() {
        let c = cfg(); // queue_limit 4
        let t = TenantCredits::new();
        let now = SimTime::from_nanos(10);
        // Hot tenant 1 floods: admitted up to its own share, then Busy.
        for _ in 0..4 {
            assert_eq!(t.admit(&c, now, None, Some(1)), Admission::Admit);
        }
        assert_eq!(t.admit(&c, now, None, Some(1)), Admission::Busy);
        // Cold tenant 2 still gets its full share.
        assert_eq!(t.admit(&c, now, None, Some(2)), Admission::Admit);
        // So does the untenanted domain.
        assert_eq!(t.admit(&c, now, None, None), Admission::Admit);
        assert_eq!(t.admitted_total(), 6);
        assert_eq!(t.domains_seen(), 3);
    }

    #[test]
    fn tenant_credits_reflect_own_backlog_only() {
        let c = cfg(); // low water 2, high water 10, max 8
        let t = TenantCredits::new();
        let now = SimTime::from_nanos(10);
        for _ in 0..10 {
            let _ = t.admit(&c, now, None, Some(1));
        }
        let _ = t.admit(&c, now, None, Some(2));
        assert_eq!(t.credits(&c, Some(1)), 0, "hot tenant throttled");
        assert_eq!(
            t.credits(&c, Some(2)),
            c.credit_max,
            "cold tenant untouched"
        );
        assert_eq!(
            t.credits(&c, Some(3)),
            c.credit_max,
            "unseen tenant untouched"
        );
    }

    #[test]
    fn tenant_sweep_resets_per_scan() {
        let c = cfg();
        let t = TenantCredits::new();
        let now = SimTime::from_nanos(10);
        for _ in 0..5 {
            let _ = t.admit(&c, now, None, Some(1));
        }
        t.begin_scan();
        assert_eq!(t.admit(&c, now, None, Some(1)), Admission::Admit);
        assert_eq!(t.admitted_total(), 1);
    }

    #[test]
    fn tenant_shed_still_wins_over_queue_state() {
        let c = cfg();
        let t = TenantCredits::new();
        let now = SimTime::from_nanos(1_000);
        let past = Some(SimTime::from_nanos(999));
        assert_eq!(t.admit(&c, now, past, Some(1)), Admission::Shed);
        // A shed charges the backlog (the request was pending) but not
        // the admission count.
        assert_eq!(t.admitted_total(), 0);
        assert!(t.credits(&c, Some(1)) <= c.credit_max);
    }

    #[test]
    fn degenerate_waters_still_total() {
        let c = OverloadConfig {
            credit_low_water: 5,
            credit_high_water: 5,
            ..cfg()
        };
        assert_eq!(credits_for(&c, 4), c.credit_max);
        assert_eq!(credits_for(&c, 5), c.credit_max);
        assert_eq!(credits_for(&c, 6), 0);
    }
}
