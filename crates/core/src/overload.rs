//! Overload control: credit-based admission and deadline-aware shedding.
//!
//! Under overload RFP's own mechanics work against it (§2.2 of the
//! paper): clients that exhaust their `R` fetch retries either keep
//! polling with RDMA READs — burning the in-bound engine the server
//! needs to absorb request WRITEs — or switch to server-reply mode and
//! burn the ≈5×-slower out-bound engine. Either way saturation turns
//! into collapse. This module adds the protocol-level pieces that turn
//! the collapse back into a plateau:
//!
//! * **deadline stamping** — a client using the overload path stamps an
//!   absolute deadline into the (extended) request header;
//! * **admission control** — the server bounds how many requests it
//!   admits per scan and sheds requests whose stamped deadline already
//!   passed, answering rejections with an explicit
//!   [`RespStatus`](crate::RespStatus) verdict that costs the client
//!   *one* in-bound READ instead of `R` of them;
//! * **credit advertisement** — every response carries the server's
//!   current admission-credit level; clients pause before submitting
//!   when credits hit zero, keeping rejected work off the wire
//!   entirely.
//!
//! Everything is gated on [`OverloadConfig::enabled`], which defaults to
//! `false`; a disabled config changes no wire byte, schedules no event
//! and creates no instrument, so existing runs are byte-identical.

use rfp_simnet::{RetryPolicy, SimSpan, SimTime};

/// Tunables of the overload-control subsystem. Carried by
/// [`RfpConfig`](crate::RfpConfig), so both endpoints of a connection
/// see the same knobs.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Master switch. `false` (the default) keeps every path — wire
    /// format, scheduling, instruments — exactly as without the
    /// subsystem.
    pub enabled: bool,
    /// Requests a server thread admits per scan of its connections;
    /// pending requests beyond this bound are answered `Busy`.
    pub queue_limit: usize,
    /// Per-call budget: the client stamps `now + deadline` into the
    /// request header, the server sheds any request it picks up after
    /// that instant, and the client stops tight-polling for the
    /// response once it passes.
    pub deadline: SimSpan,
    /// Credits advertised when the server is idle (backlog at or below
    /// [`credit_low_water`](OverloadConfig::credit_low_water)).
    pub credit_max: u16,
    /// Backlog (pending requests seen in one scan) at or below which
    /// the full [`credit_max`](OverloadConfig::credit_max) is
    /// advertised.
    pub credit_low_water: usize,
    /// Backlog at or above which zero credits are advertised; between
    /// the waters the advertisement falls linearly.
    pub credit_high_water: usize,
    /// Re-admission schedule: attempts and jittered backoff applied
    /// when a call's submission is answered `Busy`/`Shed`.
    pub retry: RetryPolicy,
    /// Pause before submitting while the last advertised credit level
    /// is zero (jittered like a backoff step).
    pub credit_wait: SimSpan,
    /// After the call's deadline passes, the client stops tight-polling
    /// and probes for the verdict at this (jittered, exponentially
    /// growing) pace instead.
    pub probe_pause: SimSpan,
    /// Verdict probes issued after the deadline before the client gives
    /// up on the attempt locally.
    pub max_probes: u32,
    /// Seed of the client's backoff-jitter stream. Derive a distinct
    /// stream per client (e.g. `derive_seed(base, idx)`) so backoffs
    /// don't synchronise into a thundering herd.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            enabled: false,
            queue_limit: 8,
            deadline: SimSpan::micros(50),
            credit_max: 8,
            credit_low_water: 4,
            credit_high_water: 16,
            retry: RetryPolicy::exponential(4, SimSpan::micros(10), SimSpan::micros(200), 0.3),
            credit_wait: SimSpan::micros(10),
            probe_pause: SimSpan::micros(5),
            max_probes: 8,
            seed: 0x0C10_AD00,
        }
    }
}

/// Verdict of the server's admission check for one pending request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Execute it (and never shed it afterwards).
    Admit,
    /// Reject: the scan's admission budget is exhausted.
    Busy,
    /// Reject: the stamped deadline already passed.
    Shed,
}

/// The admission rule, as a pure function so its safety properties are
/// directly testable: a request is shed **iff** its stamped deadline
/// has passed, turned away `Busy` **iff** it is within deadline but the
/// queue bound is reached, and admitted otherwise. `serve_loop` calls
/// this once per pending request *before* any processing, so a request
/// the server has begun processing can never be shed.
pub fn admit(
    cfg: &OverloadConfig,
    now: SimTime,
    deadline: Option<SimTime>,
    queue_depth: usize,
) -> Admission {
    if let Some(d) = deadline {
        if now > d {
            return Admission::Shed;
        }
    }
    if queue_depth >= cfg.queue_limit.max(1) {
        return Admission::Busy;
    }
    Admission::Admit
}

/// Credits to advertise for a scan that found `backlog` pending
/// requests: `credit_max` at or below the low water, zero at or above
/// the high water, linear in between.
pub fn credits_for(cfg: &OverloadConfig, backlog: usize) -> u16 {
    let low = cfg.credit_low_water;
    let high = cfg.credit_high_water.max(low + 1);
    if backlog <= low {
        return cfg.credit_max;
    }
    if backlog >= high {
        return 0;
    }
    let span = (high - low) as f64;
    let over = (backlog - low) as f64;
    (cfg.credit_max as f64 * (1.0 - over / span)).round() as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverloadConfig {
        OverloadConfig {
            enabled: true,
            queue_limit: 4,
            credit_max: 8,
            credit_low_water: 2,
            credit_high_water: 10,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn default_is_off() {
        assert!(!OverloadConfig::default().enabled);
    }

    #[test]
    fn expired_deadline_sheds_regardless_of_queue() {
        let c = cfg();
        let now = SimTime::from_nanos(1_000);
        let past = Some(SimTime::from_nanos(999));
        assert_eq!(admit(&c, now, past, 0), Admission::Shed);
        assert_eq!(admit(&c, now, past, 100), Admission::Shed);
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // A pickup exactly at the deadline still makes it.
        let c = cfg();
        let now = SimTime::from_nanos(1_000);
        assert_eq!(
            admit(&c, now, Some(SimTime::from_nanos(1_000)), 0),
            Admission::Admit
        );
    }

    #[test]
    fn queue_bound_turns_busy() {
        let c = cfg();
        let now = SimTime::from_nanos(50);
        let future = Some(SimTime::from_nanos(10_000));
        assert_eq!(admit(&c, now, future, 3), Admission::Admit);
        assert_eq!(admit(&c, now, future, 4), Admission::Busy);
        // No deadline stamped: only the queue bound applies.
        assert_eq!(admit(&c, now, None, 4), Admission::Busy);
        assert_eq!(admit(&c, now, None, 0), Admission::Admit);
    }

    #[test]
    fn zero_queue_limit_behaves_like_one() {
        let c = OverloadConfig {
            queue_limit: 0,
            ..cfg()
        };
        assert_eq!(admit(&c, SimTime::ZERO, None, 0), Admission::Admit);
        assert_eq!(admit(&c, SimTime::ZERO, None, 1), Admission::Busy);
    }

    #[test]
    fn credits_interpolate_between_waters() {
        let c = cfg();
        assert_eq!(credits_for(&c, 0), 8);
        assert_eq!(credits_for(&c, 2), 8);
        assert_eq!(credits_for(&c, 6), 4);
        assert_eq!(credits_for(&c, 10), 0);
        assert_eq!(credits_for(&c, 50), 0);
    }

    #[test]
    fn credits_monotone_in_backlog() {
        let c = cfg();
        let mut prev = u16::MAX;
        for backlog in 0..20 {
            let cur = credits_for(&c, backlog);
            assert!(cur <= prev, "credits rose with backlog at {backlog}");
            prev = cur;
        }
    }

    #[test]
    fn degenerate_waters_still_total() {
        let c = OverloadConfig {
            credit_low_water: 5,
            credit_high_water: 5,
            ..cfg()
        };
        assert_eq!(credits_for(&c, 4), c.credit_max);
        assert_eq!(credits_for(&c, 5), c.credit_max);
        assert_eq!(credits_for(&c, 6), 0);
    }
}
