//! The client endpoint: remote fetching, hybrid mode switching, stats.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_rnic::{Qp, ThreadCtx};
use rfp_simnet::{
    derive_seed, retry_with_deadline, timeout, ConnHealth, Counter, Gauge, Histogram, RequestTrace,
    RetryPolicy, Severity, SimSpan, SimTime,
};

use crate::conn::{Mode, RfpTelemetry, Shared, MODE_REMOTE_FETCH, MODE_SERVER_REPLY};
use crate::header::{
    ReqHeader, RespHeader, RespStatus, REQ_HDR, REQ_HDR_EXT, REQ_HDR_TENANT, RESP_HDR,
    RESP_HDR_EXT, RESP_TRAILER,
};
use crate::integrity::{verify_response, IntegrityFault};
use crate::overload::OverloadConfig;
use crate::recovery::{FailureCause, RecoveryConfig, RpcError};

/// Registry-backed instruments of one connection, created when the
/// config carries an [`RfpTelemetry`].
struct Instruments {
    telemetry: RfpTelemetry,
    calls: Rc<Counter>,
    /// Failed remote-fetch attempts (READs that found no valid header).
    retries: Rc<Counter>,
    extra_reads: Rc<Counter>,
    fallback_fetches: Rc<Counter>,
    switches_to_reply: Rc<Counter>,
    switches_to_fetch: Rc<Counter>,
    /// Bytes moved by remote-fetch READs (tracks the effective `F`).
    fetch_bytes: Rc<Counter>,
    latency: Rc<Histogram>,
    /// 0 = remote fetch, 1 = server reply.
    mode: Rc<Gauge>,
}

impl Instruments {
    fn new(telemetry: RfpTelemetry, initial_mode: Mode) -> Self {
        let reg = &telemetry.registry;
        let p = telemetry.prefix.clone();
        let this = Instruments {
            calls: reg.counter(&format!("{p}.calls")),
            retries: reg.counter(&format!("{p}.retries")),
            extra_reads: reg.counter(&format!("{p}.extra_reads")),
            fallback_fetches: reg.counter(&format!("{p}.fallback_fetches")),
            switches_to_reply: reg.counter(&format!("{p}.switches.to_reply")),
            switches_to_fetch: reg.counter(&format!("{p}.switches.to_fetch")),
            fetch_bytes: reg.counter(&format!("{p}.fetch.bytes")),
            latency: reg.histogram(&format!("{p}.latency")),
            mode: reg.gauge(&format!("{p}.mode")),
            telemetry,
        };
        this.mode.set(mode_level(initial_mode));
        this
    }
}

fn mode_level(mode: Mode) -> i64 {
    match mode {
        Mode::RemoteFetch => 0,
        Mode::ServerReply => 1,
    }
}

/// Outcome of one RPC call.
#[derive(Clone, Debug)]
pub struct CallResult {
    /// The response payload.
    pub data: Vec<u8>,
    /// Per-call diagnostics.
    pub info: CallInfo,
}

/// Per-call diagnostics (feeds Table 3 and the round-trip accounting of
/// §4.3).
#[derive(Copy, Clone, Debug)]
pub struct CallInfo {
    /// Remote-fetch attempts made for this call (the paper's `N`);
    /// zero when the call was served in server-reply mode without any
    /// fetch.
    pub attempts: u32,
    /// Whether a second READ was needed because the response exceeded
    /// the fetch size `F`.
    pub extra_read: bool,
    /// Mode the call completed in.
    pub completed_in: Mode,
    /// End-to-end call latency.
    pub latency: SimSpan,
    /// Server-reported process time (the response header's 16-bit
    /// `time` field, µs) — the online tuner's `P` sample.
    pub server_time_us: u16,
    /// The server's verdict on this call. Always [`RespStatus::Ok`]
    /// outside the overload-control path; [`RespStatus::Busy`] /
    /// [`RespStatus::Shed`] mark rejected calls, whose `data` is empty.
    pub status: RespStatus,
    /// Fetches of this call discarded and retried because they failed
    /// integrity verification (torn DMA, bit flips). Always 0 with the
    /// integrity layer off.
    pub integrity_retries: u32,
}

/// One in-flight hedge leg: a request deposited by
/// [`RfpClient::hedge_deposit`] and polled by
/// [`RfpClient::hedge_poll`]. The replica router holds one ticket per
/// leg of a hedged call and races them; a ticket abandoned mid-flight
/// is harmless — the next call on its connection allocates a fresh
/// sequence number, so a late response to the abandoned seq fails the
/// acceptance check and is never surfaced.
pub(crate) struct HedgeTicket {
    slot: usize,
    seq: u32,
    /// Fetch READs issued against this leg so far.
    pub(crate) fetches: u32,
    /// When this leg's deposit was issued. The router books the
    /// winning leg's health with the latency since *its own* deposit —
    /// attributing time the racing loop spent blocked on the other
    /// (possibly gray) leg would poison the healthy replica's score.
    pub(crate) deposited_at: SimTime,
}

/// Aggregated client statistics.
#[derive(Default)]
pub struct ClientStats {
    calls: Cell<u64>,
    fetch_attempts: Cell<u64>,
    extra_reads: Cell<u64>,
    switches_to_reply: Cell<u64>,
    switches_to_fetch: Cell<u64>,
    attempts_hist: RefCell<BTreeMap<u32, u64>>,
    /// Doorbell rings paid by the pipelined driver's batched fetch
    /// rounds (each covers ≥ 2 READs).
    doorbells: Cell<u64>,
    /// Fetch READs issued inside doorbell batches.
    doorbell_reads: Cell<u64>,
    /// Pipelined fetch READs issued individually (paying their own
    /// doorbell, like the sequential path).
    single_reads: Cell<u64>,
    /// End-to-end call latencies.
    pub latency: Histogram,
}

impl ClientStats {
    fn record(&self, info: &CallInfo) {
        self.calls.set(self.calls.get() + 1);
        self.fetch_attempts
            .set(self.fetch_attempts.get() + info.attempts as u64);
        if info.extra_read {
            self.extra_reads.set(self.extra_reads.get() + 1);
        }
        *self
            .attempts_hist
            .borrow_mut()
            .entry(info.attempts)
            .or_insert(0) += 1;
        self.latency.record(info.latency);
    }

    /// Completed calls.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Mean remote-fetch attempts per call.
    pub fn mean_attempts(&self) -> f64 {
        if self.calls.get() == 0 {
            return 0.0;
        }
        self.fetch_attempts.get() as f64 / self.calls.get() as f64
    }

    /// Calls that needed a second READ for an oversized response.
    pub fn extra_reads(&self) -> u64 {
        self.extra_reads.get()
    }

    /// Fraction of calls with more than `n` fetch attempts.
    pub fn frac_attempts_above(&self, n: u32) -> f64 {
        if self.calls.get() == 0 {
            return 0.0;
        }
        let above: u64 = self
            .attempts_hist
            .borrow()
            .iter()
            .filter(|(&a, _)| a > n)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / self.calls.get() as f64
    }

    /// Largest attempt count observed (the paper's "largest N").
    pub fn max_attempts(&self) -> u32 {
        self.attempts_hist
            .borrow()
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    }

    /// Histogram of attempts → call count.
    pub fn attempts_histogram(&self) -> BTreeMap<u32, u64> {
        self.attempts_hist.borrow().clone()
    }

    /// Times the connection switched into server-reply mode.
    pub fn switches_to_reply(&self) -> u64 {
        self.switches_to_reply.get()
    }

    /// Times the connection switched back to remote fetching.
    pub fn switches_to_fetch(&self) -> u64 {
        self.switches_to_fetch.get()
    }

    /// Doorbell rings paid for batched fetch rounds (pipelined driver).
    pub fn doorbells(&self) -> u64 {
        self.doorbells.get()
    }

    /// Fetch READs that rode a shared doorbell (pipelined driver).
    pub fn doorbell_reads(&self) -> u64 {
        self.doorbell_reads.get()
    }

    /// Pipelined fetch READs that paid their own doorbell.
    pub fn single_reads(&self) -> u64 {
        self.single_reads.get()
    }

    /// Clears all statistics (discard warm-up).
    pub fn reset(&self) {
        self.calls.set(0);
        self.fetch_attempts.set(0);
        self.extra_reads.set(0);
        self.switches_to_reply.set(0);
        self.switches_to_fetch.set(0);
        self.doorbells.set(0);
        self.doorbell_reads.set(0);
        self.single_reads.set(0);
        self.attempts_hist.borrow_mut().clear();
        self.latency.reset();
    }
}

/// A factory minting a fresh QP to the server, used to re-establish an
/// errored one (see [`RfpClient::set_reconnect`]).
pub type QpFactory = Box<dyn Fn() -> Rc<Qp>>;

/// Mutable state shared by the attempts of one recovered call.
struct AttemptState<'a> {
    req: &'a [u8],
    /// Absolute deadline stamped into the wire header (overload only).
    stamp: Option<SimTime>,
    /// Stage the request under a fresh sequence number before the next
    /// submission: set initially and after a `Busy`/`Shed` rejection
    /// (whose request was never executed, so a new seq cannot
    /// double-execute — while reusing the rejected seq would match the
    /// stale verdict response forever).
    refresh: Cell<bool>,
    /// Fetch READs issued across all attempts.
    fetches: Cell<u32>,
    /// Fetches discarded by integrity verification across all attempts.
    integrity_retries: Cell<u32>,
    /// Escalation marker set when an attempt exhausted its
    /// verify-and-refetch budget ([`FailureCause::Corrupt`]): the next
    /// attempt re-establishes the QP even though it reports no error
    /// state — persistent corruption on a "healthy" QP is the one fault
    /// the transport cannot see.
    force_reconnect: Cell<bool>,
}

/// One outstanding call of the pipelined driver
/// ([`RfpClient::call_pipelined`]).
struct Flight {
    /// Index into the caller's request batch (and the result vector).
    idx: usize,
    /// Ring slot carrying this call.
    slot: usize,
    seq: u32,
    /// Staged request bytes on the wire (header + payload).
    wire_len: usize,
    /// When the call was staged (latency epoch, like `sent_at`).
    t0: SimTime,
    /// Fetch READs that actually sampled the slot (the paper's `N`).
    attempts: u32,
    integrity_retries: u32,
    /// Whether this call already counted toward the consecutive-overrun
    /// guard (at most once per call, like the sequential path).
    counted_over: bool,
    /// The request WRITE has not (successfully) deposited yet.
    needs_send: bool,
}

/// Client endpoint of one RFP connection, bound to one simulated thread.
///
/// Implements the paper's `client_send` / `client_recv` (Table 2) plus
/// the [`call`](RfpClient::call) convenience wrapper, the hybrid
/// remote-fetch ↔ server-reply switch, and the two-segment fetch.
pub struct RfpClient {
    shared: Rc<Shared>,
    qp: RefCell<Rc<Qp>>,
    /// Factory minting a fresh QP to the server, installed by fault-
    /// tolerant deployments; used to re-establish an errored QP.
    reconnect: RefCell<Option<QpFactory>>,
    /// Last allocated sequence number (mirrors the winning slot counter;
    /// drives the sequential paths and trace/diagnostic text).
    seq: Cell<u32>,
    /// Per-ring-slot sequence counters: slot `s` carries seqs
    /// `s+1, s+1+W, s+1+2W, …` so `seq ≡ slot+1 (mod W)` always holds
    /// (see [`slot_of`](crate::header::slot_of)). With `W = 1` this
    /// degenerates to the single `+1` counter.
    slot_seq: Vec<Cell<u32>>,
    /// Round-robin slot cursor for the sequential (one-at-a-time) paths.
    next_slot: Cell<usize>,
    /// When the current call's request WRITE was issued (latency epoch).
    sent_at: Cell<rfp_simnet::SimTime>,
    mode: Cell<Mode>,
    /// Consecutive calls whose failed retries exceeded `R`.
    consec_over: Cell<u32>,
    /// Runtime-tunable `R` (initialised from config).
    retry_threshold: Cell<u32>,
    /// Runtime-tunable `F` (initialised from config).
    fetch_size: Cell<usize>,
    /// Last credit level the server advertised to this connection
    /// (overload control; starts at the configured maximum).
    credits: Cell<u16>,
    stats: ClientStats,
    instruments: Option<Instruments>,
    /// This connection's rolling health window, when the config carries
    /// a [`HealthHub`](rfp_simnet::HealthHub).
    health: Option<Rc<ConnHealth>>,
    /// Id of the most recent flight-recorder event of the *current*
    /// call — the cause link of the next one, so a call's events chain
    /// (deadline → resubmit → reconnect). Reset at call entry.
    last_flight: Cell<Option<u64>>,
    /// Tenant id stamped into every request header while set (the mux
    /// layer re-stamps it on each lease handoff). `None` — the default
    /// everywhere outside a mux — keeps requests byte-identical to the
    /// untenanted layout.
    tenant: Cell<Option<u32>>,
    /// Highest replication epoch this client has observed. Stamped into
    /// every request header and compared against every response: a
    /// response from an older epoch (a deposed ex-primary) is ignored
    /// like a non-matching poll, and a response carrying a newer epoch
    /// moves the client forward. 0 — the default outside replicated
    /// deployments — keeps the wire bytes legacy-identical.
    epoch: Cell<u16>,
}

impl RfpClient {
    pub(crate) fn new(shared: Rc<Shared>, qp: Rc<Qp>) -> Self {
        let retry_threshold = Cell::new(shared.cfg.retry_threshold);
        let fetch_size = Cell::new(shared.cfg.fetch_size);
        let initial_mode = shared.cfg.initial_mode;
        let instruments = shared
            .cfg
            .telemetry
            .clone()
            .map(|t| Instruments::new(t, initial_mode));
        let credits = Cell::new(shared.cfg.overload.credit_max);
        let window = shared.cfg.window;
        let health = shared
            .cfg
            .health
            .as_ref()
            .map(|h| h.conn(shared.cfg.conn_id));
        RfpClient {
            shared,
            qp: RefCell::new(qp),
            reconnect: RefCell::new(None),
            seq: Cell::new(0),
            // Slot `s` starts one allocation (`+W`) short of `s + 1`.
            slot_seq: (0..window)
                .map(|s| Cell::new((s as u32 + 1).wrapping_sub(window as u32)))
                .collect(),
            next_slot: Cell::new(0),
            sent_at: Cell::new(rfp_simnet::SimTime::ZERO),
            mode: Cell::new(initial_mode),
            consec_over: Cell::new(0),
            retry_threshold,
            fetch_size,
            credits,
            stats: ClientStats::default(),
            instruments,
            health,
            last_flight: Cell::new(None),
            tenant: Cell::new(None),
            epoch: Cell::new(0),
        }
    }

    /// Sets the replication epoch stamped into subsequent requests
    /// (failover layers seed it; the client also adopts newer epochs
    /// from responses on its own).
    pub fn set_epoch(&self, epoch: u16) {
        self.epoch.set(epoch);
    }

    /// Highest replication epoch observed so far (0 when replication
    /// is off).
    pub fn known_epoch(&self) -> u16 {
        self.epoch.get()
    }

    /// Whether `hdr` answers `seq` in the current (or a newer) epoch.
    ///
    /// A valid match carrying a **newer** epoch is accepted and adopted
    /// — that is how a client learns of a completed failover (including
    /// from a `Fenced` verdict). A match carrying an **older** epoch is
    /// a deposed ex-primary still answering into the landing zone; it
    /// is treated exactly like a non-matching poll, so the call keeps
    /// fetching and the recovery layer eventually fails over instead of
    /// surfacing a stale read.
    fn accept_resp(&self, hdr: &RespHeader, seq: u32) -> bool {
        hdr.valid && hdr.seq == seq && hdr.epoch >= self.epoch.get()
    }

    /// Books an accepted (seq-matching, integrity-verified) response's
    /// header fields: the advertised credit level, and — on an explicit
    /// `Fenced` verdict only — any newer replication epoch it carries.
    /// Restricting adoption to fences keeps corruption from poisoning
    /// the epoch: the payload CRC does not cover the header's epoch
    /// bytes, but a single bit flip cannot turn status 0 (`Ok`) into 3
    /// (`Fenced`), so a flipped epoch on an ordinary response is simply
    /// ignored.
    fn note_accepted(&self, hdr: &RespHeader) {
        self.credits.set(hdr.credits);
        if hdr.status == RespStatus::Fenced && hdr.epoch > self.epoch.get() {
            self.epoch.set(hdr.epoch);
        }
    }

    /// Stamps (or clears) the tenant id carried by every subsequent
    /// request on this connection. A multiplexing layer sets it when a
    /// lease moves the connection to a different logical client.
    pub fn set_tenant(&self, tenant: Option<u32>) {
        self.tenant.set(tenant);
    }

    /// Tenant id currently stamped into requests, if any.
    pub fn tenant(&self) -> Option<u32> {
        self.tenant.get()
    }

    /// Payload headroom of one ring slot for the next request, given
    /// the tenant stamp and whether a deadline rides along.
    fn req_headroom(&self, deadline: bool) -> usize {
        if self.tenant.get().is_some() {
            self.shared.cfg.req_capacity - REQ_HDR_TENANT
        } else if deadline {
            self.shared.cfg.max_req_payload_with_deadline()
        } else {
            self.shared.cfg.max_req_payload()
        }
    }

    /// Appends a flight-recorder event tagged with this connection and
    /// `seq`, chained onto the current call's previous event, and
    /// remembers it as the next link's cause. Pure bookkeeping: no
    /// simulated time, no wire bytes — a `None` recorder run is
    /// event-identical to one with recording on.
    fn flight(&self, thread: &ThreadCtx, severity: Severity, kind: &'static str, detail: String) {
        if let Some(rec) = &self.shared.cfg.recorder {
            let id = rec.record_caused(
                thread.now(),
                Some(self.shared.cfg.conn_id),
                self.seq.get() as u64,
                severity,
                kind,
                detail,
                self.last_flight.get(),
            );
            self.last_flight.set(Some(id));
        }
    }

    /// The QP currently carrying this connection's verbs.
    pub(crate) fn qp(&self) -> Rc<Qp> {
        Rc::clone(&self.qp.borrow())
    }

    /// Allocates the next sequence number of ring `slot` (counters of
    /// one slot advance by `W`, preserving `seq ≡ slot+1 (mod W)`).
    fn alloc_seq_in(&self, slot: usize) -> u32 {
        let w = self.shared.cfg.window as u32;
        let seq = self.slot_seq[slot].get().wrapping_add(w);
        self.slot_seq[slot].set(seq);
        self.seq.set(seq);
        seq
    }

    /// Allocates a `(slot, seq)` pair at the sequential paths' rotating
    /// cursor. With `W = 1` this is slot 0 and `seq + 1`, always.
    fn alloc_next_seq(&self) -> (usize, u32) {
        let slot = self.next_slot.get();
        self.next_slot.set((slot + 1) % self.shared.cfg.window);
        (slot, self.alloc_seq_in(slot))
    }

    /// The sequence number the next sequential allocation will return,
    /// without allocating (jitter-seed derivation).
    fn peek_next_seq(&self) -> u32 {
        self.slot_seq[self.next_slot.get()]
            .get()
            .wrapping_add(self.shared.cfg.window as u32)
    }

    /// Decodes the response header currently in `slot`'s landing zone,
    /// through a stack buffer (the fetch hot path allocates nothing).
    fn resp_hdr_at(&self, slot: usize) -> RespHeader {
        let mut buf = [0u8; RESP_HDR_EXT];
        let n = self.shared.cfg.resp_wire_hdr();
        self.shared
            .client_resp
            .read_local_into(self.shared.resp_off(slot), &mut buf[..n]);
        RespHeader::decode(&buf[..n])
    }

    /// Installs the QP factory used to re-establish the connection after
    /// a QP error (see [`RecoveryConfig`]). Without one, recovery keeps
    /// retrying on the original QP and a QP-error fault is fatal to the
    /// call.
    pub fn set_reconnect(&self, factory: impl Fn() -> Rc<Qp> + 'static) {
        *self.reconnect.borrow_mut() = Some(Box::new(factory));
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Current transport mode.
    pub fn mode(&self) -> Mode {
        self.mode.get()
    }

    /// Current `R`.
    pub fn retry_threshold(&self) -> u32 {
        self.retry_threshold.get()
    }

    /// Current `F`.
    pub fn fetch_size(&self) -> usize {
        self.fetch_size.get()
    }

    /// Largest `F` this connection's buffers can carry.
    pub fn max_fetch_size(&self) -> usize {
        self.shared.cfg.resp_capacity
    }

    /// Applies new `(R, F)` parameters (output of the selection
    /// procedure, [`crate::ParamSelector`]).
    ///
    /// # Panics
    ///
    /// Panics if `f` cannot cover the response header.
    pub fn set_params(&self, r: u32, f: usize) {
        assert!(
            f >= self.shared.cfg.resp_wire_hdr(),
            "F must cover the response header"
        );
        assert!(
            f <= self.shared.cfg.resp_capacity,
            "F exceeds response buffer"
        );
        self.retry_threshold.set(r);
        self.fetch_size.set(f);
    }

    /// `client_send`: deposits a request into server memory via
    /// one-sided WRITE.
    ///
    /// # Panics
    ///
    /// Panics if `req` exceeds the request capacity.
    pub async fn send(&self, thread: &ThreadCtx, req: &[u8]) {
        self.send_with_deadline(thread, req, None).await
    }

    /// [`send`](RfpClient::send) with an absolute deadline stamped into
    /// the (extended) request header, for servers running admission
    /// control. Without a deadline the wire bytes are identical to the
    /// legacy 8-byte header.
    pub async fn send_with_deadline(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
        deadline: Option<SimTime>,
    ) {
        let max = self.req_headroom(deadline.is_some());
        assert!(req.len() <= max, "request exceeds buffer capacity");
        let (slot, seq) = self.alloc_next_seq();
        self.sent_at.set(thread.now());
        if let Some(ins) = &self.instruments {
            *self.shared.span_mut(slot) = Some(RequestTrace::begin(
                seq as u64,
                ins.telemetry.track,
                thread.now(),
                "issue",
            ));
        }
        let hdr = ReqHeader {
            valid: true,
            size: req.len() as u32,
            seq,
            deadline,
            tenant: self.tenant.get(),
            epoch: self.epoch.get(),
        };
        let hdr_len = hdr.wire_len();
        let mut hdr_bytes = [0u8; REQ_HDR_TENANT];
        hdr.encode(&mut hdr_bytes[..hdr_len]);
        let base = self.shared.req_off(slot);
        self.shared
            .client_req
            .write_local(base, &hdr_bytes[..hdr_len]);
        self.shared.client_req.write_local(base + hdr_len, req);
        self.qp()
            .write(
                thread,
                &self.shared.client_req,
                base,
                &self.shared.req,
                base,
                hdr_len + req.len(),
            )
            .await;
        self.span_mark(thread, slot, "request_written");
    }

    /// `client_recv`: obtains the response for the last
    /// [`send`](RfpClient::send), via repeated remote fetching or
    /// server-reply depending on the connection mode.
    ///
    /// The reported latency spans from the matching `send` (end-to-end
    /// call time).
    pub async fn recv(&self, thread: &ThreadCtx) -> CallResult {
        let t0 = self.sent_at.get();
        let seq = self.seq.get();
        let out = match self.mode.get() {
            Mode::RemoteFetch => self.recv_remote_fetch(thread, seq, t0).await,
            Mode::ServerReply => self.recv_server_reply(thread, seq, t0, 0).await,
        };
        self.record_completion(thread, self.shared.slot_of(seq), &out);
        out
    }

    /// Books one finished call against the stats/instruments and closes
    /// `slot`'s span — shared verbatim by the sequential and pipelined
    /// drivers so their per-call telemetry is identical.
    fn record_completion(&self, thread: &ThreadCtx, slot: usize, out: &CallResult) {
        self.stats.record(&out.info);
        // Every attempt but a successful final fetch was a retry.
        let successes = match out.info.completed_in {
            Mode::RemoteFetch => 1,
            Mode::ServerReply => 0,
        };
        let retries = out.info.attempts.saturating_sub(successes) as u64;
        if let Some(h) = &self.health {
            h.record_call(
                thread.now(),
                out.info.latency,
                retries,
                out.data.len(),
                out.info.server_time_us,
            );
        }
        if let Some(ins) = &self.instruments {
            ins.calls.incr();
            ins.latency.record(out.info.latency);
            ins.retries.add(retries);
            if out.info.extra_read {
                ins.extra_reads.incr();
            }
            if let Some(mut span) = self.shared.span_mut(slot).take() {
                span.mark_unordered(thread.now(), "completed");
                ins.telemetry.spans.record(span);
            }
        }
    }

    /// Adds a milestone to `slot`'s in-flight span, if one exists.
    fn span_mark(&self, thread: &ThreadCtx, slot: usize, label: &'static str) {
        if let Some(span) = self.shared.span_mut(slot).as_mut() {
            span.mark_unordered(thread.now(), label);
        }
    }

    /// One full RPC: send, then receive.
    pub async fn call(&self, thread: &ThreadCtx, req: &[u8]) -> CallResult {
        self.send(thread, req).await;
        self.recv(thread).await
    }

    /// Pipelined multi-call driver: runs every request in `reqs` on this
    /// connection, keeping up to `W` (the configured
    /// [`window`](crate::RfpConfig::window)) calls outstanding in the
    /// ring and polling all of their fetches with **one doorbell ring
    /// per round** ([`Qp::post_read_batch`]) — the client-side issue
    /// cost the paper charges per READ (§2.2) is paid once per round
    /// instead of once per outstanding call.
    ///
    /// With `W = 1` (or a single request) every round degenerates to the
    /// sequential `send`/`recv` verbs — same WRITEs, same READs, same
    /// CPU charges, same telemetry — so the legacy path is exactly the
    /// `W = 1` instance of this driver.
    ///
    /// The driver runs in remote-fetch terms only and does not engage
    /// the hybrid mode switch mid-batch (it still feeds the
    /// consecutive-overrun guard, so a subsequent sequential call can
    /// switch). Verb errors from injected faults are absorbed: failed
    /// request WRITEs are re-deposited and errored fetch polls simply
    /// don't count as attempts, so the batch rides out a server restart
    /// the same way [`call_with_recovery`] rides one out per call.
    ///
    /// Returns one [`CallResult`] per request, in request order.
    ///
    /// # Panics
    ///
    /// Panics if the connection is in server-reply mode or any request
    /// exceeds the per-slot capacity.
    ///
    /// [`call_with_recovery`]: RfpClient::call_with_recovery
    pub async fn call_pipelined(&self, thread: &ThreadCtx, reqs: &[Vec<u8>]) -> Vec<CallResult> {
        assert_eq!(
            self.mode.get(),
            Mode::RemoteFetch,
            "call_pipelined drives remote fetching only"
        );
        let window = self.shared.cfg.window;
        let r = self.retry_threshold.get();
        let max = self.req_headroom(false);
        for req in reqs {
            assert!(req.len() <= max, "request exceeds buffer capacity");
        }
        let mut results: Vec<Option<CallResult>> = reqs.iter().map(|_| None).collect();
        // Free ring slots, lowest on top so W=1 always stages slot 0.
        let mut free: Vec<usize> = (0..window).rev().collect();
        let mut flights: Vec<Flight> = Vec::new();
        let mut next_req = 0usize;
        while next_req < reqs.len() || !flights.is_empty() {
            // Refill: stage fresh calls into free slots (bytes + span;
            // the deposit WRITE happens in the submit step below).
            while next_req < reqs.len() {
                let Some(slot) = free.pop() else { break };
                let req = &reqs[next_req];
                let seq = self.alloc_seq_in(slot);
                if let Some(ins) = &self.instruments {
                    *self.shared.span_mut(slot) = Some(RequestTrace::begin(
                        seq as u64,
                        ins.telemetry.track,
                        thread.now(),
                        "issue",
                    ));
                }
                let hdr = ReqHeader {
                    valid: true,
                    size: req.len() as u32,
                    seq,
                    deadline: None,
                    tenant: self.tenant.get(),
                    epoch: self.epoch.get(),
                };
                let hdr_len = hdr.wire_len();
                let mut hdr_bytes = [0u8; REQ_HDR_TENANT];
                hdr.encode(&mut hdr_bytes[..hdr_len]);
                let base = self.shared.req_off(slot);
                self.shared
                    .client_req
                    .write_local(base, &hdr_bytes[..hdr_len]);
                self.shared.client_req.write_local(base + hdr_len, req);
                flights.push(Flight {
                    idx: next_req,
                    slot,
                    seq,
                    wire_len: hdr_len + req.len(),
                    t0: thread.now(),
                    attempts: 0,
                    integrity_retries: 0,
                    counted_over: false,
                    needs_send: true,
                });
                next_req += 1;
            }
            if let Some(h) = &self.health {
                h.set_inflight(thread.now(), flights.len() as u32);
            }
            // Submit: deposit staged requests. A single deposit uses the
            // synchronous WRITE (identical to `send`); two or more are
            // posted so their round trips overlap. A WRITE that
            // completes with a verb error stays pending and is retried
            // next round (the NACK round trip advanced time).
            let to_send: Vec<usize> = flights
                .iter()
                .enumerate()
                .filter_map(|(i, fl)| fl.needs_send.then_some(i))
                .collect();
            if to_send.len() == 1 {
                let i = to_send[0];
                let (slot, wire_len) = (flights[i].slot, flights[i].wire_len);
                let base = self.shared.req_off(slot);
                if self
                    .qp()
                    .try_write(
                        thread,
                        &self.shared.client_req,
                        base,
                        &self.shared.req,
                        base,
                        wire_len,
                    )
                    .await
                    .is_ok()
                {
                    flights[i].needs_send = false;
                    self.span_mark(thread, slot, "request_written");
                }
            } else if to_send.len() >= 2 {
                let qp = self.qp();
                let mut posted = Vec::with_capacity(to_send.len());
                for &i in &to_send {
                    let (slot, wire_len) = (flights[i].slot, flights[i].wire_len);
                    let base = self.shared.req_off(slot);
                    posted.push((
                        i,
                        qp.write_post(
                            thread,
                            &self.shared.client_req,
                            base,
                            &self.shared.req,
                            base,
                            wire_len,
                        )
                        .await,
                    ));
                }
                for (i, c) in posted {
                    c.wait(thread).await;
                    if c.error().is_none() {
                        flights[i].needs_send = false;
                        self.span_mark(thread, flights[i].slot, "request_written");
                    }
                }
            }
            // Poll: one fetch READ per deposited flight. A lone flight
            // fetches synchronously (identical to the sequential READ);
            // k ≥ 2 flights share one doorbell ring.
            let f = self.fetch_size.get();
            let pollable: Vec<usize> = flights
                .iter()
                .enumerate()
                .filter_map(|(i, fl)| (!fl.needs_send).then_some(i))
                .collect();
            let mut landed = vec![false; flights.len()];
            if pollable.len() == 1 {
                let i = pollable[0];
                let slot = flights[i].slot;
                let base = self.shared.resp_off(slot);
                if self
                    .qp()
                    .try_read(
                        thread,
                        &self.shared.client_resp,
                        base,
                        &self.shared.resp,
                        base,
                        f,
                    )
                    .await
                    .is_ok()
                {
                    landed[i] = true;
                    flights[i].attempts += 1;
                    self.span_mark(thread, slot, "fetch_read");
                    if let Some(ins) = &self.instruments {
                        ins.fetch_bytes.add(f as u64);
                    }
                    self.stats
                        .single_reads
                        .set(self.stats.single_reads.get() + 1);
                }
            } else if pollable.len() >= 2 {
                let qp = self.qp();
                let entries: Vec<_> = pollable
                    .iter()
                    .map(|&i| {
                        let base = self.shared.resp_off(flights[i].slot);
                        (
                            Rc::clone(&self.shared.client_resp),
                            base,
                            Rc::clone(&self.shared.resp),
                            base,
                            f,
                        )
                    })
                    .collect();
                let completions = qp.post_read_batch(thread, &entries).await;
                self.stats.doorbells.set(self.stats.doorbells.get() + 1);
                self.stats
                    .doorbell_reads
                    .set(self.stats.doorbell_reads.get() + completions.len() as u64);
                for (&i, c) in pollable.iter().zip(&completions) {
                    c.wait(thread).await;
                    if c.error().is_none() {
                        landed[i] = true;
                        flights[i].attempts += 1;
                        self.span_mark(thread, flights[i].slot, "fetch_read");
                        if let Some(ins) = &self.instruments {
                            ins.fetch_bytes.add(f as u64);
                        }
                    }
                }
            }
            // Check: decode every landed fetch; completed flights free
            // their slot for the next refill, the rest poll again.
            let mut kept = Vec::with_capacity(flights.len());
            for (i, mut fl) in flights.into_iter().enumerate() {
                if !landed[i] {
                    kept.push(fl);
                    continue;
                }
                thread.busy(self.shared.cfg.check_cpu).await;
                let hdr = self.resp_hdr_at(fl.slot);
                if !self.accept_resp(&hdr, fl.seq) {
                    // Missed poll: replicate the sequential overrun
                    // bookkeeping (never switching modes mid-batch).
                    if fl.attempts > r && !fl.counted_over {
                        fl.counted_over = true;
                        if self.shared.cfg.enable_mode_switch {
                            self.consec_over.set(self.consec_over.get() + 1);
                        }
                        if let Some(rec) = &self.shared.cfg.recorder {
                            rec.record(
                                thread.now(),
                                Some(self.shared.cfg.conn_id),
                                fl.seq as u64,
                                Severity::Warn,
                                "pipeline.slot_stall",
                                format!(
                                    "slot {} overran R={r} after {} fetches",
                                    fl.slot, fl.attempts
                                ),
                            );
                        }
                        if let Some(h) = &self.health {
                            h.record_stall(thread.now());
                        }
                    }
                    kept.push(fl);
                    continue;
                }
                let total = self.resp_total_len(&hdr);
                if !self.resp_len_plausible(total) {
                    self.note_integrity_failure(thread, IntegrityFault::Torn);
                    fl.integrity_retries += 1;
                    kept.push(fl);
                    continue;
                }
                let base = self.shared.resp_off(fl.slot);
                let size = hdr.size as usize;
                let mut extra_read = false;
                if total > f {
                    let rest = total - f;
                    if self
                        .qp()
                        .try_read(
                            thread,
                            &self.shared.client_resp,
                            base + f,
                            &self.shared.resp,
                            base + f,
                            rest,
                        )
                        .await
                        .is_err()
                    {
                        kept.push(fl);
                        continue;
                    }
                    self.span_mark(thread, fl.slot, "extra_fetch_read");
                    if let Some(ins) = &self.instruments {
                        ins.fetch_bytes.add(rest as u64);
                    }
                    extra_read = true;
                }
                if self.verify_fetched(thread, fl.slot, &hdr).is_err() {
                    fl.integrity_retries += 1;
                    kept.push(fl);
                    continue;
                }
                if !fl.counted_over {
                    self.consec_over.set(0);
                }
                self.note_accepted(&hdr);
                let out = CallResult {
                    data: self
                        .shared
                        .client_resp
                        .read_local(base + hdr.wire_len(), size),
                    info: CallInfo {
                        attempts: fl.attempts,
                        extra_read,
                        completed_in: Mode::RemoteFetch,
                        latency: thread.now() - fl.t0,
                        server_time_us: hdr.time_us,
                        status: hdr.status,
                        integrity_retries: fl.integrity_retries,
                    },
                };
                self.record_completion(thread, fl.slot, &out);
                free.push(fl.slot);
                results[fl.idx] = Some(out);
            }
            flights = kept;
        }
        results
            .into_iter()
            .map(|r| r.expect("every pipelined call completes"))
            .collect()
    }

    /// The connection's overload-control knobs.
    pub fn overload_config(&self) -> &OverloadConfig {
        &self.shared.cfg.overload
    }

    /// Last credit level the server advertised on this connection.
    pub fn credits(&self) -> u16 {
        self.credits.get()
    }

    /// One overload-aware RPC (requires [`OverloadConfig::enabled`]).
    ///
    /// Submission is gated on the server's advertised credits (a zero
    /// level inserts a jittered pause), every submission stamps a
    /// deadline into the request header, and the response fetch stops
    /// tight-polling once that deadline passes, degrading to jittered
    /// verdict probes. A `Busy`/`Shed` verdict re-admits the call under
    /// the config's retry schedule **with a fresh sequence number** (a
    /// rejected request was provably never executed, so resubmission
    /// cannot double-execute) until the schedule — or the explicit
    /// `deadline` — is exhausted, at which point the call returns the
    /// rejection status with empty data instead of an error: under
    /// overload a rejected call is an expected outcome, not a fault.
    ///
    /// `deadline` semantics: `Some(d)` is a hard absolute bound for the
    /// *whole call*, stamped into every resubmission and clamping every
    /// pause; `None` gives each admission attempt a fresh
    /// `now + deadline` budget from the config.
    pub async fn call_overload(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
        deadline: Option<SimTime>,
    ) -> CallResult {
        let ov = &self.shared.cfg.overload;
        assert!(ov.enabled, "call_overload requires overload control");
        assert!(
            req.len() <= self.req_headroom(true),
            "request exceeds buffer capacity"
        );
        let t0 = thread.now();
        self.last_flight.set(None);
        let first_seq = self.peek_next_seq();
        // Jitter stream: deterministic per (config seed, call seq), and
        // constructed without touching the simulation's shared RNG.
        let jitter = RefCell::new(StdRng::seed_from_u64(derive_seed(
            ov.seed,
            first_seq as u64,
        )));
        let handle = thread.handle().clone();
        let fetches = Cell::new(0u32);
        let extra = Cell::new(false);
        let integrity_retries = Cell::new(0u32);
        let outcome = retry_with_deadline(
            &handle,
            &ov.retry,
            deadline,
            || jitter.borrow_mut().gen::<f64>(),
            |_attempt| {
                self.attempt_overload(
                    thread,
                    req,
                    deadline,
                    &fetches,
                    &extra,
                    &integrity_retries,
                    &jitter,
                )
            },
        )
        .await;
        let (data, status, server_time_us) = match outcome {
            Ok((data, time_us)) => (data, RespStatus::Ok, time_us),
            Err(exhausted) => {
                self.note_overload(
                    thread,
                    "overload.give_ups",
                    "call gave up after repeated rejections",
                );
                (Vec::new(), exhausted.last, 0)
            }
        };
        let info = CallInfo {
            attempts: fetches.get(),
            extra_read: extra.get(),
            completed_in: Mode::RemoteFetch,
            latency: thread.now() - t0,
            server_time_us,
            status,
            integrity_retries: integrity_retries.get(),
        };
        if status == RespStatus::Ok {
            // Only executed calls feed the throughput/latency stats;
            // rejections are accounted by the overload counters.
            self.stats.record(&info);
            if let Some(h) = &self.health {
                h.record_call(
                    thread.now(),
                    info.latency,
                    info.attempts.saturating_sub(1) as u64,
                    data.len(),
                    info.server_time_us,
                );
            }
            if let Some(ins) = &self.instruments {
                ins.calls.incr();
                ins.latency.record(info.latency);
                ins.retries.add(info.attempts.saturating_sub(1) as u64);
                if info.extra_read {
                    ins.extra_reads.incr();
                }
            }
        }
        if let Some(ins) = &self.instruments {
            let slot = self.shared.slot_of(self.seq.get());
            if let Some(mut span) = self.shared.span_mut(slot).take() {
                span.mark_unordered(
                    thread.now(),
                    if status == RespStatus::Ok {
                        "completed"
                    } else {
                        "gave_up"
                    },
                );
                ins.telemetry.spans.record(span);
            }
        }
        CallResult { data, info }
    }

    /// One overload admission attempt: credit gate, deadline-stamped
    /// submission, deadline-bounded fetch. `Err` carries the rejection
    /// verdict (from the server, or locally synthesised when the probes
    /// for a verdict ran out).
    #[allow(clippy::too_many_arguments)]
    async fn attempt_overload(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
        call_deadline: Option<SimTime>,
        fetches: &Cell<u32>,
        extra: &Cell<bool>,
        integrity_retries: &Cell<u32>,
        jitter: &RefCell<StdRng>,
    ) -> Result<(Vec<u8>, u16), RespStatus> {
        let ov = &self.shared.cfg.overload;
        // Credit gate: a zero advertisement means the server's queue was
        // full — pause (jittered, so clients desynchronise) instead of
        // submitting work that will bounce.
        if self.credits.get() == 0 {
            self.note_overload(
                thread,
                "overload.credit_waits",
                "zero credits: pausing before submit",
            );
            let unit: f64 = jitter.borrow_mut().gen();
            let mut pause =
                SimSpan::from_nanos_f64(ov.credit_wait.as_nanos() as f64 * (0.5 + unit));
            if let Some(d) = call_deadline {
                if thread.now() >= d {
                    return Err(RespStatus::Busy);
                }
                pause = pause.min(d.since(thread.now()));
            }
            if !pause.is_zero() {
                thread.idle_wait(thread.handle().sleep(pause)).await;
            }
            // The pause expires the gate: submit optimistically — the
            // worst case is one cheap Busy verdict refreshing the level.
            self.credits.set(1);
        }
        let deadline = call_deadline.unwrap_or_else(|| thread.now() + ov.deadline);
        self.send_with_deadline(thread, req, Some(deadline)).await;
        let seq = self.seq.get();
        let slot = self.shared.slot_of(seq);
        let base = self.shared.resp_off(slot);
        let probe_policy = RetryPolicy::exponential(
            ov.max_probes,
            ov.probe_pause,
            SimSpan::nanos(ov.probe_pause.as_nanos().saturating_mul(8)),
            0.25,
        );
        let mut probes = 0u32;
        loop {
            if thread.now() > deadline {
                // Past the deadline the verdict is (or shortly will be)
                // `Shed`: stop burning the in-bound engine on tight
                // polling and probe at a widening, jittered pace.
                if probes >= ov.max_probes.max(1) {
                    self.note_overload(
                        thread,
                        "overload.local_sheds",
                        "gave up probing for a verdict",
                    );
                    return Err(RespStatus::Shed);
                }
                probes += 1;
                let unit: f64 = jitter.borrow_mut().gen();
                let pause = probe_policy.backoff_for(probes, unit);
                if !pause.is_zero() {
                    thread.idle_wait(thread.handle().sleep(pause)).await;
                }
            }
            let f = self.fetch_size.get();
            self.qp()
                .read(
                    thread,
                    &self.shared.client_resp,
                    base,
                    &self.shared.resp,
                    base,
                    f,
                )
                .await;
            fetches.set(fetches.get() + 1);
            self.span_mark(thread, slot, "fetch_read");
            if let Some(ins) = &self.instruments {
                ins.fetch_bytes.add(f as u64);
            }
            thread.busy(self.shared.cfg.check_cpu).await;
            let hdr = self.resp_hdr_at(slot);
            if !self.accept_resp(&hdr, seq) {
                continue;
            }
            let total = self.resp_total_len(&hdr);
            if !self.resp_len_plausible(total) {
                self.note_integrity_failure(thread, IntegrityFault::Torn);
                integrity_retries.set(integrity_retries.get() + 1);
                continue;
            }
            let size = hdr.size as usize;
            if total > f {
                let rest = total - f;
                self.qp()
                    .read(
                        thread,
                        &self.shared.client_resp,
                        base + f,
                        &self.shared.resp,
                        base + f,
                        rest,
                    )
                    .await;
                self.span_mark(thread, slot, "extra_fetch_read");
                if let Some(ins) = &self.instruments {
                    ins.fetch_bytes.add(rest as u64);
                }
                extra.set(true);
            }
            if self.verify_fetched(thread, slot, &hdr).is_err() {
                // Verdicts are verified too: a corrupt fetch must not
                // surface a spurious rejection (or a bogus payload).
                integrity_retries.set(integrity_retries.get() + 1);
                continue;
            }
            self.note_accepted(&hdr);
            match hdr.status {
                RespStatus::Ok => {
                    return Ok((
                        self.shared
                            .client_resp
                            .read_local(base + hdr.wire_len(), size),
                        hdr.time_us,
                    ));
                }
                RespStatus::Busy => {
                    self.note_overload(thread, "overload.busy_seen", "server answered Busy");
                    return Err(RespStatus::Busy);
                }
                RespStatus::Shed => {
                    self.note_overload(thread, "overload.sheds_seen", "server shed the request");
                    return Err(RespStatus::Shed);
                }
                RespStatus::Fenced => {
                    self.note_overload(
                        thread,
                        "recovery.fenced_seen",
                        "server fenced a stale-epoch request",
                    );
                    return Err(RespStatus::Fenced);
                }
            }
        }
    }

    /// Records one discarded-and-retried fetch against the integrity
    /// instruments (`fetch.torn` / `fetch.crc_fail` plus the shared
    /// `fetch.integrity_retries`). Lazy like the recovery counters: a
    /// run that never sees a corrupt fetch materialises no instrument.
    fn note_integrity_failure(&self, thread: &ThreadCtx, fault: IntegrityFault) {
        let counter = match fault {
            IntegrityFault::Torn => "fetch.torn",
            IntegrityFault::CrcMismatch => "fetch.crc_fail",
        };
        if let Some(ins) = &self.instruments {
            ins.telemetry.registry.counter(counter).incr();
            ins.telemetry
                .registry
                .counter("fetch.integrity_retries")
                .incr();
        }
        if let Some(trace) = &self.shared.cfg.trace {
            trace.record(
                thread.now(),
                "rfp.integrity",
                format!(
                    "seq {}: {fault:?} fetch discarded — refetching",
                    self.seq.get()
                ),
            );
        }
        self.flight(
            thread,
            Severity::Error,
            counter,
            format!("{fault:?} fetch discarded — refetching"),
        );
        if let Some(h) = &self.health {
            h.record_corrupt(thread.now());
        }
    }

    /// Verifies one fully fetched response image in the landing zone
    /// (header from the first segment, payload + trailing canary as
    /// currently fetched). `Err` carries the failure class; the caller
    /// discards the fetch and retries. No-op `Ok` with the layer off.
    fn verify_fetched(
        &self,
        thread: &ThreadCtx,
        slot: usize,
        hdr: &RespHeader,
    ) -> Result<(), IntegrityFault> {
        if !self.shared.cfg.integrity.enabled {
            return Ok(());
        }
        let wire_hdr = hdr.wire_len();
        let size = hdr.size as usize;
        let outcome = if wire_hdr + size + RESP_TRAILER > self.shared.cfg.resp_capacity {
            // A flipped size bit can claim more payload than the buffer
            // holds; classify it as torn instead of reading past the MR.
            Err(IntegrityFault::Torn)
        } else {
            let base = self.shared.resp_off(slot);
            self.shared.client_resp.with_bytes(|bytes| {
                verify_response(
                    hdr,
                    &bytes[base + wire_hdr..base + wire_hdr + size],
                    &bytes[base + wire_hdr + size..base + wire_hdr + size + RESP_TRAILER],
                )
            })
        };
        if let Err(fault) = outcome {
            self.note_integrity_failure(thread, fault);
        }
        outcome
    }

    /// Whether a fetched header's claimed footprint fits the response
    /// buffer. Always true with integrity off (the server is trusted);
    /// with it on, a flipped size bit must not drive the second READ
    /// past the registered region.
    fn resp_len_plausible(&self, total: usize) -> bool {
        !self.shared.cfg.integrity.enabled || total <= self.shared.cfg.resp_capacity
    }

    /// Total fetched footprint of a response: wire header + payload +
    /// (with integrity on) the trailing canary. The two-segment fetch
    /// must cover all of it before the response can be verified.
    fn resp_total_len(&self, hdr: &RespHeader) -> usize {
        let trailer = if self.shared.cfg.integrity.enabled {
            RESP_TRAILER
        } else {
            0
        };
        hdr.wire_len() + hdr.size as usize + trailer
    }

    /// Bumps an `overload.*` counter and trace entry. Lazy like the
    /// recovery counters: a run that never hits the overload machinery
    /// materialises no instrument.
    fn note_overload(&self, thread: &ThreadCtx, counter: &'static str, what: &str) {
        if let Some(ins) = &self.instruments {
            ins.telemetry.registry.counter(counter).incr();
        }
        if let Some(trace) = &self.shared.cfg.trace {
            trace.record(
                thread.now(),
                "rfp.overload",
                format!("seq {}: {what}", self.seq.get()),
            );
        }
        self.flight(thread, Severity::Warn, counter, what.to_string());
        if let Some(h) = &self.health {
            match counter {
                "overload.credit_waits" => h.record_credit_wait(thread.now()),
                "overload.busy_seen" => h.record_busy(thread.now()),
                "overload.sheds_seen" | "overload.local_sheds" => h.record_shed(thread.now()),
                _ => {}
            }
        }
    }

    async fn recv_remote_fetch(
        &self,
        thread: &ThreadCtx,
        seq: u32,
        t0: rfp_simnet::SimTime,
    ) -> CallResult {
        let r = self.retry_threshold.get();
        let slot = self.shared.slot_of(seq);
        let base = self.shared.resp_off(slot);
        let mut attempts = 0u32;
        let mut integrity_retries = 0u32;
        let mut counted_over = false;
        loop {
            attempts += 1;
            let f = self.fetch_size.get();
            self.qp()
                .read(
                    thread,
                    &self.shared.client_resp,
                    base,
                    &self.shared.resp,
                    base,
                    f,
                )
                .await;
            self.span_mark(thread, slot, "fetch_read");
            if let Some(ins) = &self.instruments {
                ins.fetch_bytes.add(f as u64);
            }
            thread.busy(self.shared.cfg.check_cpu).await;
            let hdr = self.resp_hdr_at(slot);
            if self.accept_resp(&hdr, seq) {
                let total = self.resp_total_len(&hdr);
                if !self.resp_len_plausible(total) {
                    self.note_integrity_failure(thread, IntegrityFault::Torn);
                    integrity_retries += 1;
                    continue;
                }
                let size = hdr.size as usize;
                let mut extra_read = false;
                if total > f {
                    // Second fetch for the remainder (paper §3.2: only if
                    // the real result exceeds the default fetch size).
                    let rest = total - f;
                    self.qp()
                        .read(
                            thread,
                            &self.shared.client_resp,
                            base + f,
                            &self.shared.resp,
                            base + f,
                            rest,
                        )
                        .await;
                    self.span_mark(thread, slot, "extra_fetch_read");
                    if let Some(ins) = &self.instruments {
                        ins.fetch_bytes.add(rest as u64);
                    }
                    extra_read = true;
                }
                if self.verify_fetched(thread, slot, &hdr).is_err() {
                    // Discard the fetched image and refetch: the next READ
                    // samples the buffer afresh.
                    integrity_retries += 1;
                    continue;
                }
                if !counted_over {
                    self.consec_over.set(0);
                }
                self.note_accepted(&hdr);
                return CallResult {
                    data: self
                        .shared
                        .client_resp
                        .read_local(base + hdr.wire_len(), size),
                    info: CallInfo {
                        attempts,
                        extra_read,
                        completed_in: Mode::RemoteFetch,
                        latency: thread.now() - t0,
                        server_time_us: hdr.time_us,
                        status: hdr.status,
                        integrity_retries,
                    },
                };
            }
            // Failed attempt. Past R failed retries this call counts
            // toward the consecutive-overrun guard exactly once.
            if attempts > r && !counted_over {
                counted_over = true;
                if self.shared.cfg.enable_mode_switch {
                    let over = self.consec_over.get() + 1;
                    self.consec_over.set(over);
                    if over >= self.shared.cfg.consecutive_before_switch {
                        self.switch_mode(thread, Mode::ServerReply).await;
                        return self.recv_server_reply(thread, seq, t0, attempts).await;
                    }
                }
            }
        }
    }

    async fn recv_server_reply(
        &self,
        thread: &ThreadCtx,
        seq: u32,
        t0: rfp_simnet::SimTime,
        prior_attempts: u32,
    ) -> CallResult {
        let slot = self.shared.slot_of(seq);
        let base = self.shared.resp_off(slot);
        let mut attempts = prior_attempts;
        let mut integrity_retries = 0u32;
        loop {
            thread.busy(self.shared.cfg.check_cpu).await;
            let hdr = self.resp_hdr_at(slot);
            // In reply mode the server pushes (and the fallback fetch
            // reads) the whole image, so verification needs no second
            // READ; a corrupt image falls through to the wait/fallback
            // below, which refreshes the landing zone.
            if self.accept_resp(&hdr, seq) && self.verify_fetched(thread, slot, &hdr).is_ok() {
                self.span_mark(thread, slot, "reply_received");
                let size = hdr.size as usize;
                let data = self
                    .shared
                    .client_resp
                    .read_local(base + hdr.wire_len(), size);
                // §3.2: record the server's response time; if it got
                // short again, remote fetching is profitable — switch
                // back.
                if self.shared.cfg.enable_mode_switch
                    && SimSpan::micros(hdr.time_us as u64) < self.shared.cfg.switch_back_below
                    && self.mode.get() == Mode::ServerReply
                {
                    self.switch_mode(thread, Mode::RemoteFetch).await;
                }
                self.note_accepted(&hdr);
                return CallResult {
                    data,
                    info: CallInfo {
                        attempts,
                        extra_read: false,
                        completed_in: Mode::ServerReply,
                        latency: thread.now() - t0,
                        server_time_us: hdr.time_us,
                        status: hdr.status,
                        integrity_retries,
                    },
                };
            }
            if self.accept_resp(&hdr, seq) {
                // Matching but corrupt (verify_fetched noted it above).
                integrity_retries += 1;
            }
            // Block (idle — no busy polling in reply mode, which is the
            // whole CPU saving of Figure 15) until a reply lands, with a
            // fallback fetch covering the post-before-flag race.
            let landed = thread
                .idle_wait(timeout(
                    thread.handle(),
                    self.shared.cfg.reply_fallback_poll,
                    self.shared
                        .client_resp
                        .wait_remote_write(base..base + RESP_HDR),
                ))
                .await;
            if landed.is_none() {
                // Safety fetch: the server may have posted the response
                // locally before it saw the mode flag.
                if let Some(trace) = &self.shared.cfg.trace {
                    trace.record(
                        thread.now(),
                        "rfp.fallback",
                        format!("seq {seq}: fallback fetch after reply-wait timeout"),
                    );
                }
                attempts += 1;
                let f = self.fetch_size.get().max(self.shared.cfg.resp_capacity);
                self.qp()
                    .read(
                        thread,
                        &self.shared.client_resp,
                        base,
                        &self.shared.resp,
                        base,
                        f,
                    )
                    .await;
                self.span_mark(thread, slot, "fallback_fetch_read");
                if let Some(ins) = &self.instruments {
                    ins.fallback_fetches.incr();
                    ins.fetch_bytes.add(f as u64);
                }
            }
        }
    }

    /// One fault-tolerant RPC: deposits the request, fetches the
    /// response under a per-attempt deadline, and on failure backs off
    /// (jittered exponential), re-establishes an errored QP, and
    /// resubmits under the **same** sequence number so a restarted
    /// server dedups the replay. See [`RecoveryConfig`].
    ///
    /// Always runs in remote-fetch terms (the recovery path does not
    /// interact with the hybrid mode switch). On a healthy cluster the
    /// first attempt succeeds and this behaves exactly like
    /// [`call`](RfpClient::call) in remote-fetch mode: no recovery
    /// instrument is created, no extra event is scheduled.
    pub async fn call_with_recovery(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
        rec: &RecoveryConfig,
    ) -> Result<CallResult, RpcError> {
        let ov = &self.shared.cfg.overload;
        let max = self.req_headroom(ov.enabled);
        assert!(req.len() <= max, "request exceeds buffer capacity");
        let t0 = thread.now();
        self.sent_at.set(t0);
        self.last_flight.set(None);
        // Wire stamp (overload only) and the client-side clamp bounding
        // retry backoffs and per-attempt fetch deadlines: the tighter of
        // the overload deadline and the recovery call deadline.
        let stamp = if ov.enabled {
            Some(t0 + ov.deadline)
        } else {
            None
        };
        let clamp = match (rec.call_deadline, stamp) {
            (Some(d), Some(s)) => Some(s.min(t0 + d)),
            (Some(d), None) => Some(t0 + d),
            (None, s) => s,
        };
        let first_seq = self.peek_next_seq();
        let state = AttemptState {
            req,
            stamp,
            refresh: Cell::new(true),
            fetches: Cell::new(0),
            integrity_retries: Cell::new(0),
            force_reconnect: Cell::new(false),
        };

        // Jitter stream: deterministic per (config seed, call seq), and
        // constructed without touching the simulation's shared RNG.
        let mut jitter_rng = StdRng::seed_from_u64(derive_seed(rec.seed, first_seq as u64));
        let handle = thread.handle().clone();
        let outcome = retry_with_deadline(
            &handle,
            &rec.retry,
            clamp,
            || jitter_rng.gen::<f64>(),
            |attempt| self.attempt_call(thread, attempt, rec, clamp, &state),
        )
        .await;
        let fetches = &state.fetches;
        match outcome {
            Ok(mut out) => {
                // Latency spans the whole recovered call, backoffs
                // included.
                out.info.latency = thread.now() - t0;
                out.info.attempts = fetches.get();
                self.stats.record(&out.info);
                if let Some(h) = &self.health {
                    h.record_call(
                        thread.now(),
                        out.info.latency,
                        out.info.attempts.saturating_sub(1) as u64,
                        out.data.len(),
                        out.info.server_time_us,
                    );
                }
                if let Some(ins) = &self.instruments {
                    ins.calls.incr();
                    ins.latency.record(out.info.latency);
                    ins.retries.add(out.info.attempts.saturating_sub(1) as u64);
                }
                Ok(out)
            }
            Err(exhausted) => {
                self.note_recovery(thread, "recovery.failed_calls", "call exhausted its budget");
                Err(RpcError {
                    attempts: exhausted.attempts,
                    last: exhausted.last,
                })
            }
        }
    }

    /// Deposits one hedge leg: stages `req` under a fresh sequence
    /// number and WRITEs it to the server, without entering the fetch
    /// loop. The replica router races legs on different replicas and
    /// polls each with [`hedge_poll`](RfpClient::hedge_poll). Uses the
    /// same staging, header layout, and overload stamp as
    /// [`call_with_recovery`](RfpClient::call_with_recovery)'s first
    /// attempt, so the server cannot tell a hedge leg from an ordinary
    /// call.
    pub(crate) async fn hedge_deposit(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
    ) -> Result<HedgeTicket, FailureCause> {
        let ov = &self.shared.cfg.overload;
        let max = self.req_headroom(ov.enabled);
        assert!(req.len() <= max, "request exceeds buffer capacity");
        self.sent_at.set(thread.now());
        self.last_flight.set(None);
        let stamp = if ov.enabled {
            Some(thread.now() + ov.deadline)
        } else {
            None
        };
        let (slot, seq) = self.alloc_next_seq();
        let hdr = ReqHeader {
            valid: true,
            size: req.len() as u32,
            seq,
            deadline: stamp,
            tenant: self.tenant.get(),
            epoch: self.epoch.get(),
        };
        let hdr_len = hdr.wire_len();
        let mut hdr_bytes = [0u8; REQ_HDR_TENANT];
        hdr.encode(&mut hdr_bytes[..hdr_len]);
        let base = self.shared.req_off(slot);
        self.shared
            .client_req
            .write_local(base, &hdr_bytes[..hdr_len]);
        self.shared.client_req.write_local(base + hdr_len, req);
        self.qp()
            .try_write(
                thread,
                &self.shared.client_req,
                base,
                &self.shared.req,
                base,
                hdr_len + req.len(),
            )
            .await
            .map_err(|e| self.verb_failure(thread, e))?;
        Ok(HedgeTicket {
            slot,
            seq,
            fetches: 0,
            deposited_at: self.sent_at.get(),
        })
    }

    /// One fetch round of a hedge leg: a single READ of the landing
    /// zone, returning `Ok(Some(_))` when the response landed and
    /// verified, `Ok(None)` when the slot still holds nothing for this
    /// leg (poll again later), and `Err(_)` when the leg is dead — a
    /// verb error, a server rejection, or unrecoverable corruption.
    /// Mirrors one iteration of `attempt_call`'s fetch loop, minus the
    /// retry machinery: the router, not this leg, decides what happens
    /// next.
    pub(crate) async fn hedge_poll(
        &self,
        thread: &ThreadCtx,
        ticket: &mut HedgeTicket,
    ) -> Result<Option<CallResult>, FailureCause> {
        let slot = ticket.slot;
        let resp_base = self.shared.resp_off(slot);
        let f = self.fetch_size.get();
        let qp = self.qp();
        qp.try_read(
            thread,
            &self.shared.client_resp,
            resp_base,
            &self.shared.resp,
            resp_base,
            f,
        )
        .await
        .map_err(|e| self.verb_failure(thread, e))?;
        ticket.fetches += 1;
        if let Some(ins) = &self.instruments {
            ins.fetch_bytes.add(f as u64);
        }
        thread.busy(self.shared.cfg.check_cpu).await;
        let hdr = self.resp_hdr_at(slot);
        if !self.accept_resp(&hdr, ticket.seq) {
            return Ok(None);
        }
        let total = self.resp_total_len(&hdr);
        if !self.resp_len_plausible(total) {
            self.note_integrity_failure(thread, IntegrityFault::Torn);
            return Ok(None);
        }
        let size = hdr.size as usize;
        let mut extra_read = false;
        if total > f {
            let rest = total - f;
            qp.try_read(
                thread,
                &self.shared.client_resp,
                resp_base + f,
                &self.shared.resp,
                resp_base + f,
                rest,
            )
            .await
            .map_err(|e| self.verb_failure(thread, e))?;
            if let Some(ins) = &self.instruments {
                ins.fetch_bytes.add(rest as u64);
            }
            extra_read = true;
        }
        if self.verify_fetched(thread, slot, &hdr).is_err() {
            return Ok(None);
        }
        self.note_accepted(&hdr);
        if hdr.status != RespStatus::Ok {
            let counter = match hdr.status {
                RespStatus::Busy => "overload.busy_seen",
                RespStatus::Fenced => "recovery.fenced_seen",
                _ => "overload.sheds_seen",
            };
            self.note_overload(thread, counter, "server rejected the hedge leg");
            return Err(FailureCause::Rejected(hdr.status));
        }
        Ok(Some(CallResult {
            data: self
                .shared
                .client_resp
                .read_local(resp_base + hdr.wire_len(), size),
            info: CallInfo {
                attempts: ticket.fetches,
                extra_read,
                completed_in: Mode::RemoteFetch,
                latency: SimSpan::ZERO, // patched by the router
                server_time_us: hdr.time_us,
                status: hdr.status,
                integrity_retries: 0,
            },
        }))
    }

    /// Books a call the replica router completed through the hedge
    /// primitives against this connection's stats, health window, and
    /// instruments — the same accounting
    /// [`call_with_recovery`](RfpClient::call_with_recovery) performs
    /// on its success path. `out.info.latency` and `out.info.attempts`
    /// must already carry the values to attribute to *this* connection
    /// (a hedged race books each leg with its own latency and fetch
    /// count, not the end-to-end race figures).
    pub(crate) fn book_routed_call(&self, thread: &ThreadCtx, out: &CallResult) {
        self.stats.record(&out.info);
        if let Some(h) = &self.health {
            h.record_call(
                thread.now(),
                out.info.latency,
                out.info.attempts.saturating_sub(1) as u64,
                out.data.len(),
                out.info.server_time_us,
            );
        }
        if let Some(ins) = &self.instruments {
            ins.calls.incr();
            ins.latency.record(out.info.latency);
            ins.retries.add(out.info.attempts.saturating_sub(1) as u64);
        }
    }

    /// This connection's rolling health window, when the config wired
    /// one in. The replica router's scorer reads it.
    pub(crate) fn conn_health(&self) -> Option<&Rc<ConnHealth>> {
        self.health.as_ref()
    }

    /// One recovery attempt: (re)submit the request, then fetch until
    /// the per-attempt deadline.
    ///
    /// Submissions reuse the staged bytes — and the staged sequence —
    /// so a restarted server dedups the replay. The exception is an
    /// attempt following a `Busy`/`Shed` rejection: the rejected
    /// request was provably never executed, so the resubmission is
    /// staged fresh under a **new** sequence (reusing the rejected one
    /// would match the stale verdict response forever).
    async fn attempt_call(
        &self,
        thread: &ThreadCtx,
        attempt: u32,
        rec: &RecoveryConfig,
        clamp: Option<rfp_simnet::SimTime>,
        state: &AttemptState<'_>,
    ) -> Result<CallResult, FailureCause> {
        if attempt > 0 {
            let what = if state.refresh.get() {
                "resubmitting rejected request under a fresh seq"
            } else {
                "resubmitting request under the same seq"
            };
            self.note_recovery(thread, "recovery.resubmits", what);
            // A corrupt-exhausted attempt escalates to reconnection even
            // though the QP reports no error: persistent corruption on a
            // "healthy" QP is invisible to the transport.
            if state.force_reconnect.take() || self.qp().error_state().is_some() {
                self.reestablish_qp(thread, rec).await;
            }
        }
        if state.refresh.take() {
            let (slot, seq) = self.alloc_next_seq();
            let hdr = ReqHeader {
                valid: true,
                size: state.req.len() as u32,
                seq,
                deadline: state.stamp,
                tenant: self.tenant.get(),
                epoch: self.epoch.get(),
            };
            let hdr_len = hdr.wire_len();
            let mut hdr_bytes = [0u8; REQ_HDR_TENANT];
            hdr.encode(&mut hdr_bytes[..hdr_len]);
            let base = self.shared.req_off(slot);
            self.shared
                .client_req
                .write_local(base, &hdr_bytes[..hdr_len]);
            self.shared
                .client_req
                .write_local(base + hdr_len, state.req);
        }
        let seq = self.seq.get();
        let slot = self.shared.slot_of(seq);
        let req_base = self.shared.req_off(slot);
        let resp_base = self.shared.resp_off(slot);
        // Must mirror `ReqHeader::wire_len` for the header deposited in
        // this slot — a nonzero epoch forces the 24-byte layout even
        // without a tenant (an epoch adopted mid-call always re-deposits:
        // `Fenced` sets the refresh flag).
        let hdr_len = if self.tenant.get().is_some() || self.epoch.get() != 0 {
            REQ_HDR_TENANT
        } else if state.stamp.is_some() {
            REQ_HDR_EXT
        } else {
            REQ_HDR
        };
        let wire_len = hdr_len + state.req.len();
        let fetches = &state.fetches;
        let qp = self.qp();
        qp.try_write(
            thread,
            &self.shared.client_req,
            req_base,
            &self.shared.req,
            req_base,
            wire_len,
        )
        .await
        .map_err(|e| self.verb_failure(thread, e))?;

        let mut deadline = thread.now() + rec.fetch_deadline;
        if let Some(c) = clamp {
            deadline = deadline.min(c);
        }
        // Consecutive corrupt fetches within *this* attempt; at the
        // configured budget the attempt fails with `Corrupt` and the
        // next one escalates to reconnection.
        let mut corrupt_streak = 0u32;
        loop {
            let f = self.fetch_size.get();
            qp.try_read(
                thread,
                &self.shared.client_resp,
                resp_base,
                &self.shared.resp,
                resp_base,
                f,
            )
            .await
            .map_err(|e| self.verb_failure(thread, e))?;
            fetches.set(fetches.get() + 1);
            if let Some(ins) = &self.instruments {
                ins.fetch_bytes.add(f as u64);
            }
            thread.busy(self.shared.cfg.check_cpu).await;
            let hdr = self.resp_hdr_at(slot);
            let mut corrupt = false;
            if self.accept_resp(&hdr, seq) {
                let total = self.resp_total_len(&hdr);
                if !self.resp_len_plausible(total) {
                    self.note_integrity_failure(thread, IntegrityFault::Torn);
                    corrupt = true;
                } else {
                    let size = hdr.size as usize;
                    let mut extra_read = false;
                    if total > f {
                        let rest = total - f;
                        qp.try_read(
                            thread,
                            &self.shared.client_resp,
                            resp_base + f,
                            &self.shared.resp,
                            resp_base + f,
                            rest,
                        )
                        .await
                        .map_err(|e| self.verb_failure(thread, e))?;
                        if let Some(ins) = &self.instruments {
                            ins.fetch_bytes.add(rest as u64);
                        }
                        extra_read = true;
                    }
                    if self.verify_fetched(thread, slot, &hdr).is_ok() {
                        self.note_accepted(&hdr);
                        if hdr.status != RespStatus::Ok {
                            let counter = match hdr.status {
                                RespStatus::Busy => "overload.busy_seen",
                                RespStatus::Fenced => "recovery.fenced_seen",
                                _ => "overload.sheds_seen",
                            };
                            self.note_overload(thread, counter, "server rejected the request");
                            state.refresh.set(true);
                            return Err(FailureCause::Rejected(hdr.status));
                        }
                        return Ok(CallResult {
                            data: self
                                .shared
                                .client_resp
                                .read_local(resp_base + hdr.wire_len(), size),
                            info: CallInfo {
                                attempts: fetches.get(),
                                extra_read,
                                completed_in: Mode::RemoteFetch,
                                latency: SimSpan::ZERO, // patched by the caller
                                server_time_us: hdr.time_us,
                                status: hdr.status,
                                integrity_retries: state.integrity_retries.get(),
                            },
                        });
                    }
                    corrupt = true;
                }
            }
            if corrupt {
                state
                    .integrity_retries
                    .set(state.integrity_retries.get() + 1);
                corrupt_streak += 1;
                if corrupt_streak >= self.shared.cfg.integrity.verify_retries {
                    self.note_recovery(
                        thread,
                        "recovery.corrupt_attempts",
                        "verify-and-refetch budget exhausted",
                    );
                    state.force_reconnect.set(true);
                    return Err(FailureCause::Corrupt);
                }
            }
            if thread.now() >= deadline {
                self.note_recovery(thread, "recovery.deadlines", "attempt deadline expired");
                return Err(FailureCause::Deadline);
            }
        }
    }

    /// Re-establishes the QP via the installed factory (charging the
    /// reconnect CPU cost). Without a factory the old QP stays in place.
    async fn reestablish_qp(&self, thread: &ThreadCtx, rec: &RecoveryConfig) {
        let fresh = {
            let factory = self.reconnect.borrow();
            factory.as_ref().map(|f| f())
        };
        let Some(fresh) = fresh else { return };
        // Connection handshake + MR re-registration.
        thread.busy(rec.reconnect_cpu).await;
        *self.qp.borrow_mut() = fresh;
        self.note_recovery(thread, "recovery.reconnects", "QP re-established");
        if let Some(h) = &self.health {
            h.record_reconnect(thread.now());
        }
    }

    /// Records a verb error completion against the recovery instruments.
    fn verb_failure(&self, thread: &ThreadCtx, e: rfp_rnic::VerbError) -> FailureCause {
        self.note_recovery(thread, "recovery.verb_errors", "verb completed with error");
        if let Some(h) = &self.health {
            h.record_verb_error(thread.now());
        }
        FailureCause::Verb(e)
    }

    /// Bumps a `recovery.*` counter and trace entry. Instruments are
    /// created lazily at the first event, so a run without faults never
    /// materialises them — keeping fault-free metric output byte-equal
    /// to a build without recovery wired in.
    pub(crate) fn note_recovery(&self, thread: &ThreadCtx, counter: &'static str, what: &str) {
        if let Some(ins) = &self.instruments {
            ins.telemetry.registry.counter(counter).incr();
        }
        if let Some(trace) = &self.shared.cfg.trace {
            trace.record(
                thread.now(),
                "rfp.recovery",
                format!("seq {}: {what}", self.seq.get()),
            );
        }
        let severity = if counter == "recovery.failed_calls" {
            Severity::Error
        } else {
            Severity::Warn
        };
        self.flight(thread, severity, counter, what.to_string());
    }

    /// Books the replica router abandoning this connection: the
    /// `recovery.failovers` counter, a `recovery.failover` link chained
    /// onto the failed call's flight-recorder cause chain, and the
    /// health plane's failover signal. Lazy like the rest of the
    /// recovery telemetry: a run that never fails over creates nothing.
    pub(crate) fn note_failover(&self, thread: &ThreadCtx, detail: String) {
        if let Some(ins) = &self.instruments {
            ins.telemetry.registry.counter("recovery.failovers").incr();
        }
        if let Some(trace) = &self.shared.cfg.trace {
            trace.record(thread.now(), "rfp.recovery", detail.clone());
        }
        if let Some(h) = &self.health {
            h.record_failover(thread.now());
        }
        self.flight(thread, Severity::Warn, "recovery.failover", detail);
    }

    async fn switch_mode(&self, thread: &ThreadCtx, to: Mode) {
        let byte = match to {
            Mode::RemoteFetch => MODE_REMOTE_FETCH,
            Mode::ServerReply => MODE_SERVER_REPLY,
        };
        self.shared.client_mode.write_local(0, &[byte]);
        self.qp()
            .write(thread, &self.shared.client_mode, 0, &self.shared.mode, 0, 1)
            .await;
        self.mode.set(to);
        self.consec_over.set(0);
        self.span_mark(thread, self.shared.slot_of(self.seq.get()), "mode_switched");
        if let Some(trace) = &self.shared.cfg.trace {
            trace.record(thread.now(), "rfp.mode", format!("switched to {to:?}"));
        }
        self.flight(
            thread,
            Severity::Info,
            "rfp.mode_switch",
            format!("switched to {to:?}"),
        );
        if let Some(ins) = &self.instruments {
            ins.mode.set(mode_level(to));
            match to {
                Mode::ServerReply => ins.switches_to_reply.incr(),
                Mode::RemoteFetch => ins.switches_to_fetch.incr(),
            }
        }
        match to {
            Mode::ServerReply => self
                .stats
                .switches_to_reply
                .set(self.stats.switches_to_reply.get() + 1),
            Mode::RemoteFetch => self
                .stats
                .switches_to_fetch
                .set(self.stats.switches_to_fetch.get() + 1),
        }
    }
}
