//! Connection setup: buffer pairs, configuration, and the server side.
//!
//! An RFP connection between one client thread and a server machine
//! consists of (Figure 7):
//!
//! * a **request buffer** in server memory — the client deposits requests
//!   with one-sided WRITE (in-bound at the server),
//! * a **response buffer** in server memory — the server posts results
//!   locally; the client fetches them with one-sided READ (again
//!   in-bound at the server),
//! * a **mode flag** in server memory — the client flips it between
//!   remote-fetch and server-reply (§3.2's hybrid mechanism),
//! * a client-local **response landing zone** — the target of the
//!   server's out-bound WRITE when the connection is in server-reply
//!   mode, and the destination of remote fetches otherwise.
//!
//! Buffer locations are exchanged once at registration; afterwards both
//! sides access their ends without further synchronisation (the paper's
//! `malloc_buf` registration step).
//!
//! The paper keeps one mode flag per ⟨client id, RPC id⟩ pair; here a
//! *connection* plays that role — an application multiplexing several
//! logical RPC streams opens one connection per stream (see
//! [`RfpPool`](crate::RfpPool)), each with its own buffers, flag and
//! hybrid-switch state.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use rfp_rnic::{Machine, MemRegion, Qp, ThreadCtx};
use rfp_simnet::{MetricsRegistry, RequestTrace, SimSpan, SimTime, SpanRecorder};

use crate::header::{
    resp_canary, slot_of, ReqHeader, RespHeader, RespIntegrity, RespStatus, REQ_HDR, REQ_HDR_EXT,
    REQ_HDR_TENANT, RESP_HDR, RESP_HDR_EXT, RESP_TRAILER,
};
use crate::integrity::IntegrityConfig;
use crate::overload::OverloadConfig;
use rfp_simnet::crc64;

/// Destination for one connection's telemetry: counters/gauges go into
/// `registry` under `prefix`, and one [`RequestTrace`] per completed
/// call goes into `spans`.
#[derive(Clone)]
pub struct RfpTelemetry {
    /// Registry receiving this connection's instruments.
    pub registry: MetricsRegistry,
    /// Recorder receiving one span per completed call.
    pub spans: SpanRecorder,
    /// Hierarchical metric prefix, e.g. `rfp.client.3`.
    pub prefix: String,
    /// Chrome-trace display row for this connection's spans.
    pub track: u32,
}

impl fmt::Debug for RfpTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RfpTelemetry")
            .field("prefix", &self.prefix)
            .field("track", &self.track)
            .finish_non_exhaustive()
    }
}

/// Tuning and sizing of one RFP connection.
#[derive(Clone, Debug)]
pub struct RfpConfig {
    /// `R`: failed remote-fetch retries tolerated per call before the
    /// call counts toward switching to server-reply.
    pub retry_threshold: u32,
    /// `F`: bytes fetched per remote READ (header + payload prefix).
    pub fetch_size: usize,
    /// Number of consecutive calls that must exceed `R` before the mode
    /// actually switches (the paper's anti-flapping guard, §3.2).
    pub consecutive_before_switch: u32,
    /// Switch back to remote fetching when a server-reply response
    /// reports a process time below this.
    pub switch_back_below: SimSpan,
    /// In server-reply mode, issue a safety remote fetch if no reply
    /// lands within this interval (covers the race where the server
    /// posted the response before observing the mode flip).
    pub reply_fallback_poll: SimSpan,
    /// Whether the hybrid mode switch is enabled ("Jakiro w/o Switch" in
    /// Figure 14 disables it).
    pub enable_mode_switch: bool,
    /// Mode the connection starts in. `RemoteFetch` is RFP proper;
    /// `ServerReply` with the switch disabled *is* the paper's
    /// ServerReply baseline (which it derives from Jakiro the same way).
    pub initial_mode: Mode,
    /// Capacity of the request buffer (header + payload). With a
    /// multi-slot ring this is the capacity of *one slot*.
    pub req_capacity: usize,
    /// Capacity of the response buffer (header + payload). With a
    /// multi-slot ring this is the capacity of *one slot*.
    pub resp_capacity: usize,
    /// `W`: ring slots per connection — the number of calls the
    /// pipelined client driver can keep outstanding. The default 1 is
    /// the paper's one-call-at-a-time layout, byte-identical to the
    /// pre-windowed format; larger powers of two tile `W` independent
    /// request/response slots into the registered buffers, each call's
    /// slot carried by its seq (see [`slot_of`]).
    pub window: usize,
    /// Server CPU cost to post a response into its local buffer.
    pub post_cpu: SimSpan,
    /// CPU cost to inspect a local header (client check / server scan).
    pub check_cpu: SimSpan,
    /// Optional shared trace log; the client records mode switches and
    /// reply-mode fallback fetches into it (category `"rfp.mode"` /
    /// `"rfp.fallback"`).
    pub trace: Option<rfp_simnet::TraceLog>,
    /// Optional telemetry sink: per-connection counters/gauges plus one
    /// request-lifecycle span per completed call.
    pub telemetry: Option<RfpTelemetry>,
    /// Overload control (credit-based admission, deadline shedding,
    /// cooperative backoff). Off by default: a disabled config leaves
    /// every wire byte and scheduled event exactly as without it.
    pub overload: OverloadConfig,
    /// End-to-end integrity for remote fetches (payload CRC, buffer
    /// generation, trailing canary; see [`crate::IntegrityConfig`]).
    /// Off by default with the same disabled-knobs-inert guarantee.
    pub integrity: IntegrityConfig,
    /// Optional flight recorder: both endpoints append cause-chain
    /// events (retry→reconnect, shed verdicts, torn fetches, slot
    /// stalls) tagged with `conn_id` and the call seq. Recording is
    /// synchronous bookkeeping — no simulated time or wire bytes — so
    /// `None` and `Some` runs are event-identical.
    pub recorder: Option<rfp_simnet::FlightRecorder>,
    /// Optional rolling-window health plane; the client books every
    /// completed call plus retry/shed/corrupt/credit/stall signals into
    /// `health.conn(conn_id)`. Same zero-timing-impact guarantee.
    pub health: Option<rfp_simnet::HealthHub>,
    /// Connection id tagged onto recorder events and health windows.
    pub conn_id: u32,
}

impl Default for RfpConfig {
    fn default() -> Self {
        RfpConfig {
            retry_threshold: 5,
            fetch_size: 256,
            consecutive_before_switch: 2,
            switch_back_below: SimSpan::micros(7),
            reply_fallback_poll: SimSpan::micros(50),
            enable_mode_switch: true,
            initial_mode: Mode::RemoteFetch,
            req_capacity: 16 * 1024,
            resp_capacity: 16 * 1024,
            window: 1,
            post_cpu: SimSpan::nanos(100),
            check_cpu: SimSpan::nanos(50),
            trace: None,
            telemetry: None,
            overload: OverloadConfig::default(),
            integrity: IntegrityConfig::default(),
            recorder: None,
            health: None,
            conn_id: 0,
        }
    }
}

impl RfpConfig {
    /// Bytes of response header this connection writes on the wire
    /// ([`RESP_HDR`], or [`RESP_HDR_EXT`] with integrity on).
    pub fn resp_wire_hdr(&self) -> usize {
        if self.integrity.enabled {
            RESP_HDR_EXT
        } else {
            RESP_HDR
        }
    }

    /// Largest response payload this connection can carry (integrity on
    /// additionally reserves the extended header and the trailing
    /// canary).
    pub fn max_resp_payload(&self) -> usize {
        if self.integrity.enabled {
            self.resp_capacity - RESP_HDR_EXT - RESP_TRAILER
        } else {
            self.resp_capacity - RESP_HDR
        }
    }

    /// Largest request payload this connection can carry.
    pub fn max_req_payload(&self) -> usize {
        self.req_capacity - REQ_HDR
    }

    /// Largest request payload when the extended (deadline-stamped)
    /// request header is in use — the overload path's capacity.
    pub fn max_req_payload_with_deadline(&self) -> usize {
        self.req_capacity - REQ_HDR_EXT
    }
}

/// Client-side transport mode of a connection (paper §3.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The client repeatedly fetches results with one-sided READs.
    RemoteFetch,
    /// The server pushes results with out-bound WRITEs.
    ServerReply,
}

/// Mode-flag byte values stored in the server-side mode region.
pub(crate) const MODE_REMOTE_FETCH: u8 = 0;
pub(crate) const MODE_SERVER_REPLY: u8 = 1;

/// The memory geometry shared by both endpoint objects.
pub(crate) struct Shared {
    /// Server-side request ring (`window` slots of `req_capacity`).
    pub req: Rc<MemRegion>,
    /// Server-side response ring (`window` slots of `resp_capacity`).
    pub resp: Rc<MemRegion>,
    /// Server-side mode flag (1 byte).
    pub mode: Rc<MemRegion>,
    /// Client-side response landing zone (mirrors the response ring).
    pub client_resp: Rc<MemRegion>,
    /// Client-side request staging buffer (mirrors the request ring).
    pub client_req: Rc<MemRegion>,
    /// Client-side 1-byte staging buffer for mode flips.
    pub client_mode: Rc<MemRegion>,
    pub cfg: RfpConfig,
    /// Per-slot spans of the in-flight requests, when telemetry is
    /// enabled. Both endpoints add milestones; each ring slot carries
    /// one request at a time, so one entry per slot suffices.
    pub spans: RefCell<Vec<Option<RequestTrace>>>,
}

impl Shared {
    /// Byte offset of `slot`'s request buffer in the request ring.
    pub(crate) fn req_off(&self, slot: usize) -> usize {
        slot * self.cfg.req_capacity
    }

    /// Byte offset of `slot`'s response buffer in the response ring.
    pub(crate) fn resp_off(&self, slot: usize) -> usize {
        slot * self.cfg.resp_capacity
    }

    /// Ring slot of a call sequence number under this connection's
    /// window.
    pub(crate) fn slot_of(&self, seq: u32) -> usize {
        slot_of(seq, self.cfg.window)
    }

    /// Mutable access to `slot`'s in-flight span.
    pub(crate) fn span_mut(&self, slot: usize) -> std::cell::RefMut<'_, Option<RequestTrace>> {
        std::cell::RefMut::map(self.spans.borrow_mut(), |v| &mut v[slot])
    }
}

/// Creates one client↔server RFP connection.
///
/// `qp_c2s` must go from the client's machine to the server's machine,
/// `qp_s2c` the reverse (used only in server-reply mode).
///
/// # Panics
///
/// Panics if the QPs do not connect the same two machines in opposite
/// directions, or if `fetch_size` is smaller than the response header.
pub fn connect(
    client_machine: &Rc<Machine>,
    server_machine: &Rc<Machine>,
    qp_c2s: Rc<Qp>,
    qp_s2c: Rc<Qp>,
    cfg: RfpConfig,
) -> (crate::client::RfpClient, RfpServerConn) {
    assert!(
        cfg.fetch_size >= RESP_HDR,
        "fetch size must cover the response header"
    );
    assert!(
        cfg.req_capacity >= REQ_HDR_EXT,
        "request buffer must cover the extended header"
    );
    assert!(
        cfg.fetch_size <= cfg.resp_capacity,
        "fetch size exceeds the response buffer"
    );
    if cfg.integrity.enabled {
        assert!(
            cfg.fetch_size >= RESP_HDR_EXT,
            "fetch size must cover the extended response header"
        );
        assert!(
            cfg.resp_capacity >= RESP_HDR_EXT + RESP_TRAILER,
            "response buffer must cover the extended header and trailer"
        );
        assert!(
            cfg.integrity.verify_retries > 0,
            "integrity needs at least one verify retry"
        );
    }
    assert_eq!(qp_c2s.local().id(), client_machine.id(), "qp_c2s direction");
    assert_eq!(
        qp_c2s.remote().id(),
        server_machine.id(),
        "qp_c2s direction"
    );
    assert_eq!(qp_s2c.local().id(), server_machine.id(), "qp_s2c direction");
    assert_eq!(
        qp_s2c.remote().id(),
        client_machine.id(),
        "qp_s2c direction"
    );
    assert!(
        cfg.window >= 1 && cfg.window.is_power_of_two(),
        "window must be a power of two (slot mapping must survive seq wraparound)"
    );

    let window = cfg.window;
    let shared = Rc::new(Shared {
        req: server_machine.alloc_mr(cfg.req_capacity * window),
        resp: server_machine.alloc_mr(cfg.resp_capacity * window),
        mode: server_machine.alloc_mr(1),
        client_resp: client_machine.alloc_mr(cfg.resp_capacity * window),
        client_req: client_machine.alloc_mr(cfg.req_capacity * window),
        client_mode: client_machine.alloc_mr(1),
        cfg,
        spans: RefCell::new((0..window).map(|_| None).collect()),
    });
    // The initial mode is agreed at registration time (no RDMA needed).
    if shared.cfg.initial_mode == Mode::ServerReply {
        shared.mode.write_local(0, &[MODE_SERVER_REPLY]);
    }

    let client = crate::client::RfpClient::new(Rc::clone(&shared), qp_c2s);
    // Scan-cost counters are shared registry-wide (no per-conn prefix):
    // the interesting number is the *aggregate* slots inspected per
    // request served, which is what the fleet sweep's sub-linear-scan
    // assertion reads. Resolved once here so the hot scan loop never
    // does a name lookup.
    let scan = shared.cfg.telemetry.as_ref().map(|t| ScanCounters {
        slots: t.registry.counter("serve.scan.slots"),
        conns: t.registry.counter("serve.scan.conns"),
    });
    let server = RfpServerConn {
        slots: (0..window).map(|_| SlotState::default()).collect(),
        cur_slot: Cell::new(0),
        scan_from: Cell::new(0),
        scan,
        shared,
        qp_reply: qp_s2c,
        advertise: Cell::new(0),
        epoch: Cell::new(0),
        served: Cell::new(0),
        replied_out_of_band: Cell::new(0),
        rejected_busy: Cell::new(0),
        rejected_shed: Cell::new(0),
        rejected_fenced: Cell::new(0),
    };
    (client, server)
}

/// Server endpoint of one RFP connection.
///
/// The server thread owning this connection polls it with
/// [`try_recv`](RfpServerConn::try_recv) and answers with
/// [`send`](RfpServerConn::send) — the paper's `server_recv` /
/// `server_send` (Table 2).
pub struct RfpServerConn {
    shared: Rc<Shared>,
    qp_reply: Rc<Qp>,
    /// Per-ring-slot request state (`window` entries).
    slots: Vec<SlotState>,
    /// Slot of the request last delivered by `try_recv` (the serve loop
    /// strictly alternates recv/send, so one marker suffices).
    cur_slot: Cell<usize>,
    /// Round-robin scan cursor across the ring slots.
    scan_from: Cell<usize>,
    /// Registry-wide scan-cost counters (`serve.scan.*`), resolved at
    /// connect time when telemetry is attached.
    scan: Option<ScanCounters>,
    /// Credit level stamped into outgoing response headers (overload
    /// control; stays 0 — the legacy zero fill — when the subsystem is
    /// off).
    advertise: Cell<u16>,
    /// Replication epoch this server currently serves in (stamped into
    /// every response header). 0 — the default outside replicated
    /// deployments — keeps responses byte-identical to the legacy
    /// layout and disables the request fence.
    epoch: Cell<u16>,
    served: Cell<u64>,
    replied_out_of_band: Cell<u64>,
    rejected_busy: Cell<u64>,
    rejected_shed: Cell<u64>,
    rejected_fenced: Cell<u64>,
}

/// Cached handles to the shared `serve.scan.slots` / `serve.scan.conns`
/// counters: slots inspected and connections visited by the server's
/// request scan. Their ratio to requests served is the server-side scan
/// cost per request — the quantity a multiplexing layer must keep flat
/// as logical clients are added.
struct ScanCounters {
    slots: Rc<rfp_simnet::Counter>,
    conns: Rc<rfp_simnet::Counter>,
}

/// Per-slot server-side request state.
#[derive(Default)]
struct SlotState {
    /// Sequence of the last request delivered to the application from
    /// this slot (the idempotent-dedup marker).
    last_seq: Cell<u32>,
    /// When the slot's in-flight request was picked up (`time` field).
    pickup: Cell<SimTime>,
    /// Sequence of the slot's in-flight request.
    cur_seq: Cell<u32>,
    /// Deadline stamped into the slot's in-flight request, if any.
    cur_deadline: Cell<Option<SimTime>>,
    /// Tenant stamped into the slot's in-flight request, if any.
    cur_tenant: Cell<Option<u32>>,
    /// Buffer generation: bumped on every local post into this slot's
    /// response buffer (integrity layer; stays 0 and unstamped when it
    /// is off).
    generation: Cell<u32>,
}

impl RfpServerConn {
    /// Checks the request buffer for a newly arrived request
    /// (`server_recv`). Returns its payload, or `None`.
    ///
    /// Acceptance doubles as idempotent dedup: a request is delivered
    /// iff its sequence differs from the last *delivered* one. The
    /// connection carries one call at a time, so a client resubmitting
    /// under the same seq (crash recovery) is ignored while that seq is
    /// in flight or already answered, and accepted fresh seqs — e.g.
    /// the first request after a server restart — need no handshake.
    ///
    /// Charges one header inspection of CPU time per ring slot scanned;
    /// a single-slot connection inspects exactly one header per call,
    /// as before windowing. Multi-slot rings are scanned round-robin
    /// from a persistent cursor, stopping at the first pending slot.
    pub async fn try_recv(&self, thread: &ThreadCtx) -> Option<Vec<u8>> {
        let window = self.shared.cfg.window;
        // The header-window read covers the largest extension that fits
        // the slot: `decode` consumes 8, 16, or 24 bytes depending on
        // the deadline/tenant bits (capacity ≥ 16 is a `connect`
        // invariant; the tenant field needs 24 and its decode guard
        // degrades gracefully on smaller slots).
        let hdr_window = REQ_HDR_TENANT.min(self.shared.cfg.req_capacity);
        if let Some(scan) = &self.scan {
            scan.conns.incr();
        }
        for _ in 0..window {
            let slot = self.scan_from.get();
            self.scan_from.set((slot + 1) % window);
            thread.busy(self.shared.cfg.check_cpu).await;
            if let Some(scan) = &self.scan {
                scan.slots.incr();
            }
            let base = self.shared.req_off(slot);
            let hdr_bytes = self.shared.req.read_local(base, hdr_window);
            let hdr = ReqHeader::decode(&hdr_bytes);
            let st = &self.slots[slot];
            if !hdr.valid || hdr.seq == st.last_seq.get() {
                continue;
            }
            st.last_seq.set(hdr.seq);
            st.cur_seq.set(hdr.seq);
            st.cur_deadline.set(hdr.deadline);
            st.cur_tenant.set(hdr.tenant);
            st.pickup.set(thread.now());
            self.cur_slot.set(slot);
            if hdr.epoch != self.epoch.get() {
                // Epoch fence: the request was stamped in a different
                // replication epoch than this server serves in — either
                // a stale client that has not learned of a failover, or
                // a client that moved on while *we* are the deposed
                // ex-primary. Never deliver it to the application (so no
                // split-brain write is ever acked); answer `Fenced`
                // carrying our epoch so a lagging client can catch up.
                self.reject(thread, RespStatus::Fenced).await;
                continue;
            }
            if let Some(span) = self.shared.span_mut(slot).as_mut() {
                span.mark_unordered(thread.now(), "server_dequeued");
            }
            return Some(
                self.shared
                    .req
                    .read_local(base + hdr.wire_len(), hdr.size as usize),
            );
        }
        None
    }

    /// `W`: ring slots of this connection (the most requests a pipelined
    /// client can have pending at once — the serve loop's drain bound).
    pub fn window(&self) -> usize {
        self.shared.cfg.window
    }

    /// Deadline stamped into the request last delivered by
    /// [`try_recv`](RfpServerConn::try_recv), if the client stamped one.
    pub fn current_deadline(&self) -> Option<SimTime> {
        self.slots[self.cur_slot.get()].cur_deadline.get()
    }

    /// Tenant stamped into the request last delivered by
    /// [`try_recv`](RfpServerConn::try_recv), if the client stamped one.
    pub fn current_tenant(&self) -> Option<u32> {
        self.slots[self.cur_slot.get()].cur_tenant.get()
    }

    /// Sets the credit level stamped into subsequent response headers.
    pub fn set_advertised_credits(&self, credits: u16) {
        self.advertise.set(credits);
    }

    /// The connection's overload knobs (shared config).
    pub(crate) fn overload(&self) -> &OverloadConfig {
        &self.shared.cfg.overload
    }

    /// Ring slot of the request last delivered by
    /// [`try_recv`](RfpServerConn::try_recv). The reactor captures it
    /// at pickup so a queued (or stolen) request can be answered into
    /// its own slot even after later `try_recv`s moved the in-flight
    /// marker.
    pub(crate) fn reply_slot(&self) -> usize {
        self.cur_slot.get()
    }

    /// Restores the in-flight marker before answering a queued request.
    /// Must be called with no intervening await before the send — the
    /// marker is connection-global and any concurrent `try_recv` moves
    /// it.
    pub(crate) fn set_reply_slot(&self, slot: usize) {
        self.cur_slot.set(slot);
    }

    /// Posts the response for the in-flight request (`server_send`).
    ///
    /// In remote-fetch mode this only writes into the server's local
    /// response buffer (no out-bound RDMA — the whole point of RFP); in
    /// server-reply mode it additionally pushes the response to the
    /// client with an out-bound WRITE.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds the response capacity or no request
    /// is in flight.
    pub async fn send(&self, thread: &ThreadCtx, payload: &[u8]) {
        self.post_response(thread, payload, RespStatus::Ok).await;
        self.served.set(self.served.get() + 1);
    }

    /// Answers the in-flight request with an overload rejection: an
    /// empty-payload response whose header carries the `Busy`/`Shed`
    /// verdict. The request was *not* executed; the client may resubmit
    /// under a fresh seq. Costs the same local post as a normal response
    /// and zero out-bound RDMA in remote-fetch mode — the client learns
    /// the verdict from its next (single) fetch READ.
    ///
    /// # Panics
    ///
    /// Panics if no request is in flight or `status` is `Ok`.
    pub async fn reject(&self, thread: &ThreadCtx, status: RespStatus) {
        assert!(status != RespStatus::Ok, "reject needs a rejection status");
        self.post_response(thread, &[], status).await;
        let (cell, counter) = match status {
            RespStatus::Busy => (&self.rejected_busy, "overload.busy_rejections"),
            RespStatus::Shed => (&self.rejected_shed, "overload.sheds"),
            RespStatus::Fenced => (&self.rejected_fenced, "replica.fenced"),
            RespStatus::Ok => unreachable!(),
        };
        cell.set(cell.get() + 1);
        // Lazy, like the recovery counters: a run that never rejects
        // materialises nothing.
        if let Some(t) = &self.shared.cfg.telemetry {
            t.registry.counter(counter).incr();
        }
        let seq = self.slots[self.cur_slot.get()].cur_seq.get();
        if let Some(trace) = &self.shared.cfg.trace {
            trace.record(
                thread.now(),
                "rfp.overload",
                format!("seq {seq}: rejected {status:?}"),
            );
        }
        if let Some(rec) = &self.shared.cfg.recorder {
            let kind = match status {
                RespStatus::Busy => "overload.reject_busy",
                RespStatus::Shed => "overload.reject_shed",
                RespStatus::Fenced => "replica.fence",
                RespStatus::Ok => unreachable!(),
            };
            rec.record(
                thread.now(),
                Some(self.shared.cfg.conn_id),
                seq as u64,
                rfp_simnet::Severity::Warn,
                kind,
                format!("server rejected seq {seq} with {status:?}"),
            );
        }
    }

    async fn post_response(&self, thread: &ThreadCtx, payload: &[u8], status: RespStatus) {
        let slot = self.cur_slot.get();
        let st = &self.slots[slot];
        let seq = st.cur_seq.get();
        assert!(seq != 0, "send without a received request");
        assert!(
            payload.len() <= self.shared.cfg.max_resp_payload(),
            "response exceeds buffer capacity"
        );
        let elapsed = thread.now() - st.pickup.get();
        let time_us = (elapsed.as_nanos() / 1_000).min(u16::MAX as u64) as u16;
        let integrity_on = self.shared.cfg.integrity.enabled;
        let integrity = if integrity_on {
            // The torn-DMA fault splices a concurrent READ from the
            // buffer's pre-post image; capture it only while that fault
            // is armed so healthy runs allocate nothing extra.
            if thread.machine().faults().torn_dma() > 0.0 {
                self.shared.resp.snapshot_history();
            }
            let generation = st.generation.get().wrapping_add(1);
            st.generation.set(generation);
            Some(RespIntegrity {
                crc: crc64(payload),
                generation,
            })
        } else {
            None
        };
        let hdr = RespHeader {
            valid: true,
            size: payload.len() as u32,
            seq,
            time_us,
            status,
            credits: self.advertise.get(),
            integrity,
            epoch: self.epoch.get(),
        };
        let wire_hdr = hdr.wire_len();
        let mut hdr_bytes = [0u8; RESP_HDR_EXT];
        hdr.encode(&mut hdr_bytes[..wire_hdr]);
        // Header after payload (and trailer): a concurrent remote fetch
        // must never see a valid header with stale payload bytes.
        let base = self.shared.resp_off(slot);
        self.shared.resp.write_local(base + wire_hdr, payload);
        if let Some(integrity) = integrity {
            self.shared.resp.write_local(
                base + wire_hdr + payload.len(),
                &resp_canary(seq, integrity.generation).to_le_bytes(),
            );
        }
        self.shared.resp.write_local(base, &hdr_bytes[..wire_hdr]);
        thread.busy(self.shared.cfg.post_cpu).await;
        if let Some(span) = self.shared.span_mut(slot).as_mut() {
            span.mark_unordered(
                thread.now(),
                match status {
                    RespStatus::Ok => "response_posted",
                    RespStatus::Busy => "rejected_busy",
                    RespStatus::Shed => "rejected_shed",
                    RespStatus::Fenced => "rejected_fenced",
                },
            );
        }

        let mode = self.shared.mode.read_local(0, 1)[0];
        if mode == MODE_SERVER_REPLY {
            self.replied_out_of_band
                .set(self.replied_out_of_band.get() + 1);
            let trailer = if integrity_on { RESP_TRAILER } else { 0 };
            self.qp_reply
                .write(
                    thread,
                    &self.shared.resp,
                    base,
                    &self.shared.client_resp,
                    base,
                    wire_hdr + payload.len() + trailer,
                )
                .await;
        }
    }

    /// Moves this connection into replication `epoch`: subsequent
    /// responses are stamped with it, and requests stamped in any other
    /// epoch are fenced instead of delivered. A promoted backup bumps
    /// it; a replication layer seeds it at deployment.
    pub fn set_epoch(&self, epoch: u16) {
        self.epoch.set(epoch);
    }

    /// Replication epoch this connection currently serves in.
    pub fn epoch(&self) -> u16 {
        self.epoch.get()
    }

    /// Requests fenced for carrying a mismatched replication epoch.
    pub fn rejected_fenced(&self) -> u64 {
        self.rejected_fenced.get()
    }

    /// Rebuilds this connection's process state after a server restart.
    ///
    /// Process state (`last_seq`, the in-flight marker) died with the
    /// old process; what survives is whatever is in the registered
    /// buffers. After a **warm** restart the response buffer still holds
    /// the last answered response, so its header seq restores the dedup
    /// state — an already-answered request that the client replays is
    /// recognised and not re-executed. After a **cold** restart the
    /// buffers were wiped, the recovered seq is 0, and every replay is
    /// (correctly) executed against the empty store.
    pub fn recover_after_restart(&self) {
        for (slot, st) in self.slots.iter().enumerate() {
            let hdr = RespHeader::decode(
                &self
                    .shared
                    .resp
                    .read_local(self.shared.resp_off(slot), self.shared.cfg.resp_wire_hdr()),
            );
            let recovered = if hdr.valid { hdr.seq } else { 0 };
            st.last_seq.set(recovered);
            st.cur_seq.set(recovered);
            st.cur_deadline.set(None);
            st.cur_tenant.set(None);
            // A warm restart resumes the generation counter from the
            // buffer (the next post must not reuse the stamped
            // generation); a cold restart starts over from 0.
            st.generation.set(hdr.integrity.map_or(0, |i| i.generation));
            // Any span of a call interrupted by the crash is stale.
            *self.shared.span_mut(slot) = None;
        }
        self.cur_slot.set(0);
        self.scan_from.set(0);
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// Responses pushed via out-bound WRITE (server-reply mode).
    pub fn replied_out_of_band(&self) -> u64 {
        self.replied_out_of_band.get()
    }

    /// Requests turned away with `Busy` (queue bound reached).
    pub fn rejected_busy(&self) -> u64 {
        self.rejected_busy.get()
    }

    /// Requests shed for an expired deadline.
    pub fn rejected_shed(&self) -> u64 {
        self.rejected_shed.get()
    }

    /// Current mode flag as last written by the client.
    pub fn mode(&self) -> Mode {
        if self.shared.mode.read_local(0, 1)[0] == MODE_SERVER_REPLY {
            Mode::ServerReply
        } else {
            Mode::RemoteFetch
        }
    }
}
