//! The paper's Table 2 API, verbatim.
//!
//! | Paper API | Description (paper wording) | Here |
//! |---|---|---|
//! | `client_send(server_id, local_buf, size)` | client sends message (kept in `local_buf`) to server's memory through RDMA-write | [`client_send`] |
//! | `client_recv(server_id, local_buf)` | client remotely fetches message from server's memory into `local_buf` through RDMA-read | [`client_recv`] |
//! | `server_send(client_id, local_buf, size)` | server puts message for client into `local_buf` | [`server_send`] |
//! | `server_recv(client_id, local_buf)` | server receives message from `local_buf` | [`server_recv`] |
//! | `malloc_buf(size)` | allocate local buffers that are registered in the RNIC | [`malloc_buf`] |
//! | `free_buf(local_buf)` | free `local_buf` | [`free_buf`] |
//!
//! The idiomatic interface ([`RfpClient`], [`RfpServerConn`]) is a thin
//! layer over the same machinery; this module restates it in the exact
//! socket-like shape the paper advertises, so a port of an RPC layer
//! written against Table 2 maps one-to-one. The `server_id` /
//! `client_id` of the paper are connection handles here (a connection
//! *is* the registered ⟨client, server⟩ buffer pair).
//!
//! # Examples
//!
//! ```
//! use std::rc::Rc;
//! use rfp_core::api::{client_recv, client_send, free_buf, malloc_buf, server_recv, server_send};
//! use rfp_core::{connect, RfpConfig};
//! use rfp_rnic::{Cluster, ClusterProfile};
//! use rfp_simnet::{SimSpan, Simulation};
//!
//! let mut sim = Simulation::new(0);
//! let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
//! let (cm, sm) = (cluster.machine(0), cluster.machine(1));
//! let (client, server) =
//!     connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), RfpConfig::default());
//! let server = Rc::new(server);
//!
//! // Server side, Table 2 style.
//! let st = sm.thread("server");
//! let sc = Rc::clone(&server);
//! sim.spawn(async move {
//!     let mut local_buf = malloc_buf(4096);
//!     loop {
//!         if let Some(size) = server_recv(&sc, &st, &mut local_buf).await {
//!             local_buf[..size].reverse();
//!             server_send(&sc, &st, &local_buf, size).await;
//!         } else {
//!             st.busy(SimSpan::nanos(100)).await;
//!         }
//!     }
//! });
//!
//! // Client side.
//! let ct = cm.thread("client");
//! sim.spawn(async move {
//!     let mut local_buf = malloc_buf(4096);
//!     local_buf[..4].copy_from_slice(b"ping");
//!     client_send(&client, &ct, &local_buf, 4).await;
//!     let size = client_recv(&client, &ct, &mut local_buf).await;
//!     assert_eq!(&local_buf[..size], b"gnip");
//!     free_buf(local_buf);
//! });
//! sim.run_for(SimSpan::millis(1));
//! ```

use rfp_rnic::ThreadCtx;

use crate::client::RfpClient;
use crate::conn::RfpServerConn;

/// A registered message buffer (the paper's `local_buf`).
///
/// In the simulation, "registering with the RNIC" has no separate cost
/// model — memory regions are registered at connection setup — so the
/// buffer is plain owned memory whose contents are staged into the
/// connection's registered regions by the send/recv calls.
pub type LocalBuf = Vec<u8>;

/// `malloc_buf(size)`: allocate a local buffer registered for RDMA.
pub fn malloc_buf(size: usize) -> LocalBuf {
    vec![0; size]
}

/// `free_buf(local_buf)`: free a buffer from [`malloc_buf`].
pub fn free_buf(local_buf: LocalBuf) {
    drop(local_buf);
}

/// `client_send`: sends the first `size` bytes of `local_buf` into the
/// server's request memory through RDMA-write.
///
/// # Panics
///
/// Panics if `size` exceeds `local_buf` or the connection's request
/// capacity.
pub async fn client_send(
    client: &RfpClient,
    thread: &ThreadCtx,
    local_buf: &LocalBuf,
    size: usize,
) {
    client.send(thread, &local_buf[..size]).await;
}

/// `client_recv`: remotely fetches the response into `local_buf`
/// (repeated remote fetching, with the hybrid fallback); returns its
/// size.
///
/// # Panics
///
/// Panics if the response exceeds `local_buf`.
pub async fn client_recv(
    client: &RfpClient,
    thread: &ThreadCtx,
    local_buf: &mut LocalBuf,
) -> usize {
    let out = client.recv(thread).await;
    assert!(
        out.data.len() <= local_buf.len(),
        "response exceeds local_buf"
    );
    local_buf[..out.data.len()].copy_from_slice(&out.data);
    out.data.len()
}

/// `server_recv`: checks for a newly arrived request, copying it into
/// `local_buf`; returns its size if one arrived.
///
/// # Panics
///
/// Panics if the request exceeds `local_buf`.
pub async fn server_recv(
    conn: &RfpServerConn,
    thread: &ThreadCtx,
    local_buf: &mut LocalBuf,
) -> Option<usize> {
    let req = conn.try_recv(thread).await?;
    assert!(req.len() <= local_buf.len(), "request exceeds local_buf");
    local_buf[..req.len()].copy_from_slice(&req);
    Some(req.len())
}

/// `server_send`: posts the first `size` bytes of `local_buf` as the
/// response — into the server's local response buffer only (the client
/// fetches it), unless the connection has switched to server-reply.
pub async fn server_send(
    conn: &RfpServerConn,
    thread: &ThreadCtx,
    local_buf: &LocalBuf,
    size: usize,
) {
    conn.send(thread, &local_buf[..size]).await;
}
