//! Online parameter tuning.
//!
//! §3.2 offers two ways to gather the `M` result samples that feed the
//! Equation-2 enumeration: "pre-running it for a certain time or
//! **sampling periodically during its run**". [`ParamSelector::select`]
//! covers the pre-run; this module covers the online path: an
//! [`OnlineTuner`] observes every completed call's result size and
//! server-reported process time, and periodically re-runs the selection,
//! pushing fresh `(R, F)` into the client when the optimum moves — so a
//! workload whose result sizes drift (say, values growing from 32 B to
//! 700 B) stops paying a second READ per call without operator action.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use rfp_simnet::SimSpan;

use crate::client::{CallResult, RfpClient};
use crate::params::{ParamSelector, Params, WorkloadSample};

/// Sliding-window sampler that re-selects `(R, F)` periodically.
pub struct OnlineTuner {
    selector: ParamSelector,
    /// Size of the sliding sample window (the paper's `M`).
    window: usize,
    /// Re-run the selection every this many observed calls.
    reselect_every: u64,
    /// Concurrent client threads assumed by the throughput model.
    client_threads: usize,
    /// Request payload size assumed by the model.
    request_size: usize,
    sizes: RefCell<VecDeque<usize>>,
    /// Exponentially-weighted mean of the server process time, in ns.
    ewma_p_ns: Cell<f64>,
    observed: Cell<u64>,
    retunes: Cell<u64>,
    current: Cell<Option<Params>>,
}

impl OnlineTuner {
    /// Creates a tuner re-selecting every `reselect_every` calls over a
    /// `window`-sample history.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `reselect_every` is zero.
    pub fn new(
        selector: ParamSelector,
        window: usize,
        reselect_every: u64,
        client_threads: usize,
        request_size: usize,
    ) -> Self {
        assert!(window > 0, "sample window must be positive");
        assert!(reselect_every > 0, "reselect period must be positive");
        OnlineTuner {
            selector,
            window,
            reselect_every,
            client_threads,
            request_size,
            sizes: RefCell::new(VecDeque::with_capacity(window)),
            ewma_p_ns: Cell::new(0.0),
            observed: Cell::new(0),
            retunes: Cell::new(0),
            current: Cell::new(None),
        }
    }

    /// Calls observed so far.
    pub fn observed(&self) -> u64 {
        self.observed.get()
    }

    /// Times a re-selection actually changed the parameters.
    pub fn retunes(&self) -> u64 {
        self.retunes.get()
    }

    /// The last selected parameters, if a selection has run.
    pub fn current(&self) -> Option<Params> {
        self.current.get()
    }

    /// Feeds one completed call; re-selects and applies new parameters
    /// to `client` when the period elapses and the optimum moved.
    /// Returns the new parameters when a retune happened.
    pub fn observe(&self, client: &RfpClient, result: &CallResult) -> Option<Params> {
        {
            let mut sizes = self.sizes.borrow_mut();
            if sizes.len() == self.window {
                sizes.pop_front();
            }
            sizes.push_back(result.data.len());
        }
        // EWMA over the server-reported time; α = 1/64 smooths the
        // 1 µs quantisation of the 16-bit field.
        let p_ns = result.info.server_time_us as f64 * 1_000.0;
        let prev = self.ewma_p_ns.get();
        self.ewma_p_ns.set(if self.observed.get() == 0 {
            p_ns
        } else {
            prev + (p_ns - prev) / 64.0
        });

        let n = self.observed.get() + 1;
        self.observed.set(n);
        if !n.is_multiple_of(self.reselect_every) {
            return None;
        }

        let sample = WorkloadSample {
            result_sizes: self.sizes.borrow().iter().copied().collect(),
            process_time: SimSpan::from_nanos_f64(self.ewma_p_ns.get()),
            request_size: self.request_size,
            client_threads: self.client_threads,
        };
        let picked = self.selector.select(&sample);
        self.apply(client, picked)
    }

    /// Feeds one rolling-window health report (the health plane's
    /// per-connection view) and re-selects immediately from its recent
    /// result sizes and mean process time — the fleet-operation path:
    /// a monitor task polls [`HealthHub::report`] and retunes each
    /// connection from live signals instead of per-call callbacks.
    /// Returns the new parameters when a retune happened.
    ///
    /// [`HealthHub::report`]: rfp_simnet::HealthHub::report
    pub fn observe_health(
        &self,
        client: &RfpClient,
        report: &rfp_simnet::ConnHealthReport,
    ) -> Option<Params> {
        if report.result_sizes.is_empty() {
            return None;
        }
        let sample = WorkloadSample {
            result_sizes: report.result_sizes.clone(),
            process_time: SimSpan::from_nanos_f64(report.mean_process_ns),
            request_size: self.request_size,
            client_threads: self.client_threads,
        };
        let picked = self.selector.select(&sample);
        self.apply(client, picked)
    }

    /// Applies `picked` to `client` when it differs from the current
    /// selection (shared by the per-call and health-report paths).
    fn apply(&self, client: &RfpClient, picked: Params) -> Option<Params> {
        let changed = self.current.get() != Some(picked);
        self.current.set(Some(picked));
        if changed {
            // Clamp F to what the connection's buffers can carry.
            let f = picked.f.min(client.max_fetch_size());
            client.set_params(picked.r, f);
            self.retunes.set(self.retunes.get() + 1);
            Some(Params { r: picked.r, f })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_rnic::{LinkProfile, NicProfile};

    fn selector() -> ParamSelector {
        ParamSelector::new(NicProfile::connectx3_40g(), LinkProfile::infiniscale())
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = OnlineTuner::new(selector(), 0, 10, 35, 64);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = OnlineTuner::new(selector(), 10, 0, 35, 64);
    }
}
