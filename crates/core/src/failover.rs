//! Replica-aware call routing: failover across a static replica list,
//! plus the gray-failure mitigations of DESIGN.md §16 (health-scored
//! routing, hedged reads, retry budgets) — all dormant until
//! [`GrayConfig::enabled`] is set.
//!
//! A replicated service exposes the same RPC endpoint on every replica;
//! the client keeps one established [`RfpClient`] connection per
//! replica and routes calls to the **active** one. When a call exhausts
//! its recovery budget with a fault-shaped failure (verb error, expired
//! deadline, corrupt fetches, or an epoch fence it could not heal), the
//! router advances to the next replica in the list and resubmits there.
//!
//! Two rules keep failover safe:
//!
//! * **overload is not failure** — a `Busy`/`Shed` verdict means the
//!   replica is alive and pushing back; failing over would stampede the
//!   backup with the very load the primary just refused, so the
//!   rejection is surfaced to the caller instead;
//! * **epochs only rise** — the router carries the highest replication
//!   epoch any replica has taught it ([`RfpClient::known_epoch`]) into
//!   every connection it activates, so a deposed primary (still serving
//!   the old epoch) can produce nothing the router will accept: its
//!   responses are stamped below the known epoch and ignored, the call
//!   times out, and the router moves on.
//!
//! Resubmitting a write on a different replica can execute it twice
//! (the first replica may have applied it before dying without acking).
//! The router does not hide that: like the recovery loop's replays, it
//! relies on the application making its writes idempotent — the
//! key-value rigs do so by writing each version's full value, so a
//! double-applied PUT is indistinguishable from a single one.
//!
//! # Gray failures
//!
//! Crash failover never fires against a replica that is merely *slow*:
//! every call eventually completes, so nothing errors. With
//! [`GrayConfig::enabled`], the router adds three mitigations on top of
//! the crash path:
//!
//! * **scored routing** ([`ReplicaScorer`]) — each routed read folds
//!   the replicas' rolling health windows into scores; a replica
//!   falling below [`GrayConfig::demote_below`] is demoted (with a
//!   `routing.demote` flight-recorder entry carrying the triggering
//!   window's evidence) and reads divert to the best-scoring peer,
//!   save a probe every [`GrayConfig::probe_every`]-th call and a
//!   score-proportional trickle. A demotion never strands the router:
//!   with every candidate gray, traffic stays put.
//! * **hedged reads** ([`ReplicaClient::call_hedged`]) — a read still
//!   unanswered after the healthy-baseline p99 × a factor races a
//!   second leg on another replica; first valid response wins. Hedges
//!   ride the same-seq dedup and epoch fencing of the recovery layer,
//!   so an abandoned leg can neither double-apply nor surface stale
//!   bytes (its late response fails the seq acceptance check).
//! * **retry budget** ([`RetryBudget`]) — retries, hedge legs, and
//!   failover switches draw from one per-router token bucket refilled
//!   by successes; a dry bucket degrades to fail-fast (first attempts
//!   are never gated), bounding retry-storm amplification.
//!
//! Mutations always anchor on the active replica — standbys refuse
//! them — so scored routing and hedging apply to the read path
//! (`call_hedged`); `call` keeps the crash-failover contract.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_rnic::ThreadCtx;
use rfp_simnet::SimSpan;

use crate::client::{CallResult, HedgeTicket, RfpClient};
use crate::gray::{GrayConfig, ReplicaScorer, RetryBudget};
use crate::header::RespStatus;
use crate::recovery::{FailureCause, RecoveryConfig, RpcError};

/// Share of traffic a demoted replica keeps per unit of score — the
/// probabilistic de-preference trickle. Small enough that a demoted
/// replica cannot re-poison the routed tail (worst case 0.5% of reads
/// at a score just under the default threshold).
const DEPREF_KEEP_PER_SCORE: f64 = 0.01;

/// Tunables of the replica router.
#[derive(Clone, Debug)]
pub struct FailoverConfig {
    /// Recovery policy (per-attempt deadline, backoff, reconnect)
    /// applied on whichever replica is active.
    pub recovery: RecoveryConfig,
    /// Replica switches one logical call may make before giving up and
    /// surfacing the last error. A full tour of `n` replicas needs
    /// `n - 1`; the default allows a second tour so a replica that
    /// heals mid-call is retried.
    pub max_failovers: u32,
    /// Gray-failure mitigations (disabled by default; the router is
    /// then byte-identical to one without the subsystem).
    pub gray: GrayConfig,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            recovery: RecoveryConfig::default(),
            max_failovers: 4,
            gray: GrayConfig::default(),
        }
    }
}

/// Routes fault-tolerant calls across a static list of replicas.
///
/// Replica 0 is the deployment's designated primary; the router starts
/// there and only moves on observed failure, so a healthy run is
/// event-identical to calling the primary's [`RfpClient`] directly.
pub struct ReplicaClient {
    replicas: Vec<Rc<RfpClient>>,
    active: Cell<usize>,
    failovers: Cell<u64>,
    cfg: FailoverConfig,
    /// Per-replica health scores against frozen healthy baselines.
    scorer: ReplicaScorer,
    /// Retry/hedge/failover token bucket.
    budget: RetryBudget,
    /// Sticky demotion flags (cleared when a probe scores healthy).
    demoted: Vec<Cell<bool>>,
    /// Routed-read counter driving the probe cadence.
    route_clock: Cell<u64>,
    /// De-preference draw stream — private, never the simulation RNG,
    /// and touched only while a demotion is in force.
    depref_rng: RefCell<StdRng>,
    /// Consecutive failed calls. Scales the next call's backoff base
    /// (gray mode only) and — the failover-reset fix — is cleared by
    /// **any** success, including the first one completed on a freshly
    /// failed-over replica, so a healed deployment does not keep
    /// paying escalated backoffs.
    fail_streak: Cell<u32>,
    hedges_issued: Cell<u64>,
    hedges_won: Cell<u64>,
    hedges_wasted: Cell<u64>,
}

impl ReplicaClient {
    /// Builds a router over `replicas` (in preference order; index 0 is
    /// the designated primary).
    ///
    /// # Panics
    ///
    /// Panics on an empty replica list.
    pub fn new(replicas: Vec<Rc<RfpClient>>, cfg: FailoverConfig) -> Self {
        assert!(!replicas.is_empty(), "router needs at least one replica");
        let scorer = ReplicaScorer::new(cfg.gray.scorer.clone(), replicas.len());
        let budget = RetryBudget::new(cfg.gray.budget.clone());
        let demoted = replicas.iter().map(|_| Cell::new(false)).collect();
        let depref_rng = RefCell::new(StdRng::seed_from_u64(cfg.gray.seed));
        ReplicaClient {
            replicas,
            active: Cell::new(0),
            failovers: Cell::new(0),
            cfg,
            scorer,
            budget,
            demoted,
            route_clock: Cell::new(0),
            depref_rng,
            fail_streak: Cell::new(0),
            hedges_issued: Cell::new(0),
            hedges_won: Cell::new(0),
            hedges_wasted: Cell::new(0),
        }
    }

    /// Index of the replica currently serving this router's calls.
    pub fn active(&self) -> usize {
        self.active.get()
    }

    /// Replica switches made over this router's lifetime.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Highest replication epoch any replica has taught this router.
    pub fn known_epoch(&self) -> u16 {
        self.replicas
            .iter()
            .map(|c| c.known_epoch())
            .max()
            .unwrap_or(0)
    }

    /// The active replica's connection.
    pub fn client(&self) -> &Rc<RfpClient> {
        &self.replicas[self.active.get()]
    }

    /// The router's retry/hedge token bucket.
    pub fn budget(&self) -> &RetryBudget {
        &self.budget
    }

    /// The router's replica health scorer.
    pub fn scorer(&self) -> &ReplicaScorer {
        &self.scorer
    }

    /// Whether replica `i` is currently demoted by scored routing.
    pub fn is_demoted(&self, i: usize) -> bool {
        self.demoted[i].get()
    }

    /// `(issued, won, wasted)` hedge-leg counts over the router's
    /// lifetime. `issued = won + wasted` once no hedge is in flight
    /// and none were abandoned to a fallback.
    pub fn hedges(&self) -> (u64, u64, u64) {
        (
            self.hedges_issued.get(),
            self.hedges_won.get(),
            self.hedges_wasted.get(),
        )
    }

    /// Consecutive failed calls (escalated-backoff state; 0 after any
    /// success).
    pub fn fail_streak(&self) -> u32 {
        self.fail_streak.get()
    }

    /// One call attempt on replica `idx` under the (budget-capped,
    /// streak-scaled) recovery policy, with the budget and streak
    /// bookkeeping on both outcomes. With gray mode off this is
    /// exactly the pre-gray router body: epoch seed + one
    /// `call_with_recovery` under the configured policy.
    async fn attempt_on(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
        idx: usize,
    ) -> Result<CallResult, RpcError> {
        let client = &self.replicas[idx];
        // Seed the connection with the fleet-wide epoch before every
        // attempt: a replica learns of a promotion it slept through the
        // moment the router returns to it.
        let epoch = self.known_epoch();
        if client.known_epoch() < epoch {
            client.set_epoch(epoch);
        }
        if !self.cfg.gray.enabled {
            return client
                .call_with_recovery(thread, req, &self.cfg.recovery)
                .await;
        }
        // Budget-capped retries: the call reserves its retry allowance
        // up front; the first attempt is never gated.
        let want = self.cfg.recovery.retry.max_attempts.saturating_sub(1);
        let budget_on = self.cfg.gray.budget.enabled;
        let granted = if budget_on {
            self.budget.reserve(want)
        } else {
            want
        };
        let mut rec = self.cfg.recovery.clone();
        rec.retry.max_attempts = granted + 1;
        let streak = self.fail_streak.get();
        if streak > 0 {
            // Escalate the backoff base while failures persist across
            // calls (2x per consecutive failure, saturating at the
            // policy cap after three).
            let shift = streak.min(3);
            let scaled = rec.retry.base.as_nanos().saturating_mul(1 << shift);
            rec.retry.base = SimSpan::nanos(scaled.min(rec.retry.cap.as_nanos()));
        }
        if budget_on && granted < want {
            client.note_recovery(
                thread,
                "recovery.budget_capped",
                &format!("retry budget granted {granted}/{want} retries"),
            );
        }
        match client.call_with_recovery(thread, req, &rec).await {
            Ok(out) => {
                if budget_on {
                    // A successful call returns its whole reservation:
                    // the budget charges only calls that exhaust
                    // recovery — the storm contributors.
                    self.budget.refund(granted);
                    self.budget.on_success();
                }
                self.fail_streak.set(0);
                Ok(out)
            }
            Err(err) => {
                if budget_on {
                    // `err.attempts` counts attempts performed; the
                    // retries actually spent stay consumed.
                    self.budget
                        .refund(granted.saturating_sub(err.attempts.saturating_sub(1)));
                }
                self.fail_streak
                    .set(self.fail_streak.get().saturating_add(1));
                Err(err)
            }
        }
    }

    /// One replicated RPC: calls the active replica under the recovery
    /// policy, rotating to the next replica after each fault-shaped
    /// failure (up to [`FailoverConfig::max_failovers`] switches).
    pub async fn call(&self, thread: &ThreadCtx, req: &[u8]) -> Result<CallResult, RpcError> {
        let mut switches = 0u32;
        loop {
            let idx = self.active.get();
            match self.attempt_on(thread, req, idx).await {
                Ok(out) => return Ok(out),
                Err(err) => {
                    let overloaded = matches!(
                        err.last,
                        FailureCause::Rejected(RespStatus::Busy | RespStatus::Shed)
                    );
                    if overloaded || switches >= self.cfg.max_failovers {
                        return Err(err);
                    }
                    // A failover switch resubmits elsewhere — it draws
                    // a token like any other retry so a storm cannot
                    // amplify through rotation.
                    if self.cfg.gray.enabled
                        && self.cfg.gray.budget.enabled
                        && self.budget.reserve(1) == 0
                    {
                        self.replicas[idx].note_recovery(
                            thread,
                            "recovery.budget_denied",
                            "retry budget dry; surfacing instead of failing over",
                        );
                        return Err(err);
                    }
                    switches += 1;
                    let next = (idx + 1) % self.replicas.len();
                    self.failovers.set(self.failovers.get() + 1);
                    self.replicas[idx].note_failover(
                        thread,
                        format!("replica {idx} -> {next} after {:?}", err.last),
                    );
                    self.active.set(next);
                }
            }
        }
    }

    /// Refreshes every replica's health score and demotion flag.
    /// Pure bookkeeping — report folding and `Cell` flips, no wire
    /// traffic — so routing decisions never perturb event timing.
    fn refresh_scores(&self, thread: &ThreadCtx) -> Vec<Option<f64>> {
        let now = thread.now();
        (0..self.replicas.len())
            .map(|i| {
                let client = &self.replicas[i];
                let health = client.conn_health()?;
                let report = health.report(now);
                let score = self.scorer.score(i, &report)?;
                let was = self.demoted[i].get();
                if score < self.cfg.gray.demote_below && !was {
                    self.demoted[i].set(true);
                    client.note_recovery(
                        thread,
                        "routing.demote",
                        &format!(
                            "replica {i} demoted: score {score:.2} \
                             (window p99 {}ns vs baseline {}ns over {} calls, \
                             retry rate {:.2}, {} credit waits)",
                            report.p99_ns,
                            self.scorer.baseline_p99(i).unwrap_or(0),
                            report.calls,
                            report.retry_rate,
                            report.credit_waits
                        ),
                    );
                } else if score >= self.cfg.gray.demote_below && was {
                    self.demoted[i].set(false);
                    client.note_recovery(
                        thread,
                        "routing.restore",
                        &format!(
                            "replica {i} restored: score {score:.2} (window p99 {}ns)",
                            report.p99_ns
                        ),
                    );
                }
                Some(score)
            })
            .collect()
    }

    /// Picks `(target, hedge_target)` for one read. Without scored
    /// routing this is `(active, next)`; with it, a demoted active
    /// replica diverts reads to the best-scoring peer — except for a
    /// recovery probe every [`GrayConfig::probe_every`]-th routed read
    /// and a score-proportional trickle.
    fn route_read(&self, thread: &ThreadCtx) -> (usize, usize) {
        let pref = self.active.get();
        let n = self.replicas.len();
        let alt_default = (pref + 1) % n;
        if !self.cfg.gray.enabled || !self.cfg.gray.scored_routing || n < 2 {
            return (pref, alt_default);
        }
        let scores = self.refresh_scores(thread);
        let mut alt = alt_default;
        let mut alt_score = f64::NEG_INFINITY;
        for (i, s) in scores.iter().enumerate() {
            if i == pref {
                continue;
            }
            // An unscored replica is assumed healthy: never strand the
            // router for lack of evidence.
            let s = s.unwrap_or(1.0);
            if s > alt_score {
                alt = i;
                alt_score = s;
            }
        }
        if !self.demoted[pref].get() {
            return (pref, alt);
        }
        if self.demoted[alt].get() {
            // Never demote below one live replica: with every candidate
            // gray, traffic stays put.
            return (pref, alt);
        }
        let tick = self.route_clock.get();
        self.route_clock.set(tick + 1);
        let g = &self.cfg.gray;
        if g.probe_every > 0 && tick.is_multiple_of(g.probe_every as u64) {
            self.replicas[pref].note_recovery(
                thread,
                "routing.probe",
                &format!("probing demoted replica {pref} for recovery"),
            );
            return (pref, alt);
        }
        let keep = scores[pref].unwrap_or(0.0).max(0.0) * DEPREF_KEEP_PER_SCORE;
        let draw: f64 = self.depref_rng.borrow_mut().gen();
        if draw < keep {
            (pref, alt)
        } else {
            (alt, pref)
        }
    }

    /// Hedge delay for a read whose primary leg runs on replica `idx`:
    /// the frozen healthy-baseline p99 × [`GrayConfig::hedge_p99_factor`]
    /// (a request still unanswered past the latency 99% of healthy
    /// calls beat is likely stuck behind a gray path), floored at
    /// [`GrayConfig::hedge_floor`], which also covers the pre-baseline
    /// cold start.
    fn hedge_delay(&self, thread: &ThreadCtx, idx: usize) -> SimSpan {
        let g = &self.cfg.gray;
        let p99 = self.scorer.baseline_p99(idx).or_else(|| {
            self.replicas[idx]
                .conn_health()
                .map(|h| h.report(thread.now()).p99_ns)
                .filter(|&p| p > 0)
        });
        match p99 {
            Some(ns) => g
                .hedge_floor
                .max(SimSpan::from_nanos_f64(ns as f64 * g.hedge_p99_factor)),
            None => g.hedge_floor,
        }
    }

    /// One replicated **read** under the gray-failure mitigations:
    /// scored routing picks the leg, and with hedging enabled a second
    /// leg races on the best-scoring peer after the health-derived
    /// hedge delay; the first valid response wins.
    ///
    /// Safety of the race (the reason this is the *read* path):
    ///
    /// * both legs carry fresh per-connection sequence numbers; the
    ///   losing leg is abandoned, and its late response fails the
    ///   next call's seq acceptance check — stale bytes never surface;
    /// * a hedged mutation cannot double-apply: the primary dedups
    ///   same-seq resubmits and a standby refuses mutations outright
    ///   (`Busy`) without executing them, while epoch fencing keeps a
    ///   deposed primary's answers unacceptable;
    /// * hedge legs draw from the retry budget, so hedging degrades to
    ///   single-leg reads when the pool is dry.
    ///
    /// With the subsystem disabled this delegates to
    /// [`call`](ReplicaClient::call) untouched.
    pub async fn call_hedged(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
    ) -> Result<CallResult, RpcError> {
        let g = &self.cfg.gray;
        if !g.enabled || self.replicas.len() < 2 {
            return self.call(thread, req).await;
        }
        let (first, second) = self.route_read(thread);
        // Hedging toward a replica scored *worse* than the serving leg
        // cannot help: once routing has demoted the gray peer, the
        // routed leg already is the healthy one, and a hedge deposit
        // against the gray peer would serialize its inflated wire
        // latency straight into this call. Degrade to a plain routed
        // read until the peer recovers (probes, whose serving leg IS
        // the demoted replica, still hedge toward the healthy peer).
        let hedge_to_gray = self.demoted[second].get() && !self.demoted[first].get();
        if !g.hedging || hedge_to_gray {
            // Scored routing only: one leg on the routed replica; any
            // failure falls back to the crash-failover path anchored
            // on the active replica.
            match self.attempt_on(thread, req, first).await {
                Ok(out) => return Ok(out),
                Err(err) => {
                    let overloaded = matches!(
                        err.last,
                        FailureCause::Rejected(RespStatus::Busy | RespStatus::Shed)
                    );
                    if overloaded && first == self.active.get() {
                        return Err(err);
                    }
                    self.replicas[first].note_recovery(
                        thread,
                        "routing.fallback",
                        &format!("routed read on replica {first} failed ({:?})", err.last),
                    );
                    return self.call(thread, req).await;
                }
            }
        }
        let t0 = thread.now();
        let epoch = self.known_epoch();
        let a = &self.replicas[first];
        if a.known_epoch() < epoch {
            a.set_epoch(epoch);
        }
        let deadline = t0 + g.hedge_deadline;
        let hedge_at = t0 + self.hedge_delay(thread, first);
        let b_client = &self.replicas[second];
        let mut last = FailureCause::Deadline;
        let mut fetches = 0u32;
        let mut leg_a: Option<HedgeTicket> = match a.hedge_deposit(thread, req).await {
            Ok(t) => Some(t),
            Err(c) => {
                last = c;
                None
            }
        };
        let mut leg_b: Option<HedgeTicket> = None;
        let mut b_dead = false;
        let mut hedge_denied = false;
        loop {
            // Issue the hedge leg once its delay elapses (or at once if
            // the primary leg died at deposit).
            if leg_b.is_none()
                && !b_dead
                && !hedge_denied
                && (thread.now() >= hedge_at || leg_a.is_none())
            {
                if self.budget.reserve(1) == 1 {
                    if b_client.known_epoch() < epoch {
                        b_client.set_epoch(epoch);
                    }
                    match b_client.hedge_deposit(thread, req).await {
                        Ok(t) => {
                            self.hedges_issued.set(self.hedges_issued.get() + 1);
                            b_client.note_recovery(
                                thread,
                                "recovery.hedge.issued",
                                &format!(
                                    "hedging replica {first} -> {second} after {:?}",
                                    thread.now() - t0
                                ),
                            );
                            leg_b = Some(t);
                        }
                        Err(c) => {
                            last = c;
                            b_dead = true;
                        }
                    }
                } else {
                    b_client.note_recovery(
                        thread,
                        "recovery.hedge.denied",
                        "retry budget dry; hedge leg not issued",
                    );
                    hedge_denied = true;
                }
            }
            if let Some(mut t) = leg_a.take() {
                match a.hedge_poll(thread, &mut t).await {
                    Ok(Some(mut out)) => {
                        fetches += t.fetches;
                        // Book this leg's health with *its own* latency
                        // and fetch count; charging it for time the
                        // race spent blocked on the other (possibly
                        // gray) leg would poison a healthy replica's
                        // score. The caller still sees the end-to-end
                        // race latency.
                        out.info.latency = thread.now() - t.deposited_at;
                        out.info.attempts = t.fetches;
                        a.book_routed_call(thread, &out);
                        out.info.latency = thread.now() - t0;
                        out.info.attempts = fetches;
                        if leg_b.is_some() {
                            self.hedges_wasted.set(self.hedges_wasted.get() + 1);
                            a.note_recovery(
                                thread,
                                "recovery.hedge.wasted",
                                "primary leg won after the hedge was issued",
                            );
                        }
                        self.budget.on_success();
                        self.fail_streak.set(0);
                        return Ok(out);
                    }
                    Ok(None) => leg_a = Some(t),
                    Err(c) => {
                        last = c;
                        fetches += t.fetches;
                    }
                }
            }
            if let Some(mut t) = leg_b.take() {
                match b_client.hedge_poll(thread, &mut t).await {
                    Ok(Some(mut out)) => {
                        fetches += t.fetches;
                        // Leg-local booking, as on the primary leg: the
                        // hedge leg's health must not absorb the gray
                        // leg's stall.
                        out.info.latency = thread.now() - t.deposited_at;
                        out.info.attempts = t.fetches;
                        b_client.book_routed_call(thread, &out);
                        out.info.latency = thread.now() - t0;
                        out.info.attempts = fetches;
                        self.hedges_won.set(self.hedges_won.get() + 1);
                        b_client.note_recovery(
                            thread,
                            "recovery.hedge.won",
                            &format!("hedge leg on replica {second} beat replica {first}"),
                        );
                        self.budget.on_success();
                        self.fail_streak.set(0);
                        return Ok(out);
                    }
                    Ok(None) => leg_b = Some(t),
                    Err(c) => {
                        last = c;
                        fetches += t.fetches;
                        b_dead = true;
                    }
                }
            }
            let stuck = leg_a.is_none() && leg_b.is_none() && (b_dead || hedge_denied);
            if stuck || thread.now() >= deadline {
                break;
            }
        }
        // Both legs dead or the hedge deadline expired: fall back to
        // the plain failover loop (fresh seq, budget-gated retries), so
        // a crash mid-hedge still converges like an unhedged call.
        self.fail_streak
            .set(self.fail_streak.get().saturating_add(1));
        self.client().note_recovery(
            thread,
            "recovery.hedge.fallback",
            &format!(
                "hedged call gave up after {:?} ({last:?}); falling back to the failover path",
                thread.now() - t0
            ),
        );
        self.call(thread, req).await
    }
}
