//! Replica-aware call routing: failover across a static replica list.
//!
//! A replicated service exposes the same RPC endpoint on every replica;
//! the client keeps one established [`RfpClient`] connection per
//! replica and routes calls to the **active** one. When a call exhausts
//! its recovery budget with a fault-shaped failure (verb error, expired
//! deadline, corrupt fetches, or an epoch fence it could not heal), the
//! router advances to the next replica in the list and resubmits there.
//!
//! Two rules keep failover safe:
//!
//! * **overload is not failure** — a `Busy`/`Shed` verdict means the
//!   replica is alive and pushing back; failing over would stampede the
//!   backup with the very load the primary just refused, so the
//!   rejection is surfaced to the caller instead;
//! * **epochs only rise** — the router carries the highest replication
//!   epoch any replica has taught it ([`RfpClient::known_epoch`]) into
//!   every connection it activates, so a deposed primary (still serving
//!   the old epoch) can produce nothing the router will accept: its
//!   responses are stamped below the known epoch and ignored, the call
//!   times out, and the router moves on.
//!
//! Resubmitting a write on a different replica can execute it twice
//! (the first replica may have applied it before dying without acking).
//! The router does not hide that: like the recovery loop's replays, it
//! relies on the application making its writes idempotent — the
//! key-value rigs do so by writing each version's full value, so a
//! double-applied PUT is indistinguishable from a single one.

use std::cell::Cell;
use std::rc::Rc;

use rfp_rnic::ThreadCtx;

use crate::client::{CallResult, RfpClient};
use crate::header::RespStatus;
use crate::recovery::{FailureCause, RecoveryConfig, RpcError};

/// Tunables of the replica router.
#[derive(Clone, Debug)]
pub struct FailoverConfig {
    /// Recovery policy (per-attempt deadline, backoff, reconnect)
    /// applied on whichever replica is active.
    pub recovery: RecoveryConfig,
    /// Replica switches one logical call may make before giving up and
    /// surfacing the last error. A full tour of `n` replicas needs
    /// `n - 1`; the default allows a second tour so a replica that
    /// heals mid-call is retried.
    pub max_failovers: u32,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            recovery: RecoveryConfig::default(),
            max_failovers: 4,
        }
    }
}

/// Routes fault-tolerant calls across a static list of replicas.
///
/// Replica 0 is the deployment's designated primary; the router starts
/// there and only moves on observed failure, so a healthy run is
/// event-identical to calling the primary's [`RfpClient`] directly.
pub struct ReplicaClient {
    replicas: Vec<Rc<RfpClient>>,
    active: Cell<usize>,
    failovers: Cell<u64>,
    cfg: FailoverConfig,
}

impl ReplicaClient {
    /// Builds a router over `replicas` (in preference order; index 0 is
    /// the designated primary).
    ///
    /// # Panics
    ///
    /// Panics on an empty replica list.
    pub fn new(replicas: Vec<Rc<RfpClient>>, cfg: FailoverConfig) -> Self {
        assert!(!replicas.is_empty(), "router needs at least one replica");
        ReplicaClient {
            replicas,
            active: Cell::new(0),
            failovers: Cell::new(0),
            cfg,
        }
    }

    /// Index of the replica currently serving this router's calls.
    pub fn active(&self) -> usize {
        self.active.get()
    }

    /// Replica switches made over this router's lifetime.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Highest replication epoch any replica has taught this router.
    pub fn known_epoch(&self) -> u16 {
        self.replicas
            .iter()
            .map(|c| c.known_epoch())
            .max()
            .unwrap_or(0)
    }

    /// The active replica's connection.
    pub fn client(&self) -> &Rc<RfpClient> {
        &self.replicas[self.active.get()]
    }

    /// One replicated RPC: calls the active replica under the recovery
    /// policy, rotating to the next replica after each fault-shaped
    /// failure (up to [`FailoverConfig::max_failovers`] switches).
    pub async fn call(&self, thread: &ThreadCtx, req: &[u8]) -> Result<CallResult, RpcError> {
        // Seed the active connection with the fleet-wide epoch before
        // every call: a replica learns of a promotion it slept through
        // the moment the router returns to it.
        let epoch = self.known_epoch();
        let mut switches = 0u32;
        loop {
            let idx = self.active.get();
            let client = &self.replicas[idx];
            if client.known_epoch() < epoch {
                client.set_epoch(epoch);
            }
            match client
                .call_with_recovery(thread, req, &self.cfg.recovery)
                .await
            {
                Ok(out) => return Ok(out),
                Err(err) => {
                    let overloaded = matches!(
                        err.last,
                        FailureCause::Rejected(RespStatus::Busy | RespStatus::Shed)
                    );
                    if overloaded || switches >= self.cfg.max_failovers {
                        return Err(err);
                    }
                    switches += 1;
                    let next = (idx + 1) % self.replicas.len();
                    self.failovers.set(self.failovers.get() + 1);
                    client.note_failover(
                        thread,
                        format!("replica {idx} -> {next} after {:?}", err.last),
                    );
                    self.active.set(next);
                }
            }
        }
    }
}
