//! Fleet-scale connection multiplexing: many logical clients over few
//! physical connections.
//!
//! Every layer below this one assumes a *dedicated* connection per
//! client: its own slot ring, its own registered buffers, its own slice
//! of the server's scan. That is the paper's 8-machine shape, and it is
//! exactly what stops scaling at fleet sizes — QP state, registered
//! memory, and scan cost all grow linearly in clients even when almost
//! all of them are idle (RDMAvisor and Storm both measure this cliff).
//! RFP is unusually well placed to fix it: the server CPU is already in
//! the request path, so multiplexing is a lease table and a header
//! field, not a NIC feature.
//!
//! [`RfpMux`] virtualizes: N [`LogicalClient`] handles (stable tenant
//! ids) share M physical connections. A physical connection is
//! **leased** to at most one logical client at a time; the lease is
//! generation-stamped in the mux's table, so eviction is one counter
//! bump — the old holder's handle simply stops matching and it
//! re-acquires on its next call. Leases are sticky (a logical client
//! reuses its previous connection when idle) and evict LRU-idle under
//! pressure, dispensed strictly FIFO by the fixed [`Semaphore`]. An
//! idle logical client is two words in the holder's hand: zero ring
//! slots, zero registered bytes, zero scan work on the server — total
//! server cost is `O(M)` no matter how large N grows.
//!
//! On the server, [`shard_conns`] splits the physical connections into
//! P disjoint poller groups (EREW, like the per-thread partitioning the
//! serve loop already uses) and [`serve_loop_tenant`] runs one group
//! with per-tenant admission domains ([`TenantCredits`](crate::TenantCredits)): requests
//! carry their tenant in the extended header, the sweep charges each
//! verdict to that tenant's own queue share, and credit advertisements
//! reflect the sender's backlog only — one hot tenant collapses its own
//! credits to zero while cold tenants keep full admission. Per-tenant
//! health windows ride an ordinary [`HealthHub`] keyed by tenant id.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

use rfp_rnic::ThreadCtx;
use rfp_simnet::{
    Counter, Gauge, HealthHub, Histogram, MetricsRegistry, Semaphore, SemaphoreGuard,
};

use crate::client::{CallInfo, CallResult, RfpClient};
use crate::conn::{Mode, RfpServerConn};
use crate::header::RespStatus;
use crate::reactor::{CoreSpec, Reactor, ReactorConfig, ReactorPolicy};
use crate::recovery::{RecoveryConfig, RpcError};
use crate::server::IdlePolicy;
use crate::server::RfpHandler;

/// Stable tenant identity of a logical client. Many logical clients may
/// share one tenant (a tenant is an accounting/isolation domain, not a
/// connection).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Tunables of the multiplexing layer.
#[derive(Clone)]
pub struct MuxConfig {
    /// Upper bound on distinct physical QPs the mux'd connections may
    /// ride; [`RfpMux::new`] asserts it. The fleet design point is
    /// "≤ 64 QPs regardless of logical clients".
    pub max_physical_qps: usize,
    /// Stamp each request with the holder's tenant id (the 24-byte
    /// extended header). Off, the wire stays byte-identical to the
    /// dedicated-connection path — the M=N pin test rides on this.
    pub stamp_tenant: bool,
    /// Per-tenant health windows: tenant `t`'s calls are booked into
    /// this hub's connection `t`. `None` books nothing.
    pub tenant_health: Option<HealthHub>,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            max_physical_qps: 64,
            stamp_tenant: true,
            tenant_health: None,
        }
    }
}

/// Lease state of one physical connection.
struct PhysState {
    /// Logical client currently holding the lease, if any.
    holder: Cell<Option<u32>>,
    /// Lease generation: bumped every time the lease is (re)granted, so
    /// an evicted holder's `(conn, generation)` handle stops matching —
    /// the eviction itself costs the old holder nothing until its next
    /// call.
    generation: Cell<u64>,
    /// The connection is carrying a call right now.
    busy: Cell<bool>,
    /// The connection has an entry in the idle-lease queue (dedup flag;
    /// entries are removed lazily).
    queued: Cell<bool>,
}

/// Idle-connection bookkeeping: never-leased connections and the LRU
/// queue of idle leased ones (eviction order).
struct Avail {
    free: Vec<usize>,
    idle_leased: VecDeque<usize>,
}

/// Registry-backed mux instruments (see
/// [`attach_telemetry`](RfpMux::attach_telemetry)).
struct MuxInstruments {
    /// Time callers spent waiting for a physical connection.
    acquire_wait: Rc<Histogram>,
    /// Callers currently queued for a connection.
    queue_depth: Rc<Gauge>,
    /// Leases granted (fresh or moved).
    leases: Rc<Counter>,
    /// Leases revoked from an idle holder to serve another.
    evictions: Rc<Counter>,
    /// Sticky reuses (caller got its previous connection back).
    reuses: Rc<Counter>,
}

/// N logical clients multiplexed over M physical RFP connections.
pub struct RfpMux {
    clients: Vec<Rc<RfpClient>>,
    /// FIFO dispenser of "some connection is not busy" permits — the
    /// same fairness the pool has, over leased connections.
    sem: Semaphore,
    phys: Vec<PhysState>,
    avail: RefCell<Avail>,
    next_logical: Cell<u32>,
    cfg: MuxConfig,
    leases: Cell<u64>,
    evictions: Cell<u64>,
    reuses: Cell<u64>,
    waiting: Cell<i64>,
    instruments: RefCell<Option<MuxInstruments>>,
}

impl RfpMux {
    /// Builds a mux over the given physical connections.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty or the connections ride more than
    /// [`MuxConfig::max_physical_qps`] distinct QPs (physical
    /// connections are expected to *share* QP pairs per machine — a
    /// fresh QP per connection would defeat the point).
    pub fn new(clients: Vec<Rc<RfpClient>>, cfg: MuxConfig) -> Rc<Self> {
        assert!(!clients.is_empty(), "mux needs at least one connection");
        let qps: BTreeSet<usize> = clients
            .iter()
            .map(|c| Rc::as_ptr(&c.qp()) as usize)
            .collect();
        assert!(
            qps.len() <= cfg.max_physical_qps,
            "{} distinct QPs exceed the configured budget of {}",
            qps.len(),
            cfg.max_physical_qps
        );
        let m = clients.len();
        Rc::new(RfpMux {
            clients,
            sem: Semaphore::new(m),
            phys: (0..m)
                .map(|_| PhysState {
                    holder: Cell::new(None),
                    generation: Cell::new(0),
                    busy: Cell::new(false),
                    queued: Cell::new(false),
                })
                .collect(),
            avail: RefCell::new(Avail {
                free: (0..m).rev().collect(),
                idle_leased: VecDeque::new(),
            }),
            next_logical: Cell::new(0),
            cfg,
            leases: Cell::new(0),
            evictions: Cell::new(0),
            reuses: Cell::new(0),
            waiting: Cell::new(0),
            instruments: RefCell::new(None),
        })
    }

    /// Registers the mux's instruments under `prefix` (e.g. `"mux"`):
    /// `<prefix>.acquire_wait` (histogram), `<prefix>.queue_depth`
    /// (gauge), and the `<prefix>.leases` / `.evictions` / `.reuses`
    /// counters. Without this call the mux touches no registry at all.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry, prefix: &str) {
        *self.instruments.borrow_mut() = Some(MuxInstruments {
            acquire_wait: registry.histogram(&format!("{prefix}.acquire_wait")),
            queue_depth: registry.gauge(&format!("{prefix}.queue_depth")),
            leases: registry.counter(&format!("{prefix}.leases")),
            evictions: registry.counter(&format!("{prefix}.evictions")),
            reuses: registry.counter(&format!("{prefix}.reuses")),
        });
    }

    /// Creates a new logical client of `tenant`. This is the cheap
    /// operation the whole layer exists for: a handle and an id — no
    /// slots, no registered memory, no scan work until it calls.
    pub fn logical_client(self: &Rc<Self>, tenant: TenantId) -> LogicalClient {
        let id = self.next_logical.get();
        self.next_logical.set(id + 1);
        LogicalClient {
            mux: Rc::clone(self),
            id,
            tenant,
            lease: Cell::new(None),
        }
    }

    /// [`logical_client`](RfpMux::logical_client) with its lease
    /// pre-pinned to physical connection `phys` — the M=N configuration
    /// in which the mux reproduces the dedicated-connection path
    /// event-for-event (each logical client sticky-reuses its own
    /// connection forever; nothing is ever evicted).
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range or already leased.
    pub fn logical_client_pinned(self: &Rc<Self>, tenant: TenantId, phys: usize) -> LogicalClient {
        let lc = self.logical_client(tenant);
        let ph = &self.phys[phys];
        assert!(
            ph.holder.get().is_none(),
            "connection {phys} already leased"
        );
        {
            let mut avail = self.avail.borrow_mut();
            avail.free.retain(|&p| p != phys);
            avail.idle_leased.push_back(phys);
        }
        ph.holder.set(Some(lc.id));
        ph.generation.set(ph.generation.get() + 1);
        ph.queued.set(true);
        lc.lease.set(Some((phys, ph.generation.get())));
        self.leases.set(self.leases.get() + 1);
        if self.cfg.stamp_tenant {
            self.clients[phys].set_tenant(Some(tenant.0));
        }
        lc
    }

    /// Physical connections in the mux.
    pub fn physical(&self) -> usize {
        self.clients.len()
    }

    /// Logical clients created so far.
    pub fn logical_count(&self) -> u32 {
        self.next_logical.get()
    }

    /// Leases granted (fresh grants and moves; reuses not included).
    pub fn leases(&self) -> u64 {
        self.leases.get()
    }

    /// Leases revoked from idle holders to serve other logical clients.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Calls that sticky-reused the caller's previous connection.
    pub fn reuses(&self) -> u64 {
        self.reuses.get()
    }

    /// The physical connections (for stats aggregation).
    pub fn clients(&self) -> &[Rc<RfpClient>] {
        &self.clients
    }

    /// Total completed calls across the physical connections.
    pub fn total_calls(&self) -> u64 {
        self.clients.iter().map(|c| c.stats().calls()).sum()
    }

    /// Waits FIFO-fair for a connection, then binds (or rebinds) the
    /// caller's lease to it.
    async fn acquire(
        &self,
        thread: &ThreadCtx,
        logical: &LogicalClient,
    ) -> (SemaphoreGuard, usize) {
        let t0 = thread.now();
        self.waiting.set(self.waiting.get() + 1);
        if let Some(ins) = &*self.instruments.borrow() {
            ins.queue_depth.set(self.waiting.get());
        }
        let permit = self.sem.acquire().await;
        self.waiting.set(self.waiting.get() - 1);
        if let Some(ins) = &*self.instruments.borrow() {
            ins.queue_depth.set(self.waiting.get());
            ins.acquire_wait.record(thread.now() - t0);
        }
        let idx = self.claim(logical);
        (permit, idx)
    }

    /// Picks the connection a fresh permit entitles the caller to:
    /// sticky reuse of its own lease when still held and idle, else a
    /// never-leased connection, else the LRU idle lease (evicted).
    fn claim(&self, logical: &LogicalClient) -> usize {
        if let Some((p, generation)) = logical.lease.get() {
            let ph = &self.phys[p];
            if ph.holder.get() == Some(logical.id)
                && ph.generation.get() == generation
                && !ph.busy.get()
            {
                ph.busy.set(true);
                self.reuses.set(self.reuses.get() + 1);
                if let Some(ins) = &*self.instruments.borrow() {
                    ins.reuses.incr();
                }
                return p;
            }
        }
        let mut avail = self.avail.borrow_mut();
        let p = if let Some(p) = avail.free.pop() {
            p
        } else {
            loop {
                let p = avail
                    .idle_leased
                    .pop_front()
                    .expect("a permit implies an available connection");
                self.phys[p].queued.set(false);
                // Entries are removed lazily: skip connections that went
                // busy (their holder sticky-reused them) since queueing.
                if !self.phys[p].busy.get() {
                    self.evictions.set(self.evictions.get() + 1);
                    if let Some(ins) = &*self.instruments.borrow() {
                        ins.evictions.incr();
                    }
                    break p;
                }
            }
        };
        let ph = &self.phys[p];
        ph.holder.set(Some(logical.id));
        ph.generation.set(ph.generation.get() + 1);
        ph.busy.set(true);
        self.leases.set(self.leases.get() + 1);
        if let Some(ins) = &*self.instruments.borrow() {
            ins.leases.incr();
        }
        logical.lease.set(Some((p, ph.generation.get())));
        if self.cfg.stamp_tenant {
            self.clients[p].set_tenant(Some(logical.tenant.0));
        }
        p
    }

    /// Returns connection `p` to the idle-lease pool (the lease itself
    /// stays with the holder until someone needs the connection).
    fn release(&self, p: usize) {
        let ph = &self.phys[p];
        ph.busy.set(false);
        if !ph.queued.get() {
            self.avail.borrow_mut().idle_leased.push_back(p);
            ph.queued.set(true);
        }
    }
}

/// One logical client: a stable identity calling through whatever
/// physical connection its current lease binds. Cheap enough to create
/// by the hundred thousand; costs nothing while idle.
pub struct LogicalClient {
    mux: Rc<RfpMux>,
    id: u32,
    tenant: TenantId,
    /// `(connection, generation)` of the last lease; stale once the
    /// generation moves on.
    lease: Cell<Option<(usize, u64)>>,
}

impl LogicalClient {
    /// This logical client's id (unique within its mux).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// This logical client's tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Whether the last-used lease is still held (diagnostics).
    pub fn lease_held(&self) -> bool {
        self.lease.get().is_some_and(|(p, generation)| {
            let ph = &self.mux.phys[p];
            ph.holder.get() == Some(self.id) && ph.generation.get() == generation
        })
    }

    /// Issues one call ([`RfpClient::call`]) through the leased
    /// connection, waiting FIFO-fair when all are busy.
    pub async fn call(&self, thread: &ThreadCtx, req: &[u8]) -> CallResult {
        let (_permit, idx) = self.mux.acquire(thread, self).await;
        let out = self.mux.clients[idx].call(thread, req).await;
        self.mux.release(idx);
        self.book(thread, &out);
        out
    }

    /// Overload-aware call: the deadline budget starts at *arrival*
    /// (time queued for a lease counts against it), and a call whose
    /// budget is spent before a connection frees up is shed locally —
    /// zero wire traffic, like [`RfpPool::call_overload`](crate::RfpPool::call_overload).
    ///
    /// # Panics
    ///
    /// Panics if the mux'd connections do not have overload control
    /// enabled.
    pub async fn call_overload(&self, thread: &ThreadCtx, req: &[u8]) -> CallResult {
        let t0 = thread.now();
        let deadline = {
            let ov = self.mux.clients[0].overload_config();
            assert!(ov.enabled, "call_overload requires overload control");
            t0 + ov.deadline
        };
        let (_permit, idx) = self.mux.acquire(thread, self).await;
        if thread.now() >= deadline {
            self.mux.release(idx);
            let out = CallResult {
                data: Vec::new(),
                info: CallInfo {
                    attempts: 0,
                    extra_read: false,
                    completed_in: Mode::RemoteFetch,
                    latency: thread.now() - t0,
                    server_time_us: 0,
                    status: RespStatus::Shed,
                    integrity_retries: 0,
                },
            };
            self.book(thread, &out);
            return out;
        }
        let out = self.mux.clients[idx]
            .call_overload(thread, req, Some(deadline))
            .await;
        self.mux.release(idx);
        self.book(thread, &out);
        out
    }

    /// Pipelined batch over the leased connection
    /// ([`RfpClient::call_pipelined`]): the physical ring's window
    /// bounds in-flight calls, doorbell batching and all.
    pub async fn call_pipelined(&self, thread: &ThreadCtx, reqs: &[Vec<u8>]) -> Vec<CallResult> {
        let (_permit, idx) = self.mux.acquire(thread, self).await;
        let out = self.mux.clients[idx].call_pipelined(thread, reqs).await;
        self.mux.release(idx);
        for call in &out {
            self.book(thread, call);
        }
        out
    }

    /// Fault-tolerant call ([`RfpClient::call_with_recovery`]) through
    /// the leased connection.
    pub async fn call_with_recovery(
        &self,
        thread: &ThreadCtx,
        req: &[u8],
        rec: &RecoveryConfig,
    ) -> Result<CallResult, RpcError> {
        let (_permit, idx) = self.mux.acquire(thread, self).await;
        let out = self.mux.clients[idx]
            .call_with_recovery(thread, req, rec)
            .await;
        self.mux.release(idx);
        if let Ok(call) = &out {
            self.book(thread, call);
        }
        out
    }

    /// Books one finished call into the tenant's health window, when a
    /// tenant hub is configured. Mirrors the per-connection booking the
    /// transport does, one aggregation level up.
    fn book(&self, thread: &ThreadCtx, out: &CallResult) {
        let Some(hub) = &self.mux.cfg.tenant_health else {
            return;
        };
        let h = hub.conn(self.tenant.0);
        match out.info.status {
            RespStatus::Ok => h.record_call(
                thread.now(),
                out.info.latency,
                out.info.attempts.saturating_sub(1) as u64,
                out.data.len(),
                out.info.server_time_us,
            ),
            RespStatus::Busy => h.record_busy(thread.now()),
            // A fenced call is a routing casualty, not tenant pressure;
            // shed accounting is the closest rejection bucket.
            RespStatus::Shed | RespStatus::Fenced => h.record_shed(thread.now()),
        }
    }
}

/// Splits `conns` into `groups` disjoint poller groups, round-robin, so
/// each group's load is statistically even. Every group is non-empty
/// (callers asking for more groups than connections get one group per
/// connection).
pub fn shard_conns(conns: &[Rc<RfpServerConn>], groups: usize) -> Vec<Vec<Rc<RfpServerConn>>> {
    let groups = groups.clamp(1, conns.len().max(1));
    let mut out: Vec<Vec<Rc<RfpServerConn>>> = (0..groups).map(|_| Vec::new()).collect();
    for (i, conn) in conns.iter().enumerate() {
        out[i % groups].push(Rc::clone(conn));
    }
    out
}

/// Runs one poller group with per-tenant admission domains: the
/// admission-controlled serve loop (two-phase sweep, PR 5 batch-drain
/// inner loop) with [`TenantCredits`](crate::TenantCredits) in place of the single global
/// queue bound. Requests without a tenant stamp share one implicit
/// domain, so an untenanted workload behaves exactly like the global
/// loop.
///
/// # Panics
///
/// Panics if the group is empty or overload control is not enabled on
/// its connections (per-tenant credits are an overload-layer feature).
pub async fn serve_loop_tenant(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    handler: impl RfpHandler + 'static,
    idle: impl Into<IdlePolicy>,
) {
    assert!(!conns.is_empty(), "poller group with no connections");
    let reactor = Reactor::new(
        ReactorConfig::default(),
        vec![CoreSpec {
            thread,
            conns,
            handler: Box::new(handler),
        }],
        idle,
        ReactorPolicy::Tenant,
    );
    reactor.run_core(0).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::RfpConfig;
    use crate::server::serve_loop;
    use rfp_rnic::{Cluster, ClusterProfile, Machine, Qp};
    use rfp_simnet::{SimSpan, Simulation, WaitGroup};

    /// Builds `m` physical connections that share ONE QP pair between
    /// the client machine and the server — the QP-virtualization shape.
    #[allow(clippy::type_complexity)]
    fn mux_rig(
        sim: &mut Simulation,
        cfg: RfpConfig,
        m: usize,
        serve: bool,
    ) -> (
        Vec<Rc<RfpClient>>,
        Vec<Rc<RfpServerConn>>,
        Rc<Machine>,
        Rc<Machine>,
    ) {
        let cluster = Cluster::new(sim, ClusterProfile::paper_testbed(), 2);
        let (cm, smach) = (cluster.machine(0), cluster.machine(1));
        let qp_c2s: Rc<Qp> = cluster.qp(0, 1);
        let qp_s2c: Rc<Qp> = cluster.qp(1, 0);
        let mut clients = Vec::new();
        let mut conns = Vec::new();
        for _ in 0..m {
            let (cl, sc) = crate::conn::connect(
                &cm,
                &smach,
                Rc::clone(&qp_c2s),
                Rc::clone(&qp_s2c),
                cfg.clone(),
            );
            clients.push(Rc::new(cl));
            conns.push(Rc::new(sc));
        }
        if serve {
            for (i, conn) in conns.iter().enumerate() {
                let st = smach.thread(format!("server{i}"));
                sim.spawn(serve_loop(
                    st,
                    vec![Rc::clone(conn)],
                    |req: &[u8]| (req.to_vec(), SimSpan::micros(2)),
                    SimSpan::nanos(100),
                ));
            }
        }
        (clients, conns, cm, smach)
    }

    #[test]
    fn mux_shares_few_conns_among_many_logicals() {
        let mut sim = Simulation::new(21);
        let cfg = RfpConfig::default();
        let (clients, _conns, cm, _sm) = mux_rig(&mut sim, cfg, 4, true);
        let mux = RfpMux::new(clients, MuxConfig::default());

        // 16 logical clients (4 tenants), each issuing 3 calls.
        let wg = WaitGroup::new();
        for i in 0..16u32 {
            let lc = mux.logical_client(TenantId(i % 4));
            let t = cm.thread(format!("task{i}"));
            let token = wg.add();
            sim.spawn(async move {
                for k in 0..3u32 {
                    let payload = (i * 100 + k).to_le_bytes();
                    let out = lc.call(&t, &payload).await;
                    assert_eq!(out.data, payload, "logical {i} call {k}");
                }
                drop(token);
            });
        }
        sim.run_for(SimSpan::millis(20));
        assert_eq!(wg.count(), 0, "all logical clients finished");
        assert_eq!(mux.total_calls(), 48);
        assert_eq!(mux.logical_count(), 16);
        // 16 logicals over 4 conns: leases must have moved.
        assert!(mux.evictions() > 0, "oversubscription must evict");
        assert!(
            mux.leases() >= 16,
            "every logical client was leased at least once"
        );
    }

    #[test]
    fn idle_logical_clients_cost_no_leases() {
        let mut sim = Simulation::new(3);
        let (clients, _conns, cm, _sm) = mux_rig(&mut sim, RfpConfig::default(), 2, true);
        let mux = RfpMux::new(clients, MuxConfig::default());

        // A large fleet exists; only two ever call.
        let mut fleet = Vec::new();
        for i in 0..10_000u32 {
            fleet.push(mux.logical_client(TenantId(i % 7)));
        }
        for (k, lc) in fleet.into_iter().take(2).enumerate() {
            let t = cm.thread(format!("task{k}"));
            sim.spawn(async move {
                let out = lc.call(&t, b"ping").await;
                assert_eq!(out.data, b"ping");
            });
        }
        sim.run_for(SimSpan::millis(5));
        assert_eq!(mux.total_calls(), 2);
        // The 9 998 idle logical clients held nothing: two leases total.
        assert_eq!(mux.leases(), 2);
        assert_eq!(mux.evictions(), 0);
    }

    #[test]
    fn pinned_m_equals_n_never_evicts_and_always_reuses() {
        let mut sim = Simulation::new(5);
        let cfg = RfpConfig::default();
        let (clients, _conns, cm, _sm) = mux_rig(&mut sim, cfg, 3, true);
        let mux = RfpMux::new(
            clients,
            MuxConfig {
                stamp_tenant: false,
                ..MuxConfig::default()
            },
        );
        for i in 0..3u32 {
            let lc = mux.logical_client_pinned(TenantId(i), i as usize);
            let t = cm.thread(format!("task{i}"));
            sim.spawn(async move {
                for k in 0..4u32 {
                    let payload = (i * 10 + k).to_le_bytes();
                    let out = lc.call(&t, &payload).await;
                    assert_eq!(out.data, payload);
                }
            });
        }
        sim.run_for(SimSpan::millis(10));
        assert_eq!(mux.total_calls(), 12);
        assert_eq!(mux.evictions(), 0, "pinned leases never move");
        assert_eq!(mux.leases(), 3, "one pin each, no regrants");
        assert_eq!(mux.reuses(), 12, "every call reused its pin");
    }

    #[test]
    fn tenant_stamp_reaches_the_server() {
        let mut sim = Simulation::new(9);
        let (clients, conns, cm, sm) = mux_rig(&mut sim, RfpConfig::default(), 1, false);
        let conn = Rc::clone(&conns[0]);
        let seen = Rc::new(Cell::new(None));
        {
            let conn = Rc::clone(&conn);
            let seen = Rc::clone(&seen);
            let st = sm.thread("server");
            sim.spawn(async move {
                loop {
                    if let Some(req) = conn.try_recv(&st).await {
                        seen.set(conn.current_tenant());
                        conn.send(&st, &req).await;
                    } else {
                        st.busy(SimSpan::nanos(100)).await;
                    }
                }
            });
        }
        let mux = RfpMux::new(clients, MuxConfig::default());
        let lc = mux.logical_client(TenantId(0xBEEF));
        let t = cm.thread("task");
        sim.spawn(async move {
            let _ = lc.call(&t, b"hi").await;
        });
        sim.run_for(SimSpan::millis(2));
        assert_eq!(seen.get(), Some(0xBEEF));
    }

    #[test]
    fn shard_conns_partitions_disjoint_and_covers() {
        let mut sim = Simulation::new(1);
        let (_clients, conns, _cm, _sm) = mux_rig(&mut sim, RfpConfig::default(), 7, false);
        let groups = shard_conns(&conns, 3);
        assert_eq!(groups.len(), 3);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 7);
        let mut seen = BTreeSet::new();
        for g in &groups {
            assert!(!g.is_empty());
            for c in g {
                assert!(seen.insert(Rc::as_ptr(c) as usize), "conn in two groups");
            }
        }
        // More groups than connections degrades to one conn per group.
        assert_eq!(shard_conns(&conns[..2], 5).len(), 2);
    }

    #[test]
    fn tenant_health_books_per_tenant() {
        let mut sim = Simulation::new(11);
        let hub = HealthHub::default();
        let (clients, _conns, cm, _sm) = mux_rig(&mut sim, RfpConfig::default(), 2, true);
        let mux = RfpMux::new(
            clients,
            MuxConfig {
                tenant_health: Some(hub.clone()),
                ..MuxConfig::default()
            },
        );
        for i in 0..4u32 {
            let lc = mux.logical_client(TenantId(i % 2));
            let t = cm.thread(format!("task{i}"));
            sim.spawn(async move {
                let _ = lc.call(&t, b"x").await;
            });
        }
        // Stay inside the hub's retained window (epoch * epochs =
        // 1.6 ms by default) so the calls are still visible.
        sim.run_for(SimSpan::millis(1));
        let report = hub.report(sim.now());
        assert_eq!(report.conns.len(), 2, "one window per tenant");
        let calls: u64 = report.conns.iter().map(|c| c.calls).sum();
        assert_eq!(calls, 4);
    }
}
