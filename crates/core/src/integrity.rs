//! End-to-end integrity for the remote-fetch path.
//!
//! RFP's fast path guards the response buffer with a single status bit,
//! but a one-sided READ races the server's local write: a large payload
//! DMA is not atomic, and the two-segment fetch for results larger than
//! `F` can straddle a buffer reuse. The integrity layer closes that gap
//! without touching the protocol's op count:
//!
//! * the server stamps every response with a payload **CRC-64** and a
//!   monotonically bumped **buffer generation**
//!   ([`RespIntegrity`](crate::header::RespIntegrity), carried in the
//!   extended 32-byte response header), and writes an 8-byte **canary**
//!   word ([`resp_canary`](crate::header::resp_canary), derived from
//!   seq ⊕ generation) after the payload;
//! * the client verifies header/trailer/CRC agreement on every fetch —
//!   including across the two-segment fetch, where the second READ must
//!   observe the same generation — and silently refetches on mismatch;
//! * on the recovery path the refetch is **bounded**: after
//!   [`verify_retries`](IntegrityConfig::verify_retries) consecutive
//!   corrupt fetches the attempt fails with
//!   [`FailureCause::Corrupt`](crate::FailureCause) and the next
//!   attempt escalates to a QP re-establishment.
//!
//! With the layer disabled (the default) every wire byte, scheduled
//! event and exported metric row is identical to a build without it —
//! the same disabled-knobs-inert guarantee the deadline and overload
//! extensions give.

use crate::header::{resp_canary, RespHeader, RESP_TRAILER};
use rfp_simnet::crc64;

/// Tunables of the integrity layer (client and server ends share them
/// through the connection config).
#[derive(Clone, Debug)]
pub struct IntegrityConfig {
    /// Whether responses are CRC/generation-stamped and verified. Off by
    /// default: a disabled config leaves every wire byte and scheduled
    /// event exactly as without the layer.
    pub enabled: bool,
    /// Consecutive corrupt fetches tolerated per recovery attempt before
    /// the attempt fails with `FailureCause::Corrupt` (which escalates
    /// to a QP re-establishment on the next attempt). The plain
    /// non-recovery paths refetch without bound — a failed verification
    /// is just a failed attempt there.
    pub verify_retries: u32,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            enabled: false,
            verify_retries: 3,
        }
    }
}

/// Why a fetched response failed verification.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IntegrityFault {
    /// The trailing canary disagrees with the header's seq/generation:
    /// the fetch straddled a server write (torn DMA or a buffer reuse
    /// across the two-segment fetch).
    Torn,
    /// Header and trailer agree but the payload CRC does not: bytes
    /// were corrupted in flight or in memory.
    CrcMismatch,
}

/// Verifies one fetched response image: `payload` and `trailer` are the
/// bytes found at `hdr.wire_len()..` of the landing zone. Pure — the
/// client calls it in place over the fetched buffer.
///
/// Returns `Ok(())` when the response is intact, or the failure class.
/// A header without integrity fields under an integrity-enabled
/// connection reads as [`IntegrityFault::Torn`]: the server always
/// stamps, so a missing stamp means the fetch observed a partially
/// written (or bit-flipped) header word.
pub fn verify_response(
    hdr: &RespHeader,
    payload: &[u8],
    trailer: &[u8],
) -> Result<(), IntegrityFault> {
    debug_assert_eq!(trailer.len(), RESP_TRAILER);
    let Some(integrity) = hdr.integrity else {
        return Err(IntegrityFault::Torn);
    };
    let expect = resp_canary(hdr.seq, integrity.generation);
    let found = u64::from_le_bytes(trailer.try_into().expect("trailer is 8 bytes"));
    if found != expect {
        return Err(IntegrityFault::Torn);
    }
    if crc64(payload) != integrity.crc {
        return Err(IntegrityFault::CrcMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{RespIntegrity, RespStatus};

    fn stamped(payload: &[u8], seq: u32, generation: u32) -> (RespHeader, Vec<u8>) {
        let hdr = RespHeader {
            valid: true,
            size: payload.len() as u32,
            seq,
            time_us: 1,
            status: RespStatus::Ok,
            credits: 0,
            integrity: Some(RespIntegrity {
                crc: crc64(payload),
                generation,
            }),
            epoch: 0,
        };
        let trailer = resp_canary(seq, generation).to_le_bytes().to_vec();
        (hdr, trailer)
    }

    #[test]
    fn intact_response_verifies() {
        let (hdr, trailer) = stamped(b"payload bytes", 7, 3);
        assert_eq!(verify_response(&hdr, b"payload bytes", &trailer), Ok(()));
    }

    #[test]
    fn generation_mismatch_reads_as_torn() {
        let (hdr, _) = stamped(b"x", 7, 3);
        let stale = resp_canary(7, 2).to_le_bytes();
        assert_eq!(
            verify_response(&hdr, b"x", &stale),
            Err(IntegrityFault::Torn)
        );
    }

    #[test]
    fn payload_corruption_reads_as_crc_mismatch() {
        let (hdr, trailer) = stamped(b"clean", 1, 1);
        assert_eq!(
            verify_response(&hdr, b"cleaM", &trailer),
            Err(IntegrityFault::CrcMismatch)
        );
    }

    #[test]
    fn missing_stamp_reads_as_torn() {
        let (mut hdr, trailer) = stamped(b"", 1, 1);
        hdr.integrity = None;
        assert_eq!(
            verify_response(&hdr, b"", &trailer),
            Err(IntegrityFault::Torn)
        );
    }

    #[test]
    fn default_config_is_off() {
        let cfg = IntegrityConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.verify_retries > 0);
    }
}
