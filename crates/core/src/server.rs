//! Server-thread scan loop.
//!
//! RFP keeps the server CPU in the request path (that is its deliberate
//! trade against server-bypass): each server thread owns a disjoint set
//! of connections (EREW partitioning, as Jakiro does) and scans their
//! request buffers in round-robin, processing and answering in place.

use std::rc::Rc;

use rfp_rnic::ThreadCtx;
use rfp_simnet::SimSpan;

use crate::conn::RfpServerConn;

/// How a server thread produces a response from a request payload.
///
/// Returns the response payload plus the simulated *application*
/// processing time to charge (the paper's `P`; Figure 14 sweeps it).
pub trait RfpHandler {
    /// Handles one request.
    fn handle(&mut self, request: &[u8]) -> (Vec<u8>, SimSpan);
}

impl<F> RfpHandler for F
where
    F: FnMut(&[u8]) -> (Vec<u8>, SimSpan),
{
    fn handle(&mut self, request: &[u8]) -> (Vec<u8>, SimSpan) {
        self(request)
    }
}

/// Runs one server thread forever: scan the owned connections, process
/// every pending request, answer through the connection.
///
/// `idle_pause` is the spin cost charged when a full scan found no work,
/// bounding the simulated poll rate.
pub async fn serve_loop(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    mut handler: impl RfpHandler,
    idle_pause: SimSpan,
) {
    assert!(!conns.is_empty(), "server thread with no connections");
    loop {
        // A crashed machine runs no software: park (idle, not busy)
        // until the restart clears the flag. Healthy runs pay only the
        // flag load per scan.
        if thread.machine().faults().is_crashed() {
            thread
                .idle_wait(thread.handle().sleep(idle_pause.max(SimSpan::micros(1))))
                .await;
            continue;
        }
        let mut served_any = false;
        for conn in &conns {
            if thread.machine().faults().is_crashed() {
                break;
            }
            if let Some(req) = conn.try_recv(&thread).await {
                let (resp, process) = handler.handle(&req);
                if !process.is_zero() {
                    thread.busy(process).await;
                }
                if thread.machine().faults().is_crashed() {
                    // The process died while handling this request: the
                    // half-done work dies with it. (The client's
                    // resubmission redelivers it after the restart.)
                    break;
                }
                conn.send(&thread, &resp).await;
                served_any = true;
            }
        }
        if !served_any {
            thread.busy(idle_pause).await;
        }
    }
}
