//! Server-thread scan loop.
//!
//! RFP keeps the server CPU in the request path (that is its deliberate
//! trade against server-bypass): each server thread owns a disjoint set
//! of connections (EREW partitioning, as Jakiro does) and scans their
//! request buffers in round-robin, processing and answering in place.
//!
//! With overload control enabled ([`OverloadConfig`] on the shared
//! connection config) each scan runs in two phases: an **admission
//! sweep** that picks up every pending request and immediately answers
//! the ones it will not execute (`Shed` for an expired client-stamped
//! deadline, `Busy` beyond the scan's queue bound), then a **processing
//! phase** over the admitted batch. Admission decisions are made by the
//! pure [`admit`](crate::overload::admit) rule *before* any processing,
//! so a request the server has begun executing is never shed — the
//! invariant the shedding-safety proptest pins.

use std::rc::Rc;

use rfp_rnic::ThreadCtx;
use rfp_simnet::SimSpan;

use crate::conn::RfpServerConn;
use crate::header::RespStatus;
use crate::overload::{admit, credits_for, Admission, OverloadConfig};

/// How a server thread produces a response from a request payload.
///
/// Returns the response payload plus the simulated *application*
/// processing time to charge (the paper's `P`; Figure 14 sweeps it).
pub trait RfpHandler {
    /// Handles one request.
    fn handle(&mut self, request: &[u8]) -> (Vec<u8>, SimSpan);
}

impl<F> RfpHandler for F
where
    F: FnMut(&[u8]) -> (Vec<u8>, SimSpan),
{
    fn handle(&mut self, request: &[u8]) -> (Vec<u8>, SimSpan) {
        self(request)
    }
}

/// Idle pacing of a serve loop.
///
/// Every scan that finds no work charges `spin` of busy CPU (the poll
/// itself). With `max_nap` non-zero the loop additionally *backs off*:
/// consecutive empty scans grow an idle (not busy) nap, doubling from
/// `spin` up to `max_nap`, reset by the first scan that serves work —
/// cutting simulated poll burn at low load without touching saturated
/// throughput (a loaded loop never naps).
///
/// A bare [`SimSpan`] converts into the fixed-pause policy
/// (`max_nap = 0`), which reproduces the classic loop event-for-event.
#[derive(Copy, Clone, Debug)]
pub struct IdlePolicy {
    /// Busy spin cost charged per empty scan.
    pub spin: SimSpan,
    /// Adaptive-backoff nap cap; zero disables backoff.
    pub max_nap: SimSpan,
}

impl From<SimSpan> for IdlePolicy {
    fn from(spin: SimSpan) -> Self {
        IdlePolicy {
            spin,
            max_nap: SimSpan::ZERO,
        }
    }
}

impl IdlePolicy {
    /// Fixed-pause policy (no backoff): the classic loop.
    pub fn fixed(spin: SimSpan) -> Self {
        spin.into()
    }

    /// Adaptive backoff: `spin` per empty scan plus a nap doubling from
    /// `spin` up to `max_nap` while scans stay empty.
    pub fn adaptive(spin: SimSpan, max_nap: SimSpan) -> Self {
        IdlePolicy { spin, max_nap }
    }

    /// The nap to take after one more consecutive empty scan, given the
    /// previous nap (zero at first).
    pub(crate) fn next_nap(&self, prev: SimSpan) -> SimSpan {
        if self.max_nap.is_zero() {
            return SimSpan::ZERO;
        }
        if prev.is_zero() {
            self.spin.min(self.max_nap)
        } else {
            SimSpan::nanos(prev.as_nanos().saturating_mul(2)).min(self.max_nap)
        }
    }
}

/// Runs one server thread forever: scan the owned connections, process
/// every pending request, answer through the connection.
///
/// `idle` paces the loop when a full scan found no work; a plain
/// [`SimSpan`] gives the classic fixed spin cost, [`IdlePolicy::adaptive`]
/// adds exponential idle backoff.
pub async fn serve_loop(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    handler: impl RfpHandler,
    idle: impl Into<IdlePolicy>,
) {
    assert!(!conns.is_empty(), "server thread with no connections");
    let idle = idle.into();
    if conns[0].overload().enabled {
        serve_loop_overload(thread, conns, handler, idle).await
    } else {
        serve_loop_plain(thread, conns, handler, idle).await
    }
}

/// The classic loop: every pending request is processed in scan order,
/// each connection drained (up to its ring window) per visit.
async fn serve_loop_plain(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    mut handler: impl RfpHandler,
    idle: IdlePolicy,
) {
    let mut nap = SimSpan::ZERO;
    loop {
        // A crashed machine runs no software: park (idle, not busy)
        // until the restart clears the flag. Healthy runs pay only the
        // flag load per scan.
        if thread.machine().faults().is_crashed() {
            thread
                .idle_wait(thread.handle().sleep(idle.spin.max(SimSpan::micros(1))))
                .await;
            continue;
        }
        let mut served_any = false;
        'conns: for conn in &conns {
            // Drain the connection in one visit: a pipelined client can
            // have up to `window` slots pending, and picking up only one
            // per full rescan would cost a rescan (plus possible idle
            // burn) per request. A single-slot connection can never have
            // a second request pending (its client is synchronous), so
            // the bound of one `try_recv` is exactly the legacy scan.
            for _ in 0..conn.window() {
                if thread.machine().faults().is_crashed() {
                    break 'conns;
                }
                let Some(req) = conn.try_recv(&thread).await else {
                    break;
                };
                let (resp, process) = handler.handle(&req);
                if !process.is_zero() {
                    thread.busy(process).await;
                }
                if thread.machine().faults().is_crashed() {
                    // The process died while handling this request: the
                    // half-done work dies with it. (The client's
                    // resubmission redelivers it after the restart.)
                    break 'conns;
                }
                conn.send(&thread, &resp).await;
                served_any = true;
            }
        }
        if !served_any {
            thread.busy(idle.spin).await;
            nap = idle.next_nap(nap);
            if !nap.is_zero() {
                thread.idle_wait(thread.handle().sleep(nap)).await;
            }
        } else {
            nap = SimSpan::ZERO;
        }
    }
}

/// The admission-controlled loop (two-phase scan, see module docs).
async fn serve_loop_overload(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    mut handler: impl RfpHandler,
    idle: IdlePolicy,
) {
    let ov: OverloadConfig = conns[0].overload().clone();
    debug_assert!(
        conns.iter().all(|c| c.overload().enabled),
        "mixed overload configs on one server thread"
    );
    // Credits advertised on responses posted during the admission
    // sweep, computed from the *previous* scan's backlog (the freshest
    // level the server knows when a rejection goes out).
    let mut advertised = ov.credit_max;
    let mut nap = SimSpan::ZERO;
    loop {
        if thread.machine().faults().is_crashed() {
            thread
                .idle_wait(thread.handle().sleep(idle.spin.max(SimSpan::micros(1))))
                .await;
            continue;
        }
        let mut served_any = false;
        let mut crashed = false;
        // Phase 1: admission sweep. Every pending request is picked up
        // and either queued for processing or answered with its verdict
        // on the spot — one bounded batch per scan. Each connection is
        // drained (up to its ring window) per visit; every drained
        // request still passes the admission rule individually, so the
        // queue bound caps the batch exactly as before.
        let mut admitted: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut backlog = 0usize;
        'sweep: for (i, conn) in conns.iter().enumerate() {
            for _ in 0..conn.window() {
                if thread.machine().faults().is_crashed() {
                    crashed = true;
                    break 'sweep;
                }
                let Some(req) = conn.try_recv(&thread).await else {
                    break;
                };
                backlog += 1;
                match admit(&ov, thread.now(), conn.current_deadline(), admitted.len()) {
                    Admission::Admit => admitted.push((i, req)),
                    Admission::Busy => {
                        // Out of queue room: advertise zero so the
                        // client backs off before resubmitting.
                        conn.set_advertised_credits(0);
                        conn.reject(&thread, RespStatus::Busy).await;
                        served_any = true;
                    }
                    Admission::Shed => {
                        conn.set_advertised_credits(advertised);
                        conn.reject(&thread, RespStatus::Shed).await;
                        served_any = true;
                    }
                }
            }
        }
        advertised = credits_for(&ov, backlog);
        // Phase 2: processing. Admission is final — nothing in this
        // batch is ever shed, deadline expired or not.
        if !crashed {
            for (i, req) in admitted {
                if thread.machine().faults().is_crashed() {
                    break;
                }
                let (resp, process) = handler.handle(&req);
                if !process.is_zero() {
                    thread.busy(process).await;
                }
                if thread.machine().faults().is_crashed() {
                    break;
                }
                conns[i].set_advertised_credits(advertised);
                conns[i].send(&thread, &resp).await;
                served_any = true;
            }
        }
        if !served_any {
            thread.busy(idle.spin).await;
            nap = idle.next_nap(nap);
            if !nap.is_zero() {
                thread.idle_wait(thread.handle().sleep(nap)).await;
            }
        } else {
            nap = SimSpan::ZERO;
        }
    }
}
