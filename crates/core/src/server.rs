//! Server-thread scan loop.
//!
//! RFP keeps the server CPU in the request path (that is its deliberate
//! trade against server-bypass): each server thread owns a disjoint set
//! of connections (EREW partitioning, as Jakiro does) and scans their
//! request buffers in round-robin, processing and answering in place.
//!
//! With overload control enabled ([`OverloadConfig`](crate::OverloadConfig)
//! on the shared connection config) each scan runs in two phases: an
//! **admission sweep** that picks up every pending request and
//! immediately answers the ones it will not execute (`Shed` for an
//! expired client-stamped deadline, `Busy` beyond the scan's queue
//! bound), then a **processing phase** over the admitted batch.
//! Admission decisions are made by the pure
//! [`admit`](crate::overload::admit) rule *before* any processing, so a
//! request the server has begun executing is never shed — the invariant
//! the shedding-safety proptest pins.
//!
//! Since the multi-core refactor both disciplines are implementations
//! of the shared serve [`Reactor`](crate::Reactor) (see
//! [`reactor`](crate::reactor) module docs); [`serve_loop`] is the
//! single-core entry point and replays the legacy loops event for
//! event (pinned by the byte-identity proptest).

use std::rc::Rc;

use rfp_rnic::ThreadCtx;
use rfp_simnet::SimSpan;

use crate::conn::RfpServerConn;
use crate::reactor::{CoreSpec, Reactor, ReactorConfig, ReactorPolicy};

/// How a server thread produces a response from a request payload.
///
/// Returns the response payload plus the simulated *application*
/// processing time to charge (the paper's `P`; Figure 14 sweeps it).
pub trait RfpHandler {
    /// Handles one request.
    fn handle(&mut self, request: &[u8]) -> (Vec<u8>, SimSpan);
}

impl<F> RfpHandler for F
where
    F: FnMut(&[u8]) -> (Vec<u8>, SimSpan),
{
    fn handle(&mut self, request: &[u8]) -> (Vec<u8>, SimSpan) {
        self(request)
    }
}

/// Idle pacing of a serve loop.
///
/// Every scan that finds no work charges `spin` of busy CPU (the poll
/// itself). With `max_nap` non-zero the loop additionally *backs off*:
/// consecutive empty scans grow an idle (not busy) nap, doubling from
/// `spin` up to `max_nap`, reset by the first scan that serves work —
/// cutting simulated poll burn at low load without touching saturated
/// throughput (a loaded loop never naps).
///
/// A bare [`SimSpan`] converts into the fixed-pause policy
/// (`max_nap = 0`), which reproduces the classic loop event-for-event.
#[derive(Copy, Clone, Debug)]
pub struct IdlePolicy {
    /// Busy spin cost charged per empty scan.
    pub spin: SimSpan,
    /// Adaptive-backoff nap cap; zero disables backoff.
    pub max_nap: SimSpan,
}

impl From<SimSpan> for IdlePolicy {
    fn from(spin: SimSpan) -> Self {
        IdlePolicy {
            spin,
            max_nap: SimSpan::ZERO,
        }
    }
}

impl IdlePolicy {
    /// Fixed-pause policy (no backoff): the classic loop.
    pub fn fixed(spin: SimSpan) -> Self {
        spin.into()
    }

    /// Adaptive backoff: `spin` per empty scan plus a nap doubling from
    /// `spin` up to `max_nap` while scans stay empty.
    pub fn adaptive(spin: SimSpan, max_nap: SimSpan) -> Self {
        IdlePolicy { spin, max_nap }
    }

    /// The nap to take after one more consecutive empty scan, given the
    /// previous nap (zero at first).
    pub(crate) fn next_nap(&self, prev: SimSpan) -> SimSpan {
        if self.max_nap.is_zero() {
            return SimSpan::ZERO;
        }
        if prev.is_zero() {
            self.spin.min(self.max_nap)
        } else {
            SimSpan::nanos(prev.as_nanos().saturating_mul(2)).min(self.max_nap)
        }
    }
}

/// Runs one server thread forever: scan the owned connections, process
/// every pending request, answer through the connection.
///
/// `idle` paces the loop when a full scan found no work; a plain
/// [`SimSpan`] gives the classic fixed spin cost, [`IdlePolicy::adaptive`]
/// adds exponential idle backoff.
///
/// This is the single-core configuration of the serve
/// [`Reactor`](crate::Reactor): the admission discipline is picked
/// from the connections' overload config, work stealing is off, and
/// the event order matches the pre-reactor loops exactly.
pub async fn serve_loop(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    handler: impl RfpHandler + 'static,
    idle: impl Into<IdlePolicy>,
) {
    assert!(!conns.is_empty(), "server thread with no connections");
    let policy = if conns[0].overload().enabled {
        ReactorPolicy::Overload
    } else {
        ReactorPolicy::Plain
    };
    let reactor = Reactor::new(
        ReactorConfig::default(),
        vec![CoreSpec {
            thread,
            conns,
            handler: Box::new(handler),
        }],
        idle,
        policy,
    );
    reactor.run_core(0).await
}
