//! Buffer headers of the RFP wire protocol (paper Figure 7).
//!
//! Every request buffer starts with an 8-byte header carrying a status
//! bit and a 30-bit payload size; every response buffer starts with a
//! 16-byte header additionally carrying the paper's 16-bit server
//! response time. Both headers also carry a 32-bit sequence number — an
//! engineering detail the paper leaves implicit: the client must be able
//! to distinguish the response to its current call from a stale response
//! of the previous call without an extra round trip to clear the remote
//! status bit, and matching on the call sequence does exactly that.
//!
//! Two extensions ride in space the base format leaves unused, so that
//! a connection not using them stays byte-identical to the original
//! layout:
//!
//! * **request deadline** — bit 30 of the request word marks an extended
//!   16-byte header whose trailing 8 bytes carry the client-stamped
//!   absolute deadline (nanoseconds of sim time). The overload-control
//!   path stamps it so the server can shed requests that already missed
//!   their deadline (see [`crate::OverloadConfig`]); without it the bit
//!   is clear and the header is the classic 8 bytes.
//! * **response status + credits** — byte 10 of the response header
//!   carries a [`RespStatus`] (`Ok`/`Busy`/`Shed`) and bytes 11..13 a
//!   16-bit admission-credit advertisement. Both encode as zero for the
//!   default (`Ok`, 0 credits), which is exactly what the original
//!   format zero-filled there.
//! * **request tenant** — bit 29 of the request word marks a 24-byte
//!   request header whose bytes 16..20 carry the 32-bit tenant id of
//!   the logical client that issued the call (bytes 8..16 hold the
//!   deadline when bit 30 is also set, zeros otherwise; 20..24 are
//!   spare zeros). The multiplexing layer stamps it so a server
//!   connection shared by many tenants can account admission and
//!   credits per tenant (see `rfp-core`'s mux module). Claiming bit 29
//!   caps the *request* payload size at [`MAX_REQ_PAYLOAD`] (2²⁹−1
//!   bytes — far above any request buffer this repo configures);
//!   responses keep the full 30-bit field. Without a tenant the bit is
//!   clear and the header is the classic 8 (or 16) bytes.
//! * **response integrity** — bit 30 of the response word marks an
//!   extended 32-byte response header whose trailing 16 bytes carry a
//!   CRC-64 of the payload and a 32-bit buffer-generation stamp
//!   ([`RespIntegrity`]). An integrity-stamped response additionally
//!   carries an 8-byte trailing canary word ([`resp_canary`], derived
//!   from seq ⊕ generation) *after* the payload, so a one-sided READ
//!   that raced the server's local write — or straddled a buffer reuse
//!   across the two-segment fetch — is detectable from the fetched
//!   bytes alone. Without the bit the header is the classic 16 bytes
//!   and no trailer exists.
//! * **epoch** — the replication/failover fencing stamp. Responses
//!   carry it flaglessly in spare bytes 13..15: epoch 0 (the
//!   pre-replication world) encodes as the zeros those bytes always
//!   held. Requests carry it under bit 28 of the request word in bytes
//!   20..22 of the 24-byte layout (the tenant layout's spare tail);
//!   epoch 0 never sets the bit, so unreplicated connections stay
//!   byte-identical. Claiming bit 28 caps an epoch-stamped *request*
//!   payload at [`MAX_REQ_PAYLOAD_EPOCH`] (2²⁸−1 bytes — still far
//!   above any configured request buffer). A failed-over backup serves
//!   at a higher epoch; the server fences lower-epoch writes
//!   ([`RespStatus::Fenced`]) and clients discard lower-epoch
//!   responses, so no split-brain write is ever acked.
//!
//! All fields are little-endian.

use rfp_simnet::SimTime;

/// Size of the base request header in bytes.
pub const REQ_HDR: usize = 8;

/// Size of the extended request header (base + 8-byte deadline).
pub const REQ_HDR_EXT: usize = 16;

/// Size of the tenant-stamped request header (extended + 4-byte tenant
/// id + 4 spare zero bytes).
pub const REQ_HDR_TENANT: usize = 24;

/// Size of the response header in bytes.
pub const RESP_HDR: usize = 16;

/// Size of the extended response header (base + 8-byte payload CRC +
/// 4-byte generation + 4 spare zero bytes).
pub const RESP_HDR_EXT: usize = 32;

/// Size of the trailing canary word following an integrity-stamped
/// payload.
pub const RESP_TRAILER: usize = 8;

/// Maximum payload size encodable in the 30-bit response size field.
pub const MAX_PAYLOAD: usize = (1 << 30) - 1;

/// Maximum payload size encodable in the 29-bit request size field
/// (bit 29 is the tenant flag).
pub const MAX_REQ_PAYLOAD: usize = (1 << 29) - 1;

/// Maximum payload size of an epoch-stamped request (bit 28 is the
/// epoch flag).
pub const MAX_REQ_PAYLOAD_EPOCH: usize = (1 << 28) - 1;

const VALID_BIT: u32 = 1 << 31;
const DEADLINE_BIT: u32 = 1 << 30;
const TENANT_BIT: u32 = 1 << 29;
const EPOCH_BIT: u32 = 1 << 28;
const INTEGRITY_BIT: u32 = 1 << 30;
const SIZE_MASK: u32 = (1 << 30) - 1;
const REQ_SIZE_MASK: u32 = (1 << 29) - 1;
const REQ_SIZE_MASK_EPOCH: u32 = (1 << 28) - 1;

/// Salt folded into the trailing canary so a zero-filled (fresh or
/// cold-wiped) buffer never accidentally matches seq 0 / generation 0.
const CANARY_SALT: u64 = 0x5AFE_C0DE_D00D_FEED;

/// The trailing canary word of an integrity-stamped response: the call
/// sequence and the buffer generation folded into one 8-byte value. A
/// fetch whose header and trailer disagree on it straddled a server
/// write (the DMA tear / buffer-reuse race the integrity layer exists
/// to catch).
pub fn resp_canary(seq: u32, generation: u32) -> u64 {
    (((seq as u64) << 32) | generation as u64) ^ CANARY_SALT
}

/// Ring slot a sequence number occupies in a `window`-slot
/// request/response ring: seq `s` lives in slot `(s − 1) mod window`.
///
/// The mapping is carried entirely by the seq — no extra wire field —
/// because the client allocates seqs so that slot `i`'s calls are
/// exactly the seqs ≡ `i + 1 (mod window)`. It stays consistent across
/// u32 wraparound as long as `window` is a power of two (2³² is then a
/// multiple of `window`), which [`crate::connect`] asserts.
///
/// A single-slot ring maps every seq to slot 0, reproducing today's
/// one-buffer layout exactly.
pub fn slot_of(seq: u32, window: usize) -> usize {
    debug_assert!(window >= 1, "ring needs at least one slot");
    seq.wrapping_sub(1) as usize % window
}

/// Server verdict carried in a response header.
///
/// `Busy`, `Shed` and `Fenced` are rejections: the request was *not*
/// executed (the server either had no queue room, saw the stamped
/// deadline already expired, or fenced a stale-epoch writer), so the
/// client may safely resubmit it under a fresh sequence number — after
/// failing over, for `Fenced`. All rejection verdicts carry an empty
/// payload — the whole point is that a rejection costs the client one
/// in-bound READ, not `R` of them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RespStatus {
    /// The request was executed; the payload is the result.
    Ok,
    /// Admission rejected: the server's bounded queue was full.
    Busy,
    /// Deadline shed: the request's stamped deadline had already passed
    /// when the server picked it up.
    Shed,
    /// Epoch fence: the request was stamped with an epoch older than
    /// the connection's — the sender is a client of a deposed primary
    /// and must fail over before any of its writes are executed.
    Fenced,
}

impl RespStatus {
    /// Wire encoding (one byte).
    pub fn to_u8(self) -> u8 {
        match self {
            RespStatus::Ok => 0,
            RespStatus::Busy => 1,
            RespStatus::Shed => 2,
            RespStatus::Fenced => 3,
        }
    }

    /// Decodes a wire byte; unknown values read as `Ok` so pre-extension
    /// peers (which zero-fill the byte) interoperate.
    pub fn from_u8(b: u8) -> Self {
        match b {
            1 => RespStatus::Busy,
            2 => RespStatus::Shed,
            3 => RespStatus::Fenced,
            _ => RespStatus::Ok,
        }
    }
}

/// Decoded request header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReqHeader {
    /// Status bit: the request has fully arrived.
    pub valid: bool,
    /// Payload size in bytes.
    pub size: u32,
    /// Call sequence number.
    pub seq: u32,
    /// Client-stamped absolute deadline, when the overload-control path
    /// stamped one. `None` encodes to the classic 8-byte header.
    pub deadline: Option<SimTime>,
    /// Tenant id of the issuing logical client, when a multiplexing
    /// layer stamped one. `None` keeps the classic (or deadline-only)
    /// layout byte-identical.
    pub tenant: Option<u32>,
    /// Replication epoch the issuing client believes is current. 0 (the
    /// pre-replication world) never sets the epoch bit, keeping
    /// unreplicated connections byte-identical to the legacy layout.
    pub epoch: u16,
}

impl ReqHeader {
    /// Bytes this header occupies on the wire ([`REQ_HDR`],
    /// [`REQ_HDR_EXT`], or [`REQ_HDR_TENANT`]); the payload starts at
    /// this offset.
    pub fn wire_len(&self) -> usize {
        if self.tenant.is_some() || self.epoch != 0 {
            REQ_HDR_TENANT
        } else if self.deadline.is_some() {
            REQ_HDR_EXT
        } else {
            REQ_HDR
        }
    }

    /// Encodes into the first [`wire_len`](ReqHeader::wire_len) bytes of
    /// `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the wire length or `size` exceeds
    /// [`MAX_REQ_PAYLOAD`] ([`MAX_REQ_PAYLOAD_EPOCH`] when epoch-
    /// stamped).
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(self.size as usize <= MAX_REQ_PAYLOAD, "payload too large");
        if self.epoch != 0 {
            assert!(
                self.size as usize <= MAX_REQ_PAYLOAD_EPOCH,
                "payload too large"
            );
        }
        let mut word = self.size | if self.valid { VALID_BIT } else { 0 };
        if self.deadline.is_some() {
            word |= DEADLINE_BIT;
        }
        if self.tenant.is_some() {
            word |= TENANT_BIT;
        }
        if self.epoch != 0 {
            word |= EPOCH_BIT;
        }
        buf[0..4].copy_from_slice(&word.to_le_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_le_bytes());
        let extended = self.tenant.is_some() || self.epoch != 0;
        if let Some(deadline) = self.deadline {
            buf[8..16].copy_from_slice(&deadline.as_nanos().to_le_bytes());
        } else if extended {
            // The tenant/epoch fields ride *after* the deadline slot,
            // which stays zero-filled when no deadline is stamped.
            buf[8..16].fill(0);
        }
        if extended {
            buf[16..20].copy_from_slice(&self.tenant.unwrap_or(0).to_le_bytes());
            buf[20..22].copy_from_slice(&self.epoch.to_le_bytes());
            buf[22..24].fill(0);
        }
    }

    /// Decodes from the first [`REQ_HDR`] bytes of `buf` (the first
    /// [`REQ_HDR_EXT`] / [`REQ_HDR_TENANT`] when the deadline /
    /// tenant / epoch bits are set).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the encoded header.
    pub fn decode(buf: &[u8]) -> Self {
        let word = u32::from_le_bytes(buf[0..4].try_into().expect("len checked"));
        let deadline = if word & DEADLINE_BIT != 0 {
            Some(SimTime::from_nanos(u64::from_le_bytes(
                buf[8..16].try_into().expect("len checked"),
            )))
        } else {
            None
        };
        // Like the response integrity bit, the length guards keep a
        // corrupted flag on a short window from reading out of bounds:
        // the header degrades to an untenanted/unstamped decode instead.
        let tenant = if word & TENANT_BIT != 0 && buf.len() >= REQ_HDR_TENANT {
            Some(u32::from_le_bytes(
                buf[16..20].try_into().expect("len checked"),
            ))
        } else {
            None
        };
        let epoch_stamped = word & EPOCH_BIT != 0 && buf.len() >= REQ_HDR_TENANT;
        let epoch = if epoch_stamped {
            u16::from_le_bytes(buf[20..22].try_into().expect("len checked"))
        } else {
            0
        };
        // Mask choice follows the *guarded* decodes: a flag bit that
        // degraded on a short window is size payload, not an extension.
        let size_mask = if epoch_stamped {
            REQ_SIZE_MASK_EPOCH
        } else if tenant.is_some() {
            REQ_SIZE_MASK
        } else {
            SIZE_MASK
        };
        ReqHeader {
            valid: word & VALID_BIT != 0,
            size: word & size_mask,
            seq: u32::from_le_bytes(buf[4..8].try_into().expect("len checked")),
            deadline,
            tenant,
            epoch,
        }
    }
}

/// Integrity fields of an extended response header (bytes 16..28).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RespIntegrity {
    /// CRC-64 (XZ variant, [`rfp_simnet::crc64`]) of the payload bytes.
    pub crc: u64,
    /// Buffer-generation stamp: the server bumps it on every local post
    /// into this response buffer, so two fetch segments observing
    /// different generations provably straddled a reuse.
    pub generation: u32,
}

/// Decoded response header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RespHeader {
    /// Status bit: the response has been posted by the server.
    pub valid: bool,
    /// Payload size in bytes.
    pub size: u32,
    /// Call sequence number this response answers.
    pub seq: u32,
    /// Server-side process time in microseconds, saturating at
    /// `u16::MAX` (the paper's two-byte `time` field; clients use it to
    /// decide when to switch back from server-reply mode, §3.2).
    pub time_us: u16,
    /// Server verdict: executed, queue-full rejection, or deadline shed.
    pub status: RespStatus,
    /// Admission credits the server currently advertises on this
    /// connection (overload control; 0 when the subsystem is off).
    pub credits: u16,
    /// Payload CRC + buffer generation, when the integrity layer
    /// stamped them. `None` encodes to the classic 16-byte header.
    pub integrity: Option<RespIntegrity>,
    /// Replication epoch of the answering server. Rides flaglessly in
    /// spare bytes 13..15, so epoch 0 (the pre-replication world) stays
    /// byte-identical to the legacy zero padding.
    pub epoch: u16,
}

impl RespHeader {
    /// Bytes this header occupies on the wire ([`RESP_HDR`] or
    /// [`RESP_HDR_EXT`]); the payload starts at this offset.
    pub fn wire_len(&self) -> usize {
        if self.integrity.is_some() {
            RESP_HDR_EXT
        } else {
            RESP_HDR
        }
    }

    /// Encodes into the first [`wire_len`](RespHeader::wire_len) bytes
    /// of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the wire length or `size` exceeds
    /// [`MAX_PAYLOAD`].
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(self.size as usize <= MAX_PAYLOAD, "payload too large");
        let mut word = self.size | if self.valid { VALID_BIT } else { 0 };
        if self.integrity.is_some() {
            word |= INTEGRITY_BIT;
        }
        buf[0..4].copy_from_slice(&word.to_le_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_le_bytes());
        buf[8..10].copy_from_slice(&self.time_us.to_le_bytes());
        buf[10] = self.status.to_u8();
        buf[11..13].copy_from_slice(&self.credits.to_le_bytes());
        buf[13..15].copy_from_slice(&self.epoch.to_le_bytes());
        buf[15] = 0;
        if let Some(integrity) = self.integrity {
            buf[16..24].copy_from_slice(&integrity.crc.to_le_bytes());
            buf[24..28].copy_from_slice(&integrity.generation.to_le_bytes());
            buf[28..32].fill(0);
        }
    }

    /// Decodes from the first [`RESP_HDR`] bytes of `buf` (the first
    /// [`RESP_HDR_EXT`] when the integrity bit is set).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the encoded header.
    pub fn decode(buf: &[u8]) -> Self {
        let word = u32::from_le_bytes(buf[0..4].try_into().expect("len checked"));
        // The length guard matters under fault injection: a bit flip can
        // set the integrity bit on a legacy 16-byte window, and the
        // decoder must degrade to a (garbage, seq-mismatching) legacy
        // header rather than read past the window.
        let integrity = if word & INTEGRITY_BIT != 0 && buf.len() >= RESP_HDR_EXT {
            Some(RespIntegrity {
                crc: u64::from_le_bytes(buf[16..24].try_into().expect("len checked")),
                generation: u32::from_le_bytes(buf[24..28].try_into().expect("len checked")),
            })
        } else {
            None
        };
        RespHeader {
            valid: word & VALID_BIT != 0,
            size: word & SIZE_MASK,
            seq: u32::from_le_bytes(buf[4..8].try_into().expect("len checked")),
            time_us: u16::from_le_bytes(buf[8..10].try_into().expect("len checked")),
            status: RespStatus::from_u8(buf[10]),
            credits: u16::from_le_bytes(buf[11..13].try_into().expect("len checked")),
            integrity,
            epoch: u16::from_le_bytes(buf[13..15].try_into().expect("len checked")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_header_round_trip() {
        let h = ReqHeader {
            valid: true,
            size: 12345,
            seq: 0xDEAD_BEEF,
            deadline: None,
            tenant: None,
            epoch: 0,
        };
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        assert_eq!(ReqHeader::decode(&buf), h);
    }

    #[test]
    fn req_header_invalid_bit() {
        let h = ReqHeader {
            valid: false,
            size: MAX_REQ_PAYLOAD as u32,
            seq: 7,
            deadline: None,
            tenant: None,
            epoch: 0,
        };
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        let d = ReqHeader::decode(&buf);
        assert!(!d.valid);
        assert_eq!(d.size as usize, MAX_REQ_PAYLOAD);
    }

    #[test]
    fn req_header_deadline_round_trip() {
        let h = ReqHeader {
            valid: true,
            size: 64,
            seq: 9,
            deadline: Some(SimTime::from_nanos(123_456_789)),
            tenant: None,
            epoch: 0,
        };
        assert_eq!(h.wire_len(), REQ_HDR_EXT);
        let mut buf = [0u8; REQ_HDR_EXT];
        h.encode(&mut buf);
        assert_eq!(ReqHeader::decode(&buf), h);
    }

    #[test]
    fn req_header_without_deadline_matches_legacy_layout() {
        // The pre-extension encoder wrote `size | VALID` then the seq and
        // nothing else; a deadline-less header must produce those exact
        // bytes (the byte-identical-when-off guarantee).
        let h = ReqHeader {
            valid: true,
            size: 300,
            seq: 0x0102_0304,
            deadline: None,
            tenant: None,
            epoch: 0,
        };
        assert_eq!(h.wire_len(), REQ_HDR);
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        let mut legacy = [0u8; REQ_HDR];
        legacy[0..4].copy_from_slice(&(300u32 | (1 << 31)).to_le_bytes());
        legacy[4..8].copy_from_slice(&0x0102_0304u32.to_le_bytes());
        assert_eq!(buf, legacy);
    }

    #[test]
    fn req_header_tenant_round_trip() {
        for deadline in [None, Some(SimTime::from_nanos(55_555))] {
            let h = ReqHeader {
                valid: true,
                size: 128,
                seq: 11,
                deadline,
                tenant: Some(0xABCD_0042),
                epoch: 0,
            };
            assert_eq!(h.wire_len(), REQ_HDR_TENANT);
            let mut buf = [0u8; REQ_HDR_TENANT];
            h.encode(&mut buf);
            assert_eq!(ReqHeader::decode(&buf), h);
            // Epoch slot (20..22, unstamped) and spare tail bytes stay
            // zero for forward compatibility.
            assert_eq!(&buf[20..24], &[0, 0, 0, 0]);
        }
    }

    #[test]
    fn req_header_epoch_round_trip() {
        for (deadline, tenant) in [
            (None, None),
            (Some(SimTime::from_nanos(77_000)), None),
            (None, Some(0xAA55_0001)),
            (Some(SimTime::from_nanos(1)), Some(3)),
        ] {
            let h = ReqHeader {
                valid: true,
                size: 64,
                seq: 21,
                deadline,
                tenant,
                epoch: 0x0B0C,
            };
            assert_eq!(h.wire_len(), REQ_HDR_TENANT);
            let mut buf = [0xFFu8; REQ_HDR_TENANT];
            h.encode(&mut buf);
            assert_eq!(ReqHeader::decode(&buf), h);
            assert_eq!(&buf[20..22], &0x0B0Cu16.to_le_bytes());
            assert_eq!(&buf[22..24], &[0, 0]);
        }
    }

    #[test]
    fn req_header_epoch_zero_matches_legacy_layout() {
        // Epoch 0 must neither set the epoch bit nor widen the header —
        // the byte-identical-when-off guarantee the replication-off
        // proptest pins end to end.
        let h = ReqHeader {
            valid: true,
            size: 300,
            seq: 0x0102_0304,
            deadline: None,
            tenant: None,
            epoch: 0,
        };
        assert_eq!(h.wire_len(), REQ_HDR);
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        let word = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        assert_eq!(word & EPOCH_BIT, 0);
    }

    #[test]
    fn req_header_epoch_decode_guards_short_window() {
        // An epoch-flagged word read through a shorter window degrades
        // to an unstamped decode rather than reading out of bounds.
        let h = ReqHeader {
            valid: true,
            size: 9,
            seq: 3,
            deadline: None,
            tenant: None,
            epoch: 4,
        };
        let mut buf = [0u8; REQ_HDR_TENANT];
        h.encode(&mut buf);
        let d = ReqHeader::decode(&buf[..REQ_HDR_EXT]);
        assert_eq!(d.epoch, 0);
        assert_eq!(d.seq, 3);
    }

    #[test]
    fn resp_header_epoch_round_trip_in_spare_bytes() {
        let h = RespHeader {
            valid: true,
            size: 5,
            seq: 19,
            time_us: 4,
            status: RespStatus::Fenced,
            credits: 1,
            integrity: None,
            epoch: 0x1234,
        };
        // Epoch rides in spare bytes: same wire length as legacy.
        assert_eq!(h.wire_len(), RESP_HDR);
        let mut buf = [0u8; RESP_HDR];
        h.encode(&mut buf);
        assert_eq!(&buf[13..15], &0x1234u16.to_le_bytes());
        assert_eq!(buf[15], 0);
        assert_eq!(RespHeader::decode(&buf), h);
    }

    #[test]
    fn req_header_tenant_without_deadline_zero_fills_deadline_slot() {
        let h = ReqHeader {
            valid: true,
            size: 1,
            seq: 2,
            deadline: None,
            tenant: Some(7),
            epoch: 0,
        };
        let mut buf = [0xFFu8; REQ_HDR_TENANT];
        h.encode(&mut buf);
        assert_eq!(&buf[8..16], &[0u8; 8]);
        let d = ReqHeader::decode(&buf);
        assert_eq!(d.deadline, None);
        assert_eq!(d.tenant, Some(7));
    }

    #[test]
    fn req_header_without_tenant_matches_legacy_layout() {
        // The tenant bit must be clear and nothing written past the
        // base (or deadline-extended) header — the byte-identical-
        // when-off guarantee the mux's M=N pin test rides on.
        let h = ReqHeader {
            valid: true,
            size: 300,
            seq: 0x0102_0304,
            deadline: None,
            tenant: None,
            epoch: 0,
        };
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        let word = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        assert_eq!(word & (1 << 29), 0);
        assert_eq!(h.wire_len(), REQ_HDR);
    }

    #[test]
    fn req_header_tenant_decode_guards_short_window() {
        // A tenant-flagged word read through a shorter window (corrupt
        // flag on a legacy slot) must degrade to an untenanted decode
        // rather than read out of bounds.
        let h = ReqHeader {
            valid: true,
            size: 9,
            seq: 3,
            deadline: None,
            tenant: Some(5),
            epoch: 0,
        };
        let mut buf = [0u8; REQ_HDR_TENANT];
        h.encode(&mut buf);
        let d = ReqHeader::decode(&buf[..REQ_HDR_EXT]);
        assert_eq!(d.tenant, None);
        assert_eq!(d.seq, 3);
    }

    #[test]
    fn resp_header_round_trip() {
        let h = RespHeader {
            valid: true,
            size: 99,
            seq: 42,
            time_us: 65535,
            status: RespStatus::Ok,
            credits: 0,
            integrity: None,
            epoch: 0,
        };
        let mut buf = [0u8; RESP_HDR];
        h.encode(&mut buf);
        assert_eq!(RespHeader::decode(&buf), h);
    }

    #[test]
    fn resp_header_status_and_credits_round_trip() {
        for status in [
            RespStatus::Ok,
            RespStatus::Busy,
            RespStatus::Shed,
            RespStatus::Fenced,
        ] {
            let h = RespHeader {
                valid: true,
                size: 0,
                seq: 77,
                time_us: 3,
                status,
                credits: 0xBEEF,
                integrity: None,
                epoch: 0,
            };
            let mut buf = [0u8; RESP_HDR];
            h.encode(&mut buf);
            let d = RespHeader::decode(&buf);
            assert_eq!(d.status, status);
            assert_eq!(d.credits, 0xBEEF);
            assert_eq!(d, h);
        }
    }

    #[test]
    fn resp_header_default_status_matches_legacy_layout() {
        // `Ok` + 0 credits must reproduce the original zero-filled tail.
        let h = RespHeader {
            valid: true,
            size: 17,
            seq: 5,
            time_us: 1200,
            status: RespStatus::Ok,
            credits: 0,
            integrity: None,
            epoch: 0,
        };
        let mut buf = [0xFFu8; RESP_HDR];
        h.encode(&mut buf);
        let mut legacy = [0u8; RESP_HDR];
        legacy[0..4].copy_from_slice(&(17u32 | (1 << 31)).to_le_bytes());
        legacy[4..8].copy_from_slice(&5u32.to_le_bytes());
        legacy[8..10].copy_from_slice(&1200u16.to_le_bytes());
        assert_eq!(buf, legacy);
    }

    #[test]
    fn resp_header_integrity_round_trip() {
        let h = RespHeader {
            valid: true,
            size: 4096,
            seq: 0xFEED_F00D,
            time_us: 12,
            status: RespStatus::Ok,
            credits: 3,
            integrity: Some(RespIntegrity {
                crc: 0x0123_4567_89AB_CDEF,
                generation: 0xDEAD_0042,
            }),
            epoch: 0,
        };
        assert_eq!(h.wire_len(), RESP_HDR_EXT);
        let mut buf = [0u8; RESP_HDR_EXT];
        h.encode(&mut buf);
        assert_eq!(RespHeader::decode(&buf), h);
        // Spare tail bytes stay zero for forward compatibility.
        assert_eq!(&buf[28..32], &[0, 0, 0, 0]);
    }

    #[test]
    fn resp_header_without_integrity_is_legacy_sized() {
        let h = RespHeader {
            valid: true,
            size: 1,
            seq: 2,
            time_us: 3,
            status: RespStatus::Ok,
            credits: 0,
            integrity: None,
            epoch: 0,
        };
        assert_eq!(h.wire_len(), RESP_HDR);
        // The integrity bit must be clear: decoding sees a legacy header.
        let mut buf = [0u8; RESP_HDR];
        h.encode(&mut buf);
        let word = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        assert_eq!(word & (1 << 30), 0);
    }

    #[test]
    fn canary_separates_seq_generation_and_zeroed_memory() {
        // Different (seq, generation) pairs must yield different
        // canaries, and no pair may collide with zero-filled memory.
        let mut seen = std::collections::BTreeSet::new();
        for seq in [0u32, 1, 2, 0xFFFF_FFFF] {
            for generation in [0u32, 1, 7, 0xFFFF_FFFF] {
                let c = resp_canary(seq, generation);
                assert_ne!(c, 0, "canary must never look like wiped memory");
                assert!(seen.insert(c), "canary collision at {seq}/{generation}");
            }
        }
        // And the tear signature: same seq, adjacent generations differ.
        assert_ne!(resp_canary(9, 1), resp_canary(9, 2));
    }

    #[test]
    fn status_byte_unknown_values_read_as_ok() {
        assert_eq!(RespStatus::from_u8(0), RespStatus::Ok);
        assert_eq!(RespStatus::from_u8(1), RespStatus::Busy);
        assert_eq!(RespStatus::from_u8(2), RespStatus::Shed);
        assert_eq!(RespStatus::from_u8(3), RespStatus::Fenced);
        assert_eq!(RespStatus::from_u8(200), RespStatus::Ok);
    }

    #[test]
    fn zeroed_buffer_decodes_invalid() {
        assert!(!ReqHeader::decode(&[0u8; REQ_HDR]).valid);
        let resp = RespHeader::decode(&[0u8; RESP_HDR]);
        assert!(!resp.valid);
        assert_eq!(resp.status, RespStatus::Ok);
        assert_eq!(resp.credits, 0);
    }

    #[test]
    fn slot_of_single_slot_ring_is_always_zero() {
        for seq in [1u32, 2, 3, 1000, u32::MAX, 0] {
            assert_eq!(slot_of(seq, 1), 0);
        }
    }

    #[test]
    fn slot_of_round_robins_consecutive_seqs() {
        // Consecutive seqs visit slots 0..W in order, then wrap.
        for window in [2usize, 4, 8, 16] {
            for seq in 1u32..=3 * window as u32 {
                assert_eq!(slot_of(seq, window), (seq as usize - 1) % window);
            }
        }
    }

    #[test]
    fn slot_of_same_slot_survives_seq_wraparound() {
        // A slot's seq counter advances by W per call; the mapping must
        // keep it in the same slot across the u32 wrap (power-of-two W).
        for window in [1usize, 2, 4, 8, 16] {
            for slot in 0..window {
                // Highest seq band ≡ slot + 1 (mod W) before the wrap.
                let near_wrap = (u32::MAX - window as u32 + 1).wrapping_add(slot as u32 + 1);
                assert_eq!(slot_of(near_wrap, window), slot);
                assert_eq!(slot_of(near_wrap.wrapping_add(window as u32), window), slot);
            }
        }
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversize_payload_rejected() {
        let h = ReqHeader {
            valid: true,
            size: u32::MAX,
            seq: 0,
            deadline: None,
            tenant: None,
            epoch: 0,
        };
        h.encode(&mut [0u8; REQ_HDR]);
    }
}
