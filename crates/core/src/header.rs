//! Buffer headers of the RFP wire protocol (paper Figure 7).
//!
//! Every request buffer starts with an 8-byte header carrying a status
//! bit and a 31-bit payload size; every response buffer starts with a
//! 16-byte header additionally carrying the paper's 16-bit server
//! response time. Both headers also carry a 32-bit sequence number — an
//! engineering detail the paper leaves implicit: the client must be able
//! to distinguish the response to its current call from a stale response
//! of the previous call without an extra round trip to clear the remote
//! status bit, and matching on the call sequence does exactly that.
//!
//! All fields are little-endian.

/// Size of the request header in bytes.
pub const REQ_HDR: usize = 8;

/// Size of the response header in bytes.
pub const RESP_HDR: usize = 16;

/// Maximum payload size encodable in the 31-bit size field.
pub const MAX_PAYLOAD: usize = (1 << 31) - 1;

const VALID_BIT: u32 = 1 << 31;

/// Decoded request header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReqHeader {
    /// Status bit: the request has fully arrived.
    pub valid: bool,
    /// Payload size in bytes.
    pub size: u32,
    /// Call sequence number.
    pub seq: u32,
}

impl ReqHeader {
    /// Encodes into the first [`REQ_HDR`] bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`REQ_HDR`] or `size` exceeds
    /// [`MAX_PAYLOAD`].
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(self.size as usize <= MAX_PAYLOAD, "payload too large");
        let word = self.size | if self.valid { VALID_BIT } else { 0 };
        buf[0..4].copy_from_slice(&word.to_le_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_le_bytes());
    }

    /// Decodes from the first [`REQ_HDR`] bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`REQ_HDR`].
    pub fn decode(buf: &[u8]) -> Self {
        let word = u32::from_le_bytes(buf[0..4].try_into().expect("len checked"));
        ReqHeader {
            valid: word & VALID_BIT != 0,
            size: word & !VALID_BIT,
            seq: u32::from_le_bytes(buf[4..8].try_into().expect("len checked")),
        }
    }
}

/// Decoded response header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RespHeader {
    /// Status bit: the response has been posted by the server.
    pub valid: bool,
    /// Payload size in bytes.
    pub size: u32,
    /// Call sequence number this response answers.
    pub seq: u32,
    /// Server-side process time in microseconds, saturating at
    /// `u16::MAX` (the paper's two-byte `time` field; clients use it to
    /// decide when to switch back from server-reply mode, §3.2).
    pub time_us: u16,
}

impl RespHeader {
    /// Encodes into the first [`RESP_HDR`] bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`RESP_HDR`] or `size` exceeds
    /// [`MAX_PAYLOAD`].
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(self.size as usize <= MAX_PAYLOAD, "payload too large");
        let word = self.size | if self.valid { VALID_BIT } else { 0 };
        buf[0..4].copy_from_slice(&word.to_le_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_le_bytes());
        buf[8..10].copy_from_slice(&self.time_us.to_le_bytes());
        buf[10..16].fill(0);
    }

    /// Decodes from the first [`RESP_HDR`] bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`RESP_HDR`].
    pub fn decode(buf: &[u8]) -> Self {
        let word = u32::from_le_bytes(buf[0..4].try_into().expect("len checked"));
        RespHeader {
            valid: word & VALID_BIT != 0,
            size: word & !VALID_BIT,
            seq: u32::from_le_bytes(buf[4..8].try_into().expect("len checked")),
            time_us: u16::from_le_bytes(buf[8..10].try_into().expect("len checked")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_header_round_trip() {
        let h = ReqHeader {
            valid: true,
            size: 12345,
            seq: 0xDEAD_BEEF,
        };
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        assert_eq!(ReqHeader::decode(&buf), h);
    }

    #[test]
    fn req_header_invalid_bit() {
        let h = ReqHeader {
            valid: false,
            size: MAX_PAYLOAD as u32,
            seq: 7,
        };
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        let d = ReqHeader::decode(&buf);
        assert!(!d.valid);
        assert_eq!(d.size as usize, MAX_PAYLOAD);
    }

    #[test]
    fn resp_header_round_trip() {
        let h = RespHeader {
            valid: true,
            size: 99,
            seq: 42,
            time_us: 65535,
        };
        let mut buf = [0u8; RESP_HDR];
        h.encode(&mut buf);
        assert_eq!(RespHeader::decode(&buf), h);
    }

    #[test]
    fn zeroed_buffer_decodes_invalid() {
        assert!(!ReqHeader::decode(&[0u8; REQ_HDR]).valid);
        assert!(!RespHeader::decode(&[0u8; RESP_HDR]).valid);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversize_payload_rejected() {
        let h = ReqHeader {
            valid: true,
            size: u32::MAX,
            seq: 0,
        };
        h.encode(&mut [0u8; REQ_HDR]);
    }
}
