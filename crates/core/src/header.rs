//! Buffer headers of the RFP wire protocol (paper Figure 7).
//!
//! Every request buffer starts with an 8-byte header carrying a status
//! bit and a 30-bit payload size; every response buffer starts with a
//! 16-byte header additionally carrying the paper's 16-bit server
//! response time. Both headers also carry a 32-bit sequence number — an
//! engineering detail the paper leaves implicit: the client must be able
//! to distinguish the response to its current call from a stale response
//! of the previous call without an extra round trip to clear the remote
//! status bit, and matching on the call sequence does exactly that.
//!
//! Two extensions ride in space the base format leaves unused, so that
//! a connection not using them stays byte-identical to the original
//! layout:
//!
//! * **request deadline** — bit 30 of the request word marks an extended
//!   16-byte header whose trailing 8 bytes carry the client-stamped
//!   absolute deadline (nanoseconds of sim time). The overload-control
//!   path stamps it so the server can shed requests that already missed
//!   their deadline (see [`crate::OverloadConfig`]); without it the bit
//!   is clear and the header is the classic 8 bytes.
//! * **response status + credits** — byte 10 of the response header
//!   carries a [`RespStatus`] (`Ok`/`Busy`/`Shed`) and bytes 11..13 a
//!   16-bit admission-credit advertisement. Both encode as zero for the
//!   default (`Ok`, 0 credits), which is exactly what the original
//!   format zero-filled there.
//!
//! All fields are little-endian.

use rfp_simnet::SimTime;

/// Size of the base request header in bytes.
pub const REQ_HDR: usize = 8;

/// Size of the extended request header (base + 8-byte deadline).
pub const REQ_HDR_EXT: usize = 16;

/// Size of the response header in bytes.
pub const RESP_HDR: usize = 16;

/// Maximum payload size encodable in the 30-bit size field.
pub const MAX_PAYLOAD: usize = (1 << 30) - 1;

const VALID_BIT: u32 = 1 << 31;
const DEADLINE_BIT: u32 = 1 << 30;
const SIZE_MASK: u32 = (1 << 30) - 1;

/// Server verdict carried in a response header.
///
/// `Busy` and `Shed` are the overload-control rejections: the request
/// was *not* executed (the server either had no queue room or saw the
/// stamped deadline already expired), so the client may safely resubmit
/// it under a fresh sequence number. Both verdicts carry an empty
/// payload — the whole point is that a rejection costs the client one
/// in-bound READ, not `R` of them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RespStatus {
    /// The request was executed; the payload is the result.
    Ok,
    /// Admission rejected: the server's bounded queue was full.
    Busy,
    /// Deadline shed: the request's stamped deadline had already passed
    /// when the server picked it up.
    Shed,
}

impl RespStatus {
    /// Wire encoding (one byte).
    pub fn to_u8(self) -> u8 {
        match self {
            RespStatus::Ok => 0,
            RespStatus::Busy => 1,
            RespStatus::Shed => 2,
        }
    }

    /// Decodes a wire byte; unknown values read as `Ok` so pre-extension
    /// peers (which zero-fill the byte) interoperate.
    pub fn from_u8(b: u8) -> Self {
        match b {
            1 => RespStatus::Busy,
            2 => RespStatus::Shed,
            _ => RespStatus::Ok,
        }
    }
}

/// Decoded request header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReqHeader {
    /// Status bit: the request has fully arrived.
    pub valid: bool,
    /// Payload size in bytes.
    pub size: u32,
    /// Call sequence number.
    pub seq: u32,
    /// Client-stamped absolute deadline, when the overload-control path
    /// stamped one. `None` encodes to the classic 8-byte header.
    pub deadline: Option<SimTime>,
}

impl ReqHeader {
    /// Bytes this header occupies on the wire ([`REQ_HDR`] or
    /// [`REQ_HDR_EXT`]); the payload starts at this offset.
    pub fn wire_len(&self) -> usize {
        if self.deadline.is_some() {
            REQ_HDR_EXT
        } else {
            REQ_HDR
        }
    }

    /// Encodes into the first [`wire_len`](ReqHeader::wire_len) bytes of
    /// `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the wire length or `size` exceeds
    /// [`MAX_PAYLOAD`].
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(self.size as usize <= MAX_PAYLOAD, "payload too large");
        let mut word = self.size | if self.valid { VALID_BIT } else { 0 };
        if self.deadline.is_some() {
            word |= DEADLINE_BIT;
        }
        buf[0..4].copy_from_slice(&word.to_le_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_le_bytes());
        if let Some(deadline) = self.deadline {
            buf[8..16].copy_from_slice(&deadline.as_nanos().to_le_bytes());
        }
    }

    /// Decodes from the first [`REQ_HDR`] bytes of `buf` (the first
    /// [`REQ_HDR_EXT`] when the deadline bit is set).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the encoded header.
    pub fn decode(buf: &[u8]) -> Self {
        let word = u32::from_le_bytes(buf[0..4].try_into().expect("len checked"));
        let deadline = if word & DEADLINE_BIT != 0 {
            Some(SimTime::from_nanos(u64::from_le_bytes(
                buf[8..16].try_into().expect("len checked"),
            )))
        } else {
            None
        };
        ReqHeader {
            valid: word & VALID_BIT != 0,
            size: word & SIZE_MASK,
            seq: u32::from_le_bytes(buf[4..8].try_into().expect("len checked")),
            deadline,
        }
    }
}

/// Decoded response header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RespHeader {
    /// Status bit: the response has been posted by the server.
    pub valid: bool,
    /// Payload size in bytes.
    pub size: u32,
    /// Call sequence number this response answers.
    pub seq: u32,
    /// Server-side process time in microseconds, saturating at
    /// `u16::MAX` (the paper's two-byte `time` field; clients use it to
    /// decide when to switch back from server-reply mode, §3.2).
    pub time_us: u16,
    /// Server verdict: executed, queue-full rejection, or deadline shed.
    pub status: RespStatus,
    /// Admission credits the server currently advertises on this
    /// connection (overload control; 0 when the subsystem is off).
    pub credits: u16,
}

impl RespHeader {
    /// Encodes into the first [`RESP_HDR`] bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`RESP_HDR`] or `size` exceeds
    /// [`MAX_PAYLOAD`].
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(self.size as usize <= MAX_PAYLOAD, "payload too large");
        let word = self.size | if self.valid { VALID_BIT } else { 0 };
        buf[0..4].copy_from_slice(&word.to_le_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_le_bytes());
        buf[8..10].copy_from_slice(&self.time_us.to_le_bytes());
        buf[10] = self.status.to_u8();
        buf[11..13].copy_from_slice(&self.credits.to_le_bytes());
        buf[13..16].fill(0);
    }

    /// Decodes from the first [`RESP_HDR`] bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`RESP_HDR`].
    pub fn decode(buf: &[u8]) -> Self {
        let word = u32::from_le_bytes(buf[0..4].try_into().expect("len checked"));
        RespHeader {
            valid: word & VALID_BIT != 0,
            size: word & SIZE_MASK,
            seq: u32::from_le_bytes(buf[4..8].try_into().expect("len checked")),
            time_us: u16::from_le_bytes(buf[8..10].try_into().expect("len checked")),
            status: RespStatus::from_u8(buf[10]),
            credits: u16::from_le_bytes(buf[11..13].try_into().expect("len checked")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_header_round_trip() {
        let h = ReqHeader {
            valid: true,
            size: 12345,
            seq: 0xDEAD_BEEF,
            deadline: None,
        };
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        assert_eq!(ReqHeader::decode(&buf), h);
    }

    #[test]
    fn req_header_invalid_bit() {
        let h = ReqHeader {
            valid: false,
            size: MAX_PAYLOAD as u32,
            seq: 7,
            deadline: None,
        };
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        let d = ReqHeader::decode(&buf);
        assert!(!d.valid);
        assert_eq!(d.size as usize, MAX_PAYLOAD);
    }

    #[test]
    fn req_header_deadline_round_trip() {
        let h = ReqHeader {
            valid: true,
            size: 64,
            seq: 9,
            deadline: Some(SimTime::from_nanos(123_456_789)),
        };
        assert_eq!(h.wire_len(), REQ_HDR_EXT);
        let mut buf = [0u8; REQ_HDR_EXT];
        h.encode(&mut buf);
        assert_eq!(ReqHeader::decode(&buf), h);
    }

    #[test]
    fn req_header_without_deadline_matches_legacy_layout() {
        // The pre-extension encoder wrote `size | VALID` then the seq and
        // nothing else; a deadline-less header must produce those exact
        // bytes (the byte-identical-when-off guarantee).
        let h = ReqHeader {
            valid: true,
            size: 300,
            seq: 0x0102_0304,
            deadline: None,
        };
        assert_eq!(h.wire_len(), REQ_HDR);
        let mut buf = [0u8; REQ_HDR];
        h.encode(&mut buf);
        let mut legacy = [0u8; REQ_HDR];
        legacy[0..4].copy_from_slice(&(300u32 | (1 << 31)).to_le_bytes());
        legacy[4..8].copy_from_slice(&0x0102_0304u32.to_le_bytes());
        assert_eq!(buf, legacy);
    }

    #[test]
    fn resp_header_round_trip() {
        let h = RespHeader {
            valid: true,
            size: 99,
            seq: 42,
            time_us: 65535,
            status: RespStatus::Ok,
            credits: 0,
        };
        let mut buf = [0u8; RESP_HDR];
        h.encode(&mut buf);
        assert_eq!(RespHeader::decode(&buf), h);
    }

    #[test]
    fn resp_header_status_and_credits_round_trip() {
        for status in [RespStatus::Ok, RespStatus::Busy, RespStatus::Shed] {
            let h = RespHeader {
                valid: true,
                size: 0,
                seq: 77,
                time_us: 3,
                status,
                credits: 0xBEEF,
            };
            let mut buf = [0u8; RESP_HDR];
            h.encode(&mut buf);
            let d = RespHeader::decode(&buf);
            assert_eq!(d.status, status);
            assert_eq!(d.credits, 0xBEEF);
            assert_eq!(d, h);
        }
    }

    #[test]
    fn resp_header_default_status_matches_legacy_layout() {
        // `Ok` + 0 credits must reproduce the original zero-filled tail.
        let h = RespHeader {
            valid: true,
            size: 17,
            seq: 5,
            time_us: 1200,
            status: RespStatus::Ok,
            credits: 0,
        };
        let mut buf = [0xFFu8; RESP_HDR];
        h.encode(&mut buf);
        let mut legacy = [0u8; RESP_HDR];
        legacy[0..4].copy_from_slice(&(17u32 | (1 << 31)).to_le_bytes());
        legacy[4..8].copy_from_slice(&5u32.to_le_bytes());
        legacy[8..10].copy_from_slice(&1200u16.to_le_bytes());
        assert_eq!(buf, legacy);
    }

    #[test]
    fn status_byte_unknown_values_read_as_ok() {
        assert_eq!(RespStatus::from_u8(0), RespStatus::Ok);
        assert_eq!(RespStatus::from_u8(1), RespStatus::Busy);
        assert_eq!(RespStatus::from_u8(2), RespStatus::Shed);
        assert_eq!(RespStatus::from_u8(200), RespStatus::Ok);
    }

    #[test]
    fn zeroed_buffer_decodes_invalid() {
        assert!(!ReqHeader::decode(&[0u8; REQ_HDR]).valid);
        let resp = RespHeader::decode(&[0u8; RESP_HDR]);
        assert!(!resp.valid);
        assert_eq!(resp.status, RespStatus::Ok);
        assert_eq!(resp.credits, 0);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversize_payload_rejected() {
        let h = ReqHeader {
            valid: true,
            size: u32::MAX,
            seq: 0,
            deadline: None,
        };
        h.encode(&mut [0u8; REQ_HDR]);
    }
}
