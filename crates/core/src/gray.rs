//! Gray-failure resilience: replica health scoring, hedged-request
//! pacing, and retry-storm budgets (DESIGN.md §16).
//!
//! A *gray* replica is one that still answers — no crash, no verb
//! error, no shed — but answers slowly: a fail-slow NIC, a flaky
//! sub-recovery-threshold link, a CPU-throttled serve loop. The
//! recovery layer of PR 2 is blind to it (every call eventually
//! succeeds) and the failover layer never triggers (nothing errors),
//! so tail latency quietly inflates. This module supplies the three
//! mechanisms the replica router uses against it:
//!
//! * [`ReplicaScorer`] — folds each replica's rolling
//!   [`ConnHealthReport`] windows into a 0..=1 health score against a
//!   frozen healthy baseline; the router demotes replicas whose score
//!   drops below [`GrayConfig::demote_below`].
//! * hedge pacing — [`GrayConfig::hedge_p99_factor`] ×
//!   the *baseline* (healthy) p99 derives the hedge delay: a request
//!   still unanswered after the latency that 99% of healthy calls
//!   beat is likely stuck behind a gray path, so a second leg is
//!   raced on another replica.
//! * [`RetryBudget`] — a token bucket shared by retries, hedges, and
//!   failover switches. Successes refill it; under a retry storm it
//!   drains, capping amplification and degrading to fail-fast
//!   (shedding the retry, never the first attempt).
//!
//! Everything here is inert until [`GrayConfig::enabled`] is set: the
//! router's checks are plain `Cell`/field loads, no RNG is drawn, no
//! instrument is created, so a disabled-knobs run stays byte-identical
//! to a build without the subsystem (pinned by
//! `gray_disabled_is_byte_identical` in `rfp-chaos`).

use std::cell::Cell;

use rfp_simnet::{ConnHealthReport, SimSpan};

/// Scoring thresholds of [`ReplicaScorer`]. Deliberately aligned with
/// the anomaly detector's defaults (`AnomalyConfig`) so a replica the
/// doctor would flag is also one the router de-prefers.
#[derive(Clone, Debug)]
pub struct ScorerConfig {
    /// Calls a window must carry before it can freeze the baseline.
    pub min_calls: u64,
    /// Calls a window must carry before it produces a fresh score.
    pub min_window_calls: u64,
    /// p99 inflation over baseline at which the latency penalty
    /// starts.
    pub latency_factor: f64,
    /// Retry-rate threshold: `baseline * retry_factor + retry_margin`.
    pub retry_factor: f64,
    /// Absolute slack added to the retry threshold.
    pub retry_margin: f64,
    /// Credit-gate pauses per window that count as starvation.
    pub credit_wait_min: u64,
}

impl Default for ScorerConfig {
    fn default() -> Self {
        ScorerConfig {
            min_calls: 16,
            min_window_calls: 4,
            latency_factor: 3.0,
            retry_factor: 3.0,
            retry_margin: 1.0,
            credit_wait_min: 1,
        }
    }
}

/// Token-bucket parameters of [`RetryBudget`].
#[derive(Clone, Debug)]
pub struct RetryBudgetConfig {
    /// Whether the budget gates retries/hedges at all.
    pub enabled: bool,
    /// Bucket capacity (also the initial fill).
    pub max_tokens: f64,
    /// Tokens returned per successful call, on top of refunding the
    /// call's unused reservation.
    pub refill_per_success: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            enabled: true,
            max_tokens: 16.0,
            refill_per_success: 0.5,
        }
    }
}

/// Master switch and tunables of the gray-failure subsystem, carried
/// by `FailoverConfig`. The default is **disabled**: every knob below
/// is dormant and the replica router behaves exactly as before.
#[derive(Clone, Debug)]
pub struct GrayConfig {
    /// Master switch. Off ⇒ the router's wire traffic and telemetry
    /// are byte-identical to a build without this subsystem.
    pub enabled: bool,
    /// Health-scored routing: demote gray replicas, probe them for
    /// recovery, de-prefer them probabilistically.
    pub scored_routing: bool,
    /// Hedged requests on the read path (`call_hedged`).
    pub hedging: bool,
    /// Scoring thresholds.
    pub scorer: ScorerConfig,
    /// Score below which a replica is demoted (0..=1).
    pub demote_below: f64,
    /// Every `probe_every`-th routed call still targets a demoted
    /// preferred replica, sampling it for recovery. 0 disables
    /// probing. The default keeps probe traffic under 1% of routed
    /// reads so a demoted replica cannot drag the read p99 back up
    /// (p99 tolerates 1% of slow samples); lower it when a test wants
    /// fast recovery detection.
    pub probe_every: u32,
    /// Hedge delay = healthy-baseline p99 × this factor (clamped to
    /// `hedge_floor` from below).
    pub hedge_p99_factor: f64,
    /// Minimum hedge delay, and the delay used before any baseline
    /// exists.
    pub hedge_floor: SimSpan,
    /// Overall deadline of one hedged call; past it the router gives
    /// up on both legs.
    pub hedge_deadline: SimSpan,
    /// Retry/hedge token bucket.
    pub budget: RetryBudgetConfig,
    /// Seed of the router's de-preference draw stream (private
    /// `StdRng`, never the simulation RNG — scoring decisions do not
    /// perturb unrelated event timing).
    pub seed: u64,
}

impl Default for GrayConfig {
    fn default() -> Self {
        GrayConfig {
            enabled: false,
            scored_routing: true,
            hedging: true,
            scorer: ScorerConfig::default(),
            demote_below: 0.5,
            probe_every: 256,
            hedge_p99_factor: 1.0,
            hedge_floor: SimSpan::micros(5),
            hedge_deadline: SimSpan::millis(2),
            budget: RetryBudgetConfig::default(),
            seed: 0x6B4A_9E21,
        }
    }
}

impl GrayConfig {
    /// An enabled config with every mechanism on — the mitigated cell
    /// of the `grayfail` sweep.
    pub fn all_on() -> Self {
        GrayConfig {
            enabled: true,
            ..GrayConfig::default()
        }
    }

    /// Enabled with scored routing only (no hedging) — the sweep's
    /// middle cell.
    pub fn routing_only() -> Self {
        GrayConfig {
            enabled: true,
            hedging: false,
            ..GrayConfig::default()
        }
    }
}

/// Frozen healthy reference of one replica.
#[derive(Copy, Clone, Debug)]
struct ScoreBaseline {
    p50_ns: u64,
    p99_ns: u64,
    retry_rate: f64,
}

/// Folds per-replica [`ConnHealthReport`] windows into a health score
/// in 0..=1 (1 = healthy). The first sufficiently-populated window of
/// each replica freezes its baseline; later windows are scored by
/// accumulating penalties:
///
/// * **median** inflation past `latency_factor` × baseline p50: 0.25
///   plus up to 0.5 more as the ratio doubles past the threshold. The
///   median is the primary latency signal deliberately: a whole-replica
///   fail-slow fault drags *every* call, so p50 inflates as hard as
///   p99, while a handful of poisoned samples (a hedge observed late
///   because the racing loop was blocked on the gray peer, one probe
///   in a fast window) can own a window's p99 without meaning the
///   replica is sick;
/// * **tail-only** regression (p99 past `latency_factor` × baseline
///   p99 with the median still healthy): 0.25 — evidence, but never
///   demoting alone;
/// * retry rate past `baseline × retry_factor + retry_margin`: 0.25;
/// * credit starvation (`credit_waits ≥ credit_wait_min`): 0.15;
/// * any hard-failure signal (verb errors, reconnects): 0.5.
///
/// `score = max(0, 1 − Σ penalties)`. A replica whose median inflates
/// past 1.25× the latency factor (3.75× baseline at defaults) crosses
/// the default demotion threshold of 0.5 on latency alone — a pure
/// fail-slow fault demotes without any hard-failure evidence, and the
/// gradient is steep enough that even a flaky link whose inflation is
/// *capped* by RC retransmission limits (~8 rounds per verb) clears
/// it — and a milder regression paired with a retry spike demotes
/// too. A replica
/// that is slow for only a small fraction of requests keeps a degraded
/// (but above-threshold) score; intermittent grayness is surfaced by
/// the anomaly detector, not routed around.
pub struct ReplicaScorer {
    cfg: ScorerConfig,
    baselines: Vec<Cell<Option<ScoreBaseline>>>,
}

impl ReplicaScorer {
    /// A scorer for `replicas` replicas with no baselines yet.
    pub fn new(cfg: ScorerConfig, replicas: usize) -> Self {
        ReplicaScorer {
            cfg,
            baselines: (0..replicas).map(|_| Cell::new(None)).collect(),
        }
    }

    /// Scores replica `i`'s current window. Returns `None` until a
    /// baseline exists *and* the window carries enough calls — an
    /// unknown replica is neither preferred nor demoted. The first
    /// call with a populated window freezes the baseline (and returns
    /// `None`: the baseline window scores nothing against itself).
    pub fn score(&self, i: usize, report: &ConnHealthReport) -> Option<f64> {
        let slot = &self.baselines[i];
        let Some(base) = slot.get() else {
            if report.calls >= self.cfg.min_calls {
                slot.set(Some(ScoreBaseline {
                    p50_ns: report.p50_ns.max(1),
                    p99_ns: report.p99_ns.max(1),
                    retry_rate: report.retry_rate,
                }));
            }
            return None;
        };
        if report.calls < self.cfg.min_window_calls {
            return None;
        }
        let mut penalty = 0.0;
        let p50_ratio = report.p50_ns as f64 / base.p50_ns as f64;
        let p99_ratio = report.p99_ns as f64 / base.p99_ns as f64;
        if p50_ratio > self.cfg.latency_factor {
            let f = self.cfg.latency_factor;
            penalty += 0.25 + 0.5 * ((p50_ratio - f) / (f / 2.0)).min(1.0);
        } else if p99_ratio > self.cfg.latency_factor {
            penalty += 0.25;
        }
        if report.retry_rate > base.retry_rate * self.cfg.retry_factor + self.cfg.retry_margin {
            penalty += 0.25;
        }
        if report.credit_waits >= self.cfg.credit_wait_min {
            penalty += 0.15;
        }
        if report.verb_errors + report.reconnects > 0 {
            penalty += 0.5;
        }
        Some((1.0 - penalty).max(0.0))
    }

    /// The frozen healthy-baseline p99 of replica `i`, once captured.
    /// The hedge delay derives from it.
    pub fn baseline_p99(&self, i: usize) -> Option<u64> {
        self.baselines[i].get().map(|b| b.p99_ns)
    }

    /// Whether replica `i`'s baseline has been frozen.
    pub fn has_baseline(&self, i: usize) -> bool {
        self.baselines[i].get().is_some()
    }
}

/// Per-client retry-storm budget: a token bucket drawn on by retries,
/// hedge legs, and failover switches, refilled by successes.
///
/// Invariants (DESIGN.md §16):
///
/// * the **first attempt of a call is never gated** — an empty bucket
///   degrades retries to fail-fast, it does not black-hole traffic;
/// * a call **reserves** its retry allowance up front and **refunds**
///   what it did not use, so concurrent callers cannot over-commit
///   the pool;
/// * total retry amplification is bounded: past the initial
///   `max_tokens` burst, sustained retries-per-success cannot exceed
///   `refill_per_success`, because each retry consumes a token that
///   only a success puts back.
pub struct RetryBudget {
    cfg: RetryBudgetConfig,
    tokens: Cell<f64>,
    /// Retry/hedge/failover grants denied because the bucket was dry.
    denied: Cell<u64>,
    /// Tokens irrevocably consumed (granted and not refunded).
    spent: Cell<u64>,
}

impl RetryBudget {
    pub fn new(cfg: RetryBudgetConfig) -> Self {
        let tokens = Cell::new(cfg.max_tokens);
        RetryBudget {
            cfg,
            tokens,
            denied: Cell::new(0),
            spent: Cell::new(0),
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens.get()
    }

    /// Reserves up to `want` whole tokens; returns how many were
    /// granted (0 when the bucket is dry). A grant of less than `want`
    /// bumps the denied counter once.
    pub fn reserve(&self, want: u32) -> u32 {
        if !self.cfg.enabled || want == 0 {
            return want;
        }
        let have = self.tokens.get().floor().max(0.0) as u32;
        let granted = want.min(have);
        if granted < want {
            self.denied.set(self.denied.get() + 1);
        }
        self.tokens.set(self.tokens.get() - granted as f64);
        self.spent.set(self.spent.get() + granted as u64);
        granted
    }

    /// Returns `unused` tokens of an earlier reservation.
    pub fn refund(&self, unused: u32) {
        if !self.cfg.enabled || unused == 0 {
            return;
        }
        self.spent
            .set(self.spent.get().saturating_sub(unused as u64));
        self.tokens
            .set((self.tokens.get() + unused as f64).min(self.cfg.max_tokens));
    }

    /// Books one successful call: refills the bucket.
    pub fn on_success(&self) {
        if !self.cfg.enabled {
            return;
        }
        self.tokens
            .set((self.tokens.get() + self.cfg.refill_per_success).min(self.cfg.max_tokens));
    }

    /// Reservations that came back short because the bucket was dry.
    pub fn denied(&self) -> u64 {
        self.denied.get()
    }

    /// Tokens consumed and never refunded — the storm-amplification
    /// ledger the `grayfail` sweep asserts against.
    pub fn consumed(&self) -> u64 {
        self.spent.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_simnet::SimTime;

    fn report(calls: u64, p99_ns: u64, retry_rate: f64) -> ConnHealthReport {
        ConnHealthReport {
            conn: 0,
            window_start: SimTime::ZERO,
            window_end: SimTime::ZERO,
            calls,
            p50_ns: p99_ns / 2,
            p99_ns,
            p999_ns: p99_ns,
            mean_ns: p99_ns / 2,
            max_ns: p99_ns,
            retry_rate,
            shed_rate: 0.0,
            corrupt_rate: 0.0,
            sheds: 0,
            busys: 0,
            corrupts: 0,
            credit_waits: 0,
            stalls: 0,
            reconnects: 0,
            verb_errors: 0,
            failovers: 0,
            inflight_peak: 1,
            mean_result_bytes: 64.0,
            mean_process_ns: 1000.0,
            result_sizes: Vec::new(),
        }
    }

    #[test]
    fn scorer_freezes_baseline_then_scores() {
        let s = ReplicaScorer::new(ScorerConfig::default(), 2);
        // Thin window: neither baseline nor score.
        assert_eq!(s.score(0, &report(3, 10_000, 0.0)), None);
        assert!(!s.has_baseline(0));
        // Populated healthy window freezes the baseline.
        assert_eq!(s.score(0, &report(100, 10_000, 0.1)), None);
        assert_eq!(s.baseline_p99(0), Some(10_000));
        // A healthy follow-up window scores 1.0.
        assert_eq!(s.score(0, &report(50, 12_000, 0.1)), Some(1.0));
        // Replica 1 is independent.
        assert!(!s.has_baseline(1));
    }

    #[test]
    fn pure_latency_regression_drops_below_demotion_threshold() {
        let s = ReplicaScorer::new(ScorerConfig::default(), 1);
        s.score(0, &report(100, 10_000, 0.0));
        // 10x the baseline p99, no other signal: penalty 0.1 + 0.5.
        let score = s.score(0, &report(20, 100_000, 0.0)).unwrap();
        assert!(score < 0.5, "fail-slow alone must demote, got {score}");
        // Mild inflation below the factor keeps the replica healthy.
        assert_eq!(s.score(0, &report(20, 25_000, 0.0)), Some(1.0));
    }

    #[test]
    fn tail_only_regression_degrades_but_does_not_demote() {
        let s = ReplicaScorer::new(ScorerConfig::default(), 1);
        s.score(0, &report(100, 10_000, 0.0));
        // A few poisoned samples own the window p99 (20x) while the
        // median stays healthy: evidence, not a demotion.
        let mut r = report(200, 200_000, 0.0);
        r.p50_ns = 5_500;
        let score = s.score(0, &r).unwrap();
        assert_eq!(score, 0.75, "tail-only regression costs 0.25, got {score}");
    }

    #[test]
    fn hard_failure_signals_stack_with_latency() {
        let s = ReplicaScorer::new(ScorerConfig::default(), 1);
        s.score(0, &report(100, 10_000, 0.0));
        let mut r = report(20, 40_000, 5.0);
        r.verb_errors = 2;
        r.credit_waits = 3;
        let score = s.score(0, &r).unwrap();
        assert_eq!(score, 0.0, "stacked penalties clamp at zero");
    }

    #[test]
    fn budget_reserves_refunds_and_refills() {
        let b = RetryBudget::new(RetryBudgetConfig {
            enabled: true,
            max_tokens: 4.0,
            refill_per_success: 0.5,
        });
        assert_eq!(b.reserve(3), 3);
        assert_eq!(b.tokens(), 1.0);
        // Dry-ish bucket grants what it has and counts the denial.
        assert_eq!(b.reserve(3), 1);
        assert_eq!(b.denied(), 1);
        assert_eq!(b.reserve(2), 0);
        assert_eq!(b.denied(), 2);
        // Refund + refill restore headroom, capped at the maximum.
        b.refund(2);
        b.on_success();
        assert_eq!(b.tokens(), 2.5);
        for _ in 0..20 {
            b.on_success();
        }
        assert_eq!(b.tokens(), 4.0, "refill saturates at max_tokens");
    }

    #[test]
    fn disabled_budget_grants_everything_and_counts_nothing() {
        let b = RetryBudget::new(RetryBudgetConfig {
            enabled: false,
            ..RetryBudgetConfig::default()
        });
        assert_eq!(b.reserve(1_000), 1_000);
        assert_eq!(b.denied(), 0);
        assert_eq!(b.consumed(), 0);
        assert_eq!(b.tokens(), RetryBudgetConfig::default().max_tokens);
    }

    #[test]
    fn gray_config_defaults_are_dormant() {
        let g = GrayConfig::default();
        assert!(!g.enabled);
        assert!(g.scored_routing && g.hedging, "knobs armed but gated");
        assert!(GrayConfig::all_on().enabled);
        assert!(!GrayConfig::routing_only().hedging);
    }
}
