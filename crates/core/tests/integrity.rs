//! End-to-end fetch-integrity tests: poisoned READs never surface to
//! callers, the two-segment fetch accounts its actual remainder, and
//! persistent corruption escalates through the recovery path.

use std::cell::Cell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_core::{
    connect, serve_loop, IntegrityConfig, RecoveryConfig, RespStatus, RfpConfig, RfpTelemetry,
    RESP_HDR, RESP_HDR_EXT, RESP_TRAILER,
};
use rfp_rnic::{Cluster, ClusterProfile, Machine};
use rfp_simnet::{MetricsRegistry, RetryPolicy, SimSpan, Simulation, SpanRecorder};

/// Echo rig over two machines; returns `(client, client machine, server
/// machine)` with the serve loop already spawned.
fn echo_rig(
    sim: &mut Simulation,
    cfg: RfpConfig,
) -> (Rc<rfp_core::RfpClient>, Rc<Machine>, Rc<Machine>) {
    let cluster = Cluster::new(sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let client = Rc::new(client);
    client.set_reconnect(cluster.qp_factory(0, 1));
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    (client, cm, sm)
}

fn integrity_cfg(registry: &MetricsRegistry) -> RfpConfig {
    RfpConfig {
        integrity: IntegrityConfig {
            enabled: true,
            ..IntegrityConfig::default()
        },
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: SpanRecorder::new(16),
            prefix: "rfp.client.0".to_string(),
            track: 0,
        }),
        ..RfpConfig::default()
    }
}

/// Under heavy torn-DMA and bit-flip fault rates, every plain call still
/// echoes its payload exactly — corrupt fetched images are discarded and
/// refetched, never surfaced.
#[test]
fn echo_survives_torn_dma_and_bit_flips() {
    let mut sim = Simulation::new(99);
    let registry = MetricsRegistry::new();
    let (client, cm, sm) = echo_rig(&mut sim, integrity_cfg(&registry));
    sm.faults().set_torn_dma(0.05);
    sm.faults().set_bitflip(0.05);

    let ct = cm.thread("client");
    let retries = Rc::new(Cell::new(0u64));
    let done = Rc::new(Cell::new(0u32));
    let (r, d) = (Rc::clone(&retries), Rc::clone(&done));
    sim.spawn(async move {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let len = rng.gen_range(0..1500usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let out = client.call(&ct, &payload).await;
            assert_eq!(out.data, payload, "corrupt payload surfaced to the caller");
            assert_eq!(out.info.status, RespStatus::Ok);
            r.set(r.get() + out.info.integrity_retries as u64);
            d.set(d.get() + 1);
        }
    });
    sim.run_for(SimSpan::millis(50));
    assert_eq!(done.get(), 300, "echo loop wedged under faults");
    assert!(
        retries.get() > 0,
        "5% fault rates over 300 calls must manufacture at least one corrupt fetch"
    );
    // The per-class counters materialised and agree with the total.
    let torn = registry.counter("fetch.torn").get();
    let crc = registry.counter("fetch.crc_fail").get();
    assert_eq!(
        torn + crc,
        registry.counter("fetch.integrity_retries").get()
    );
    assert_eq!(torn + crc, retries.get());
}

/// The recovery path tolerates the same fault rates: every
/// `call_with_recovery` completes `Ok` with an intact payload.
#[test]
fn recovery_calls_survive_fault_windows() {
    let mut sim = Simulation::new(41);
    let registry = MetricsRegistry::new();
    let (client, cm, sm) = echo_rig(&mut sim, integrity_cfg(&registry));
    sm.faults().set_torn_dma(0.03);
    sm.faults().set_bitflip(0.03);

    let ct = cm.thread("client");
    let done = Rc::new(Cell::new(0u32));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        let rec = RecoveryConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let len = rng.gen_range(0..1200usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let out = client
                .call_with_recovery(&ct, &payload, &rec)
                .await
                .expect("recovery call failed under moderate fault rates");
            assert_eq!(out.data, payload, "corrupt payload surfaced via recovery");
            d.set(d.get() + 1);
        }
    });
    sim.run_for(SimSpan::millis(100));
    assert_eq!(done.get(), 200, "recovery loop wedged under faults");
}

/// Pins the two-segment accounting: the second READ is charged with the
/// *actual* remainder — wire header and (with integrity on) trailer
/// included — so `fetch.bytes` minus that remainder is a whole number of
/// first-segment polls.
fn pin_two_segment_accounting(integrity: bool) {
    let mut sim = Simulation::new(5);
    let registry = MetricsRegistry::new();
    let cfg = if integrity {
        integrity_cfg(&registry)
    } else {
        RfpConfig {
            telemetry: Some(RfpTelemetry {
                registry: registry.clone(),
                spans: SpanRecorder::new(16),
                prefix: "rfp.client.0".to_string(),
                track: 0,
            }),
            ..RfpConfig::default()
        }
    };
    let f = cfg.fetch_size;
    let (client, cm, _sm) = echo_rig(&mut sim, cfg);
    let payload = 500usize; // > F - header: always a two-segment fetch
    let hdr = if integrity { RESP_HDR_EXT } else { RESP_HDR };
    let trailer = if integrity { RESP_TRAILER } else { 0 };
    let rest = (hdr + payload + trailer - f) as u64;

    let ct = cm.thread("client");
    let extra = Rc::new(Cell::new(false));
    let e = Rc::clone(&extra);
    sim.spawn(async move {
        let out = client.call(&ct, &vec![0xABu8; payload]).await;
        assert_eq!(out.data.len(), payload);
        e.set(out.info.extra_read);
    });
    sim.run_for(SimSpan::millis(1));
    assert!(
        extra.get(),
        "a {payload}-byte echo at F={f} needs a second READ"
    );

    let bytes = registry.counter("rfp.client.0.fetch.bytes").get();
    assert!(bytes > rest, "no first-segment fetch was accounted");
    assert_eq!(
        (bytes - rest) % f as u64,
        0,
        "second READ must account exactly header + payload + trailer - F = {rest} \
         on top of whole F-byte polls (got {bytes} total)"
    );
}

#[test]
fn two_segment_fetch_accounts_remainder_with_integrity_off() {
    pin_two_segment_accounting(false);
}

#[test]
fn two_segment_fetch_accounts_remainder_with_integrity_on() {
    pin_two_segment_accounting(true);
}

/// With the layer off, fault knobs at zero, the info field stays zero
/// and no integrity instrument is ever materialised — the off-is-inert
/// telemetry half.
#[test]
fn integrity_off_creates_no_instruments() {
    let mut sim = Simulation::new(11);
    let registry = MetricsRegistry::new();
    let cfg = RfpConfig {
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: SpanRecorder::new(16),
            prefix: "rfp.client.0".to_string(),
            track: 0,
        }),
        ..RfpConfig::default()
    };
    let (client, cm, _sm) = echo_rig(&mut sim, cfg);
    let ct = cm.thread("client");
    sim.spawn(async move {
        for i in 0..20u32 {
            let out = client.call(&ct, &i.to_le_bytes()).await;
            assert_eq!(out.data, i.to_le_bytes());
            assert_eq!(out.info.integrity_retries, 0);
        }
    });
    sim.run_for(SimSpan::millis(5));
    for name in registry.names() {
        assert!(
            !name.starts_with("fetch.torn")
                && !name.starts_with("fetch.crc_fail")
                && !name.starts_with("fetch.integrity_retries"),
            "integrity instrument {name} materialised on a clean integrity-off run"
        );
    }
}

/// Persistent corruption exhausts the per-attempt verify-and-refetch
/// budget (`FailureCause::Corrupt`), escalates to a QP re-establish, and
/// — when the corruption never clears — fails the call rather than
/// spinning forever.
#[test]
fn persistent_corruption_escalates_then_fails() {
    let mut sim = Simulation::new(23);
    let registry = MetricsRegistry::new();
    let (client, cm, sm) = echo_rig(&mut sim, integrity_cfg(&registry));
    // Every READ image carries a flipped bit, and the payload below
    // fills the whole fetch window, so every flip lands inside the
    // verified header + payload + trailer range: no fetch ever verifies.
    sm.faults().set_bitflip(1.0);

    let ct = cm.thread("client");
    let failed = Rc::new(Cell::new(false));
    let fl = Rc::clone(&failed);
    sim.spawn(async move {
        let rec = RecoveryConfig {
            fetch_deadline: SimSpan::micros(50),
            retry: RetryPolicy::exponential(4, SimSpan::micros(5), SimSpan::micros(40), 0.2),
            ..RecoveryConfig::default()
        };
        let err = client
            .call_with_recovery(&ct, &[0x5Au8; 300], &rec)
            .await
            .expect_err("no fetch can verify at p=1.0 bit flips");
        assert!(err.attempts > 0);
        fl.set(true);
    });
    sim.run_for(SimSpan::millis(20));
    assert!(failed.get(), "recovery call neither failed nor completed");
    assert!(
        registry.counter("recovery.corrupt_attempts").get() > 0,
        "no attempt exhausted its verify-and-refetch budget"
    );
    assert!(
        registry.counter("recovery.reconnects").get() > 0,
        "corrupt exhaustion must escalate to a QP re-establish"
    );
}

/// Once a fault window closes, the same client completes calls cleanly
/// again — corruption is a condition, not a terminal state.
#[test]
fn client_recovers_after_fault_window_closes() {
    let mut sim = Simulation::new(17);
    let registry = MetricsRegistry::new();
    let (client, cm, sm) = echo_rig(&mut sim, integrity_cfg(&registry));
    sm.faults().set_torn_dma(0.2);
    sm.faults().set_bitflip(0.2);

    let ct = cm.thread("client");
    let server_m = Rc::clone(&sm);
    let clean_retries = Rc::new(Cell::new(0u64));
    let done = Rc::new(Cell::new(false));
    let (cr, d) = (Rc::clone(&clean_retries), Rc::clone(&done));
    sim.spawn(async move {
        let rec = RecoveryConfig::default();
        for i in 0..50u32 {
            let out = client
                .call_with_recovery(&ct, &i.to_le_bytes(), &rec)
                .await
                .expect("call failed during the fault window");
            assert_eq!(out.data, i.to_le_bytes());
        }
        // Window closes; from here on the layer must be silent.
        server_m.faults().set_torn_dma(0.0);
        server_m.faults().set_bitflip(0.0);
        for i in 0..50u32 {
            let out = client
                .call_with_recovery(&ct, &i.to_le_bytes(), &rec)
                .await
                .expect("call failed after the fault window closed");
            assert_eq!(out.data, i.to_le_bytes());
            cr.set(cr.get() + out.info.integrity_retries as u64);
        }
        d.set(true);
    });
    sim.run_for(SimSpan::millis(100));
    assert!(done.get(), "loop wedged");
    assert_eq!(
        clean_retries.get(),
        0,
        "integrity retries after the fault window closed"
    );
}
