//! Pipelined-driver equivalence and isolation.
//!
//! The contract under test: with `window = 1` the pipelined driver *is*
//! the sequential client — every wire op, CPU charge, span milestone and
//! instrument lands identically — and with a wide window each call still
//! surfaces exactly its own payload, whatever the slot interleaving.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use rfp_core::{connect, serve_loop, CallResult, RfpClient, RfpConfig, RfpTelemetry};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{MetricsRegistry, SimSpan, Simulation, SpanRecorder};

/// Everything observable about one driver run: per-call results, the
/// connection's registry instruments, and the recorded lifecycle spans.
struct Observed {
    datas: Vec<Vec<u8>>,
    infos: Vec<String>,
    registry_json: String,
    spans: String,
    stats: String,
    doorbells: u64,
}

/// Runs `reqs` through an echo server on a fresh deterministic sim —
/// sequentially (`call` per request) or through `call_pipelined` — and
/// captures every telemetry surface the connection exposes.
fn run_echo(seed: u64, window: usize, reqs: &[Vec<u8>], pipelined: bool) -> Observed {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let registry = MetricsRegistry::new();
    let spans = SpanRecorder::new(256);
    let cfg = RfpConfig {
        window,
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: spans.clone(),
            prefix: "rfp.c0".to_string(),
            track: 0,
        }),
        ..RfpConfig::default()
    };
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let client = Rc::new(client);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let out: Rc<RefCell<Vec<CallResult>>> = Rc::new(RefCell::new(Vec::new()));
    let (o, c, reqs_in) = (Rc::clone(&out), Rc::clone(&client), reqs.to_vec());
    sim.spawn(async move {
        if pipelined {
            *o.borrow_mut() = c.call_pipelined(&ct, &reqs_in).await;
        } else {
            for req in &reqs_in {
                let one = c.call(&ct, req).await;
                o.borrow_mut().push(one);
            }
        }
    });
    // Step until the driver finishes rather than running a fixed long
    // window: an idle serve loop generates events every spin, so extra
    // simulated time is pure test-suite cost. Both drivers of an
    // equivalent pair finish at the same instant, hence after the same
    // number of steps — the observation point stays comparable.
    for _ in 0..400 {
        if out.borrow().len() == reqs.len() {
            break;
        }
        sim.run_for(SimSpan::micros(50));
    }

    let results = out.borrow();
    assert_eq!(results.len(), reqs.len(), "driver did not finish in time");
    let mut registry_json = Vec::new();
    registry
        .snapshot()
        .write_json(&mut registry_json)
        .expect("registry json");
    let st = client.stats();
    Observed {
        datas: results.iter().map(|r| r.data.clone()).collect(),
        infos: results.iter().map(|r| format!("{:?}", r.info)).collect(),
        registry_json: String::from_utf8(registry_json).expect("utf8 json"),
        spans: format!("{:?}", spans.snapshot()),
        stats: format!(
            "calls={} mean_attempts={} extra_reads={} hist={:?} max_attempts={}",
            st.calls(),
            st.mean_attempts(),
            st.extra_reads(),
            st.attempts_histogram(),
            st.max_attempts(),
        ),
        doorbells: st.doorbells(),
    }
}

fn observe_client_stats(client: &RfpClient) -> String {
    let st = client.stats();
    format!(
        "calls={} doorbells={} doorbell_reads={} single_reads={}",
        st.calls(),
        st.doorbells(),
        st.doorbell_reads(),
        st.single_reads()
    )
}

proptest! {
    /// `W = 1` inertness at the driver level: for any request batch, the
    /// pipelined driver produces byte-identical payloads, per-call
    /// diagnostics (including latencies — i.e. the same simulated event
    /// schedule), registry instruments, and lifecycle spans as issuing
    /// the same requests one `call` at a time.
    #[test]
    fn w1_pipelined_is_identical_to_sequential_calls(
        seed in 0u64..200,
        reqs in vec(vec(any::<u8>(), 0..700), 1..8),
    ) {
        let seq = run_echo(seed, 1, &reqs, false);
        let pipe = run_echo(seed, 1, &reqs, true);
        prop_assert_eq!(&seq.datas, &pipe.datas);
        prop_assert_eq!(&seq.infos, &pipe.infos);
        prop_assert_eq!(&seq.registry_json, &pipe.registry_json);
        prop_assert_eq!(&seq.spans, &pipe.spans);
        prop_assert_eq!(&seq.stats, &pipe.stats);
        // A window of one can never batch two fetches: the doorbell
        // path must be unreachable.
        prop_assert_eq!(pipe.doorbells, 0);
    }

    /// Slot isolation on the healthy path: with a wide window and
    /// per-request distinctive payloads of varying lengths, every call
    /// surfaces exactly its own bytes (a stale scratch tail, a cross-slot
    /// read, or a mis-mapped seq would all show up as a foreign payload).
    #[test]
    fn pipelined_calls_surface_their_own_payloads(
        seed in 0u64..200,
        window_log2 in 1u32..5,
        lens in vec(1usize..900, 1..40),
    ) {
        let window = 1usize << window_log2;
        let reqs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len).map(|j| (i as u8) ^ (j as u8).wrapping_mul(31)).collect()
            })
            .collect();
        let out = run_echo(seed, window, &reqs, true);
        prop_assert_eq!(&out.datas, &reqs);
    }
}

/// Deterministic companion: mixed payload lengths through one wide-window
/// connection, long-then-short-then-long, pinning that the recycled READ
/// scratch and per-slot reassembly never leak bytes between calls — and
/// that the batch actually exercised the shared-doorbell path.
#[test]
fn mixed_length_batch_reuses_buffers_without_leaks() {
    let mut sim = Simulation::new(9);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        window: 4,
        ..RfpConfig::default()
    };
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let client = Rc::new(client);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let reqs: Vec<Vec<u8>> = [600usize, 3, 512, 16, 700, 1, 64, 300]
        .iter()
        .enumerate()
        .map(|(i, &len)| vec![0x10 + i as u8; len])
        .collect();
    let done = Rc::new(RefCell::new(None));
    let (d, c, reqs_in) = (Rc::clone(&done), Rc::clone(&client), reqs.clone());
    sim.spawn(async move {
        *d.borrow_mut() = Some(c.call_pipelined(&ct, &reqs_in).await);
    });
    sim.run_for(SimSpan::millis(5));
    let outs = done.borrow_mut().take().expect("batch finished");
    for (req, out) in reqs.iter().zip(&outs) {
        assert_eq!(&out.data, req, "payload leaked between slots");
    }
    let snap = observe_client_stats(&client);
    assert!(
        client.stats().doorbells() > 0,
        "wide batch never shared a doorbell: {snap}"
    );
}
