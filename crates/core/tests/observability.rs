//! The observability plane's overhead pin.
//!
//! Contract under test: the flight recorder and health plane are pure
//! *observers*. Attaching them to the headline pipelined workload (32 B
//! payloads, W = 16) must leave every pre-existing surface — payloads,
//! per-call diagnostics (latencies included, i.e. the simulated event
//! schedule itself), registry instruments, NIC counters — byte-identical
//! to a run with observability off. In simulated time the enabled cost
//! is exactly zero, which trivially satisfies the ≤2% budget on the
//! headline bar.

use std::cell::RefCell;
use std::rc::Rc;

use rfp_core::{connect, serve_loop, CallResult, RfpConfig, RfpTelemetry};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{
    AnomalyConfig, AnomalyDetector, AnomalyKind, FlightRecorder, HealthHub, MetricsRegistry,
    SimSpan, Simulation, SpanRecorder,
};

/// Everything a run exposes that predates the observability plane.
struct Legacy {
    datas: Vec<Vec<u8>>,
    infos: Vec<String>,
    registry_json: String,
    spans: String,
    nic: String,
    end: rfp_simnet::SimTime,
}

/// Runs the headline bar — batches of 32 B echo calls through one W=16
/// pipelined connection — with observability off (`obs = None`) or on,
/// and captures every legacy surface.
fn run_headline(seed: u64, obs: Option<(&FlightRecorder, &HealthHub)>) -> Legacy {
    const BATCHES: usize = 6;
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let registry = MetricsRegistry::new();
    let spans = SpanRecorder::new(1024);
    let cfg = RfpConfig {
        window: 16,
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: spans.clone(),
            prefix: "rfp.c0".to_string(),
            track: 0,
        }),
        recorder: obs.map(|(r, _)| r.clone()),
        health: obs.map(|(_, h)| h.clone()),
        ..RfpConfig::default()
    };
    if let Some((recorder, _)) = obs {
        cluster.attach_recorder(recorder);
    }
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let client = Rc::new(client);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let reqs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i ^ 0x5A; 32]).collect();
    let out: Rc<RefCell<Vec<CallResult>>> = Rc::new(RefCell::new(Vec::new()));
    let (o, c) = (Rc::clone(&out), Rc::clone(&client));
    sim.spawn(async move {
        for _ in 0..BATCHES {
            let outs = c.call_pipelined(&ct, &reqs).await;
            o.borrow_mut().extend(outs);
        }
    });
    for _ in 0..400 {
        if out.borrow().len() == BATCHES * 16 {
            break;
        }
        sim.run_for(SimSpan::micros(50));
    }
    let results = out.borrow();
    assert_eq!(results.len(), BATCHES * 16, "driver did not finish in time");
    let mut registry_json = Vec::new();
    registry
        .snapshot()
        .write_json(&mut registry_json)
        .expect("registry json");
    Legacy {
        datas: results.iter().map(|r| r.data.clone()).collect(),
        infos: results.iter().map(|r| format!("{:?}", r.info)).collect(),
        registry_json: String::from_utf8(registry_json).expect("utf8 json"),
        spans: format!("{:?}", spans.snapshot()),
        nic: format!(
            "{:?} {:?}",
            cluster.machine(0).nic().counters(),
            cluster.machine(1).nic().counters()
        ),
        end: sim.handle().now(),
    }
}

/// Observability on vs off: every legacy surface is byte-identical, so
/// enabling the plane costs nothing in simulated time — and the enabled
/// run actually produced health data (the plane is on, not inert).
#[test]
fn enabled_observability_is_invisible_on_the_headline_bar() {
    for seed in [3u64, 17, 99] {
        let off = run_headline(seed, None);
        let recorder = FlightRecorder::new(4096);
        let health = HealthHub::default();
        let on = run_headline(seed, Some((&recorder, &health)));
        assert_eq!(off.datas, on.datas, "payloads diverged (seed {seed})");
        assert_eq!(off.infos, on.infos, "call info diverged (seed {seed})");
        assert_eq!(
            off.registry_json, on.registry_json,
            "instruments diverged (seed {seed})"
        );
        assert_eq!(off.spans, on.spans, "spans diverged (seed {seed})");
        assert_eq!(off.nic, on.nic, "NIC counters diverged (seed {seed})");
        // The plane really was live: calls landed in the health window.
        let calls: u64 = health.report(on.end).conns.iter().map(|c| c.calls).sum();
        assert!(calls > 0, "health hub saw no calls despite being attached");
        // And a clean run records no flight events at all — the ring
        // only ever holds causal chains, never steady-state chatter.
        assert_eq!(
            recorder.len(),
            0,
            "clean headline run polluted the flight ring: {:?}",
            recorder.snapshot()
        );
    }
}

/// A deliberately stalled pipeline (slow server, tiny retry budget)
/// surfaces as `pipeline.slot_stall` flight events, a non-zero stall
/// count in the health window, and a `StuckSlot` anomaly — with no other
/// anomaly classes firing.
#[test]
fn stalled_pipeline_slot_raises_stuck_slot_anomaly() {
    let mut sim = Simulation::new(11);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let recorder = FlightRecorder::new(4096);
    let health = HealthHub::default();
    cluster.attach_recorder(&recorder);
    let cfg = RfpConfig {
        window: 4,
        retry_threshold: 2,
        enable_mode_switch: false,
        recorder: Some(recorder.clone()),
        health: Some(health.clone()),
        ..RfpConfig::default()
    };
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let client = Rc::new(client);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        // Slow enough that fetch polls blow through R = 2 every call.
        |req: &[u8]| (req.to_vec(), SimSpan::micros(30)),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let reqs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 32]).collect();
    let done = Rc::new(RefCell::new(false));
    let (d, c) = (Rc::clone(&done), Rc::clone(&client));
    sim.spawn(async move {
        let _ = c.call_pipelined(&ct, &reqs).await;
        *d.borrow_mut() = true;
    });
    // Observe right as the batch lands, while the stalls are still
    // inside the rolling health window.
    for _ in 0..400 {
        if *done.borrow() {
            break;
        }
        sim.run_for(SimSpan::micros(20));
    }
    assert!(*done.borrow(), "stalled batch did not finish in time");

    assert!(
        recorder.kind_count("pipeline.slot_stall") > 0,
        "no slot-stall flight events: {:?}",
        recorder.kind_counts()
    );
    let now = sim.handle().now();
    let report = health.report(now);
    let conn0 = report.conn(0).expect("connection 0 reported");
    assert!(conn0.stalls > 0, "health window missed the stalls");

    let detector = AnomalyDetector::new(AnomalyConfig::default());
    let anomalies = detector.scan(&report);
    assert!(
        anomalies.iter().any(|a| a.kind == AnomalyKind::StuckSlot),
        "StuckSlot not flagged: {anomalies:?}"
    );
    for a in &anomalies {
        assert_eq!(
            a.kind,
            AnomalyKind::StuckSlot,
            "unexpected extra anomaly class: {a}"
        );
    }
}
