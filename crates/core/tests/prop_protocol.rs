//! Property-based tests of the RFP wire protocol and parameter
//! selection: header round-trips, two-segment fetch reassembly over the
//! real transport, and selection-domain invariants.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use rfp_core::{
    connect, resp_canary, serve_loop, ParamSelector, ReqHeader, RespHeader, RespIntegrity,
    RespStatus, RfpConfig, WorkloadSample, MAX_PAYLOAD, MAX_REQ_PAYLOAD, MAX_REQ_PAYLOAD_EPOCH,
    REQ_HDR, REQ_HDR_EXT, REQ_HDR_TENANT, RESP_HDR, RESP_HDR_EXT,
};
use rfp_rnic::{Cluster, ClusterProfile, LinkProfile, NicProfile};
use rfp_simnet::{SimSpan, SimTime, Simulation};

/// Uniform draw over the four wire statuses.
fn any_status() -> impl Strategy<Value = RespStatus> {
    (0u8..4).prop_map(RespStatus::from_u8)
}

proptest! {
    #[test]
    fn req_header_round_trips(
        valid in any::<bool>(),
        size in 0u32..=MAX_REQ_PAYLOAD as u32,
        seq in any::<u32>(),
        deadline_ns in prop::option::of(any::<u64>()),
        tenant in prop::option::of(any::<u32>()),
        epoch in any::<u16>(),
    ) {
        // An epoch stamp narrows the size field by one flag bit.
        let size = if epoch != 0 { size.min(MAX_REQ_PAYLOAD_EPOCH as u32) } else { size };
        let h = ReqHeader { valid, size, seq, deadline: deadline_ns.map(SimTime::from_nanos), tenant, epoch };
        let expect_len = if tenant.is_some() || epoch != 0 {
            REQ_HDR_TENANT
        } else if deadline_ns.is_some() {
            REQ_HDR_EXT
        } else {
            REQ_HDR
        };
        prop_assert_eq!(h.wire_len(), expect_len);
        let mut buf = [0u8; REQ_HDR_TENANT];
        h.encode(&mut buf[..h.wire_len()]);
        prop_assert_eq!(ReqHeader::decode(&buf), h);
    }

    /// Encode/decode identity over the full status × size × time × credit
    /// product: no combination of the new fields perturbs any other.
    #[test]
    fn resp_header_round_trips(
        valid in any::<bool>(),
        size in 0u32..=MAX_PAYLOAD as u32,
        seq in any::<u32>(),
        time_us in any::<u16>(),
        status in any_status(),
        credits in any::<u16>(),
        epoch in any::<u16>(),
    ) {
        let h = RespHeader { valid, size, seq, time_us, status, credits, integrity: None, epoch };
        let mut buf = [0u8; RESP_HDR];
        h.encode(&mut buf);
        prop_assert_eq!(RespHeader::decode(&buf), h);
    }

    /// Integrity-stamped headers round-trip through the extended layout,
    /// and the trailing canary is a pure function of (seq, generation).
    #[test]
    fn resp_header_integrity_round_trips(
        valid in any::<bool>(),
        size in 0u32..=MAX_PAYLOAD as u32,
        seq in any::<u32>(),
        time_us in any::<u16>(),
        status in any_status(),
        credits in any::<u16>(),
        crc in any::<u64>(),
        generation in any::<u32>(),
        epoch in any::<u16>(),
    ) {
        let h = RespHeader {
            valid, size, seq, time_us, status, credits,
            integrity: Some(RespIntegrity { crc, generation }),
            epoch,
        };
        prop_assert_eq!(h.wire_len(), RESP_HDR_EXT);
        let mut buf = [0u8; RESP_HDR_EXT];
        h.encode(&mut buf);
        prop_assert_eq!(RespHeader::decode(&buf), h);
        prop_assert_eq!(resp_canary(seq, generation), resp_canary(seq, generation));
        prop_assert_ne!(resp_canary(seq, generation), 0);
    }

    /// A response with the default verdict (`Ok`, zero credits) encodes
    /// byte-identically to the pre-extension format, whatever the other
    /// fields — the wire-compatibility half of the off-is-inert
    /// guarantee.
    #[test]
    fn resp_header_default_verdict_is_legacy_bytes(
        size in 0u32..=MAX_PAYLOAD as u32,
        seq in any::<u32>(),
        time_us in any::<u16>(),
    ) {
        let h = RespHeader {
            valid: true, size, seq, time_us,
            status: RespStatus::Ok, credits: 0, integrity: None, epoch: 0,
        };
        let mut buf = [0xAAu8; RESP_HDR];
        h.encode(&mut buf);
        let mut legacy = [0u8; RESP_HDR];
        legacy[0..4].copy_from_slice(&(size | (1 << 31)).to_le_bytes());
        legacy[4..8].copy_from_slice(&seq.to_le_bytes());
        legacy[8..10].copy_from_slice(&time_us.to_le_bytes());
        prop_assert_eq!(buf, legacy);
    }

    /// The integrity extension's off-is-inert wire half: whatever the
    /// other fields, an integrity-less header occupies the classic 16
    /// bytes and encodes them exactly as the pre-integrity encoder did
    /// (valid|size word, seq, time, status byte, credits, zero fill).
    #[test]
    fn integrity_off_headers_encode_legacy_bytes(
        valid in any::<bool>(),
        size in 0u32..=MAX_PAYLOAD as u32,
        seq in any::<u32>(),
        time_us in any::<u16>(),
        status in any_status(),
        credits in any::<u16>(),
    ) {
        let h = RespHeader { valid, size, seq, time_us, status, credits, integrity: None, epoch: 0 };
        prop_assert_eq!(h.wire_len(), RESP_HDR);
        let mut buf = [0x5Au8; RESP_HDR];
        h.encode(&mut buf);
        let mut legacy = [0u8; RESP_HDR];
        legacy[0..4].copy_from_slice(
            &(size | if valid { 1u32 << 31 } else { 0 }).to_le_bytes(),
        );
        legacy[4..8].copy_from_slice(&seq.to_le_bytes());
        legacy[8..10].copy_from_slice(&time_us.to_le_bytes());
        legacy[10] = status.to_u8();
        legacy[11..13].copy_from_slice(&credits.to_le_bytes());
        prop_assert_eq!(buf, legacy);
        // And the integrity bit (bit 30) is clear, so no peer will ever
        // look for the extended fields or a trailer.
        let word = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        prop_assert_eq!(word & (1 << 30), 0);
    }

    /// Echoing arbitrary payloads through the full RFP stack reassembles
    /// them exactly — whatever the relation between payload size and
    /// fetch size `F` (one- or two-segment fetch).
    #[test]
    fn fetch_reassembles_arbitrary_payloads(
        payload in vec(any::<u8>(), 0..3000),
        fetch in RESP_HDR..2048usize,
    ) {
        let mut sim = Simulation::new(3);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let cfg = RfpConfig {
            fetch_size: fetch,
            req_capacity: 8192,
            resp_capacity: 8192,
            ..RfpConfig::default()
        };
        let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
        let st = sm.thread("s");
        sim.spawn(serve_loop(
            st,
            vec![Rc::new(conn)],
            |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
            SimSpan::nanos(100),
        ));
        let ct = cm.thread("c");
        let got: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        let p = payload.clone();
        sim.spawn(async move {
            let out = client.call(&ct, &p).await;
            *g.borrow_mut() = Some(out.data);
        });
        sim.run_for(SimSpan::millis(2));
        let got = got.borrow_mut().take();
        prop_assert_eq!(got, Some(payload));
    }

    /// The selector always lands inside its own hardware box and never
    /// returns an `F` that cannot carry the header.
    #[test]
    fn selection_stays_in_bounds(
        sizes in vec(1usize..4096, 1..24),
        p_us in 0u64..12,
        threads in 1usize..64,
    ) {
        let selector = ParamSelector::new(NicProfile::connectx3_40g(), LinkProfile::infiniscale());
        let (l, h) = selector.detect_l_h();
        let w = WorkloadSample {
            result_sizes: sizes,
            process_time: SimSpan::micros(p_us),
            request_size: 64,
            client_threads: threads,
        };
        let params = selector.select(&w);
        prop_assert!(params.f >= l && params.f <= h, "F={} not in [{l},{h}]", params.f);
        prop_assert!(params.f >= RESP_HDR);
        let n = selector.derive_n(&w);
        prop_assert!(params.r >= 1 && params.r <= n, "R={} not in [1,{n}]", params.r);
    }

    /// Throughput estimates are finite and positive; *pure* repeated
    /// fetching (unbounded `R`) is monotone non-increasing in process
    /// time; and once a finite `R` triggers the switch, the estimate
    /// equals server-reply's. (Across the switch point throughput may
    /// jump *up* — that is exactly why the hybrid mechanism exists.)
    #[test]
    fn throughput_model_is_sane(size in 1usize..2048, p_us in 0u64..10) {
        let selector = ParamSelector::new(NicProfile::connectx3_40g(), LinkProfile::infiniscale());
        let mk = |p| WorkloadSample {
            result_sizes: vec![size],
            process_time: SimSpan::micros(p),
            request_size: 64,
            client_threads: 35,
        };
        let now = selector.rfp_throughput(u32::MAX, 448, &mk(p_us), size);
        let later = selector.rfp_throughput(u32::MAX, 448, &mk(p_us + 1), size);
        prop_assert!(now.is_finite() && now > 0.0);
        prop_assert!(later <= now + 1e-9, "P↑ should not raise pure-fetch throughput: {now} -> {later}");
        // A switched estimate coincides with server-reply.
        let switched = selector.rfp_throughput(0, 448, &mk(p_us + 5), size);
        let sr = selector.server_reply_throughput(&mk(p_us + 5), size);
        prop_assert!((switched - sr).abs() < 1e-9);
    }
}
