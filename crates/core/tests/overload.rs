//! Overload-control integration properties: shedding safety on the real
//! transport, and the off-is-inert guarantee.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;

use rfp_core::{connect, serve_loop, OverloadConfig, RespStatus, RfpConfig, RfpServerConn};
use rfp_simnet::{MetricsRegistry, RetryPolicy, SimSpan, Simulation, WaitGroup};

/// Echo rig under overload: `clients` closed-loop callers over one
/// server thread, each issuing `calls_each` requests, echo handler with
/// a fixed process time. Returns (handler runs, per-conn server stats,
/// per-call outcomes).
struct RigOutcome {
    handler_runs: u64,
    served: u64,
    rejected: u64,
    ok_calls: u64,
    rejected_calls: u64,
    bad_echo: u64,
    nonempty_rejects: u64,
}

fn run_rig(seed: u64, ov: OverloadConfig, clients: usize, calls_each: u32) -> RigOutcome {
    let mut sim = Simulation::new(seed);
    let cluster = rfp_rnic::Cluster::new(
        &mut sim,
        rfp_rnic::ClusterProfile::paper_testbed(),
        1 + clients,
    );
    let server_m = cluster.machine(0);
    let cfg = RfpConfig {
        overload: ov,
        ..RfpConfig::default()
    };

    let mut conns: Vec<Rc<RfpServerConn>> = Vec::new();
    let runs = Rc::new(Cell::new(0u64));
    let ok_calls = Rc::new(Cell::new(0u64));
    let rejected_calls = Rc::new(Cell::new(0u64));
    let bad_echo = Rc::new(Cell::new(0u64));
    let nonempty_rejects = Rc::new(Cell::new(0u64));
    let wg = WaitGroup::new();

    for c in 0..clients {
        let cm = cluster.machine(1 + c);
        let (cl, sc) = connect(
            &cm,
            &server_m,
            cluster.qp(1 + c, 0),
            cluster.qp(0, 1 + c),
            cfg.clone(),
        );
        conns.push(Rc::new(sc));
        let t = cm.thread(format!("c{c}"));
        let token = wg.add();
        let (ok, rej, bad, fat) = (
            Rc::clone(&ok_calls),
            Rc::clone(&rejected_calls),
            Rc::clone(&bad_echo),
            Rc::clone(&nonempty_rejects),
        );
        sim.spawn(async move {
            for i in 0..calls_each {
                let payload = [c as u8, i as u8, 0x5A];
                let out = cl.call_overload(&t, &payload, None).await;
                if out.info.status == RespStatus::Ok {
                    ok.set(ok.get() + 1);
                    if out.data != payload {
                        bad.set(bad.get() + 1);
                    }
                } else {
                    rej.set(rej.get() + 1);
                    if !out.data.is_empty() {
                        fat.set(fat.get() + 1);
                    }
                }
            }
            drop(token);
        });
    }

    let st = server_m.thread("server");
    let r = Rc::clone(&runs);
    sim.spawn(serve_loop(
        st,
        conns.clone(),
        move |req: &[u8]| {
            r.set(r.get() + 1);
            (req.to_vec(), SimSpan::micros(3))
        },
        SimSpan::nanos(100),
    ));

    // Run until every client finished, then drain: anything the clients
    // gave up on locally must still flow through the server's own
    // admission (shed or serve), never get stuck.
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    let w = wg.clone();
    sim.spawn(async move {
        w.wait().await;
        d.set(true);
    });
    for _ in 0..200 {
        sim.run_for(SimSpan::millis(1));
        if done.get() {
            break;
        }
    }
    assert!(done.get(), "clients failed to finish");
    sim.run_for(SimSpan::millis(1));

    RigOutcome {
        handler_runs: runs.get(),
        served: conns.iter().map(|c| c.served()).sum(),
        rejected: conns
            .iter()
            .map(|c| c.rejected_busy() + c.rejected_shed())
            .sum(),
        ok_calls: ok_calls.get(),
        rejected_calls: rejected_calls.get(),
        bad_echo: bad_echo.get(),
        nonempty_rejects: nonempty_rejects.get(),
    }
}

proptest! {
    /// Shedding safety on the wire, across admission tunings and load
    /// shapes: every request the handler began is answered `Ok` (a
    /// begun request is **never** shed), every `Ok` echoes its payload
    /// exactly, and every rejection carries an empty payload.
    #[test]
    fn shed_safety_under_pressure(
        seed in 0u64..1000,
        queue_limit in 1usize..6,
        deadline_us in 5u64..40,
        clients in 2usize..6,
    ) {
        let ov = OverloadConfig {
            enabled: true,
            queue_limit,
            deadline: SimSpan::micros(deadline_us),
            retry: RetryPolicy::exponential(3, SimSpan::micros(2), SimSpan::micros(8), 0.3),
            ..OverloadConfig::default()
        };
        let out = run_rig(seed, ov, clients, 12);
        // Safety: a request the server executed was answered Ok — the
        // handler-run and Ok-send counts must agree exactly.
        prop_assert_eq!(out.handler_runs, out.served);
        // Correctness of the survivors and cheapness of the rejects.
        prop_assert_eq!(out.bad_echo, 0);
        prop_assert_eq!(out.nonempty_rejects, 0);
        // Conservation: every call ended one way or the other...
        prop_assert_eq!(
            out.ok_calls + out.rejected_calls,
            (clients as u64) * 12
        );
        // ...and the server's Ok answers cover every client-observed Ok
        // (client-side local sheds may leave extra server answers
        // unobserved, never the reverse).
        prop_assert!(out.ok_calls <= out.served);
        let _ = out.rejected;
    }
}

/// With `enabled: false` every other knob is inert: wild tunings and
/// the default config drive byte-identical simulations, and no
/// `overload.*`/rejection instrument ever materialises.
#[test]
fn disabled_knobs_are_inert() {
    let snapshot_of = |ov: OverloadConfig| {
        let mut sim = Simulation::new(99);
        let cluster =
            rfp_rnic::Cluster::new(&mut sim, rfp_rnic::ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let registry = MetricsRegistry::new();
        cluster.attach_metrics(&registry);
        let cfg = RfpConfig {
            overload: ov,
            ..RfpConfig::default()
        };
        let (cl, sc) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
        let st = sm.thread("server");
        sim.spawn(serve_loop(
            st,
            vec![Rc::new(sc)],
            |req: &[u8]| (req.to_vec(), SimSpan::micros(2)),
            SimSpan::nanos(100),
        ));
        let t = cm.thread("client");
        sim.spawn(async move {
            for i in 0..40u32 {
                let out = cl.call(&t, &i.to_le_bytes()).await;
                assert_eq!(out.data, i.to_le_bytes());
                assert_eq!(out.info.status, RespStatus::Ok);
            }
        });
        sim.run_for(SimSpan::millis(5));
        for name in registry.names() {
            assert!(
                !name.contains("overload") && !name.contains("reject"),
                "disabled overload materialised instrument {name}"
            );
        }
        let mut csv = Vec::new();
        registry.snapshot().write_csv(&mut csv).unwrap();
        csv
    };

    let default_run = snapshot_of(OverloadConfig::default());
    let wild_run = snapshot_of(OverloadConfig {
        enabled: false,
        queue_limit: 1,
        deadline: SimSpan::nanos(1),
        credit_max: 1,
        credit_low_water: 0,
        credit_high_water: 1,
        retry: RetryPolicy::immediate(1),
        credit_wait: SimSpan::millis(1),
        probe_pause: SimSpan::millis(1),
        max_probes: 1,
        seed: 0xDEAD_BEEF,
    });
    assert_eq!(
        default_run, wild_run,
        "overload knobs leaked into a disabled run"
    );
}
