//! End-to-end telemetry tests: the mode-switch trace events emitted by
//! an instrumented RFP connection agree with its switch counters, and
//! span phase durations always sum exactly to end-to-end latency.

use std::cell::Cell;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use rfp_core::{connect, serve_loop, Mode, RfpConfig, RfpTelemetry};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{MetricsRegistry, RequestTrace, SimSpan, SimTime, Simulation, SpanRecorder};

#[test]
fn mode_switch_trace_events_agree_with_counters() {
    let registry = MetricsRegistry::new();
    let spans = SpanRecorder::new(1024);
    let cfg = RfpConfig {
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: spans.clone(),
            prefix: "rfp.client.0".into(),
            track: 0,
        }),
        ..RfpConfig::default()
    };

    let mut sim = Simulation::new(11);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (client_m, server_m) = (cluster.machine(0), cluster.machine(1));
    let (client, server_conn) = connect(
        &client_m,
        &server_m,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        cfg,
    );
    let client = Rc::new(client);

    // 30 µs process time forces the switch to server-reply; recovery to
    // 0 µs brings the connection back to remote fetching.
    let process = Rc::new(Cell::new(30u64));
    let p = Rc::clone(&process);
    let st = server_m.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(server_conn)],
        move |req: &[u8]| (req.to_vec(), SimSpan::micros(p.get())),
        SimSpan::nanos(100),
    ));

    let t = client_m.thread("client");
    let cl = Rc::clone(&client);
    let p = Rc::clone(&process);
    sim.spawn(async move {
        for _ in 0..4 {
            cl.call(&t, b"x").await;
        }
        p.set(0);
        for _ in 0..6 {
            cl.call(&t, b"x").await;
        }
    });
    sim.run_for(SimSpan::millis(10));

    let stats = client.stats();
    assert!(stats.switches_to_reply() >= 1, "rig must switch to reply");
    assert!(stats.switches_to_fetch() >= 1, "rig must switch back");
    assert_eq!(stats.calls(), 10);

    // Registry counters mirror the connection's own statistics.
    let snap = registry.snapshot();
    assert_eq!(
        snap.scalar("rfp.client.0.switches.to_reply"),
        Some(stats.switches_to_reply() as f64)
    );
    assert_eq!(
        snap.scalar("rfp.client.0.switches.to_fetch"),
        Some(stats.switches_to_fetch() as f64)
    );
    assert_eq!(
        snap.scalar("rfp.client.0.calls"),
        Some(stats.calls() as f64)
    );

    // The mode gauge tracks the connection's final mode.
    let expect_level = match client.mode() {
        Mode::RemoteFetch => 0.0,
        Mode::ServerReply => 1.0,
    };
    assert_eq!(snap.scalar("rfp.client.0.mode"), Some(expect_level));

    // Every switch, in either direction, left exactly one trace event.
    let recorded = spans.snapshot();
    let switch_marks = recorded
        .iter()
        .flat_map(|tr| tr.marks().iter())
        .filter(|(_, label)| *label == "mode_switched")
        .count() as u64;
    assert_eq!(
        switch_marks,
        stats.switches_to_reply() + stats.switches_to_fetch(),
        "mode trace events must agree with the switch counters"
    );

    // One finished span per call, each telescoping exactly.
    assert_eq!(spans.recorded(), stats.calls());
    for tr in &recorded {
        let sum: u64 = tr.phases().iter().map(|p| p.duration.as_nanos()).sum();
        assert_eq!(sum, tr.end_to_end().as_nanos(), "trace {}", tr.id);
    }
}

proptest! {
    /// For any interleaving of in-order and out-of-order marks, the
    /// phase durations of a span sum exactly (in sim-nanoseconds) to
    /// its end-to-end latency.
    #[test]
    fn span_phases_sum_to_end_to_end(
        start in 0u64..1_000_000,
        deltas in vec(0u64..10_000, 0..24),
        unordered in vec(0u64..2_000_000, 0..12),
    ) {
        let mut tr = RequestTrace::begin(7, 3, SimTime::from_nanos(start), "issue");
        let mut now = start;
        for d in &deltas {
            now += d;
            tr.mark(SimTime::from_nanos(now), "step");
        }
        for u in &unordered {
            tr.mark_unordered(SimTime::from_nanos(*u), "async_step");
        }
        let sum: u64 = tr.phases().iter().map(|p| p.duration.as_nanos()).sum();
        prop_assert_eq!(sum, tr.end_to_end().as_nanos());
        prop_assert_eq!(tr.phases().len(), tr.marks().len() - 1);
        // Marks stay sorted whatever the insertion order.
        let times: Vec<u64> = tr.marks().iter().map(|m| m.0.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(times, sorted);
    }
}
