//! End-to-end protocol tests for RFP: fetching, two-segment reads, the
//! hybrid mode switch with hysteresis, and retry accounting.

use std::cell::Cell;
use std::rc::Rc;

use rfp_core::{connect, serve_loop, Mode, RfpClient, RfpConfig, RfpServerConn};
use rfp_rnic::{Cluster, ClusterProfile, ThreadCtx};
use rfp_simnet::{SimSpan, Simulation};

/// One client machine, one server machine, an echo-with-delay server.
struct Rig {
    sim: Simulation,
    client: Rc<RfpClient>,
    client_thread: Rc<ThreadCtx>,
    server_conn: Rc<RfpServerConn>,
}

fn rig(cfg: RfpConfig, process: Rc<Cell<u64>>) -> Rig {
    let mut sim = Simulation::new(11);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (client_m, server_m) = (cluster.machine(0), cluster.machine(1));
    let (client, server_conn) = connect(
        &client_m,
        &server_m,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        cfg,
    );
    let client = Rc::new(client);
    let server_conn = Rc::new(server_conn);

    let st = server_m.thread("server");
    let conn = Rc::clone(&server_conn);
    sim.spawn(serve_loop(
        st,
        vec![conn],
        move |req: &[u8]| (req.to_vec(), SimSpan::micros(process.get())),
        SimSpan::nanos(100),
    ));

    Rig {
        sim,
        client,
        client_thread: client_m.thread("client"),
        server_conn,
    }
}

#[test]
fn echo_round_trip_with_fast_server() {
    let p = Rc::new(Cell::new(0));
    let mut r = rig(RfpConfig::default(), p);
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        for i in 0..50u32 {
            let req = i.to_le_bytes().to_vec();
            let out = client.call(&t, &req).await;
            assert_eq!(out.data, req);
            assert_eq!(out.info.completed_in, Mode::RemoteFetch);
        }
        d.set(true);
    });
    r.sim.run_for(SimSpan::millis(5));
    assert!(done.get(), "client did not finish");
    // A fast server answers on the first or second fetch.
    assert!(r.client.stats().mean_attempts() <= 2.0);
    assert_eq!(r.client.stats().calls(), 50);
    assert_eq!(r.server_conn.served(), 50);
    // No out-bound replies were ever needed.
    assert_eq!(r.server_conn.replied_out_of_band(), 0);
}

#[test]
fn oversized_response_uses_exactly_one_extra_read() {
    let p = Rc::new(Cell::new(0));
    let cfg = RfpConfig {
        fetch_size: 256,
        ..RfpConfig::default()
    };
    let mut r = rig(cfg, p);
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        // 1 KiB payload > F=256: needs the remainder fetch.
        let req = vec![0xAB; 1024];
        let out = client.call(&t, &req).await;
        assert_eq!(out.data, req);
        assert!(out.info.extra_read);
        d.set(true);
    });
    r.sim.run_for(SimSpan::millis(5));
    assert!(done.get());
    assert_eq!(r.client.stats().extra_reads(), 1);
}

#[test]
fn small_response_never_needs_extra_read() {
    let p = Rc::new(Cell::new(0));
    let mut r = rig(RfpConfig::default(), p);
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    r.sim.spawn(async move {
        for _ in 0..20 {
            let out = client.call(&t, &[7u8; 64]).await;
            assert!(!out.info.extra_read);
        }
    });
    r.sim.run_for(SimSpan::millis(5));
    assert_eq!(r.client.stats().extra_reads(), 0);
}

#[test]
fn slow_server_triggers_switch_to_reply_with_hysteresis() {
    let p = Rc::new(Cell::new(30)); // 30 µs: far past the switch point
    let mut r = rig(RfpConfig::default(), Rc::clone(&p));
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    let switched_on_call = Rc::new(Cell::new(0u32));
    let s = Rc::clone(&switched_on_call);
    r.sim.spawn(async move {
        for i in 1..=6u32 {
            let out = client.call(&t, b"slow").await;
            assert_eq!(out.data, b"slow");
            if out.info.completed_in == Mode::ServerReply && s.get() == 0 {
                s.set(i);
            }
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    // Hysteresis: call 1 exceeds R but stays in fetch mode; call 2 is
    // the second consecutive overrun and switches mid-call.
    assert_eq!(switched_on_call.get(), 2, "switch must honour hysteresis");
    assert_eq!(r.client.stats().switches_to_reply(), 1);
    assert_eq!(r.client.mode(), Mode::ServerReply);
    assert_eq!(r.server_conn.mode(), Mode::ServerReply);
    // Later responses were pushed by the server's out-bound WRITE.
    assert!(r.server_conn.replied_out_of_band() >= 3);
}

#[test]
fn server_becoming_fast_switches_back_to_fetching() {
    let p = Rc::new(Cell::new(30));
    let mut r = rig(RfpConfig::default(), Rc::clone(&p));
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    let modes = Rc::new(std::cell::RefCell::new(Vec::new()));
    let m = Rc::clone(&modes);
    let p2 = Rc::clone(&p);
    r.sim.spawn(async move {
        // Drive into server-reply mode.
        for _ in 0..4 {
            client.call(&t, b"x").await;
        }
        // Server recovers.
        p2.set(0);
        for _ in 0..4 {
            let out = client.call(&t, b"x").await;
            m.borrow_mut().push(out.info.completed_in);
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    let modes = modes.borrow();
    assert_eq!(modes.len(), 4, "client stalled after recovery");
    // The first post-recovery call still completes via reply (and sees
    // the short process time), everything after fetches remotely again.
    assert_eq!(modes[modes.len() - 1], Mode::RemoteFetch);
    assert!(r.client.stats().switches_to_fetch() >= 1);
}

#[test]
fn single_slow_call_does_not_switch() {
    // One outlier must not flip the mode (§3.2's guard); the client
    // keeps fetching and eventually succeeds.
    let p = Rc::new(Cell::new(30));
    let mut r = rig(RfpConfig::default(), Rc::clone(&p));
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    let p2 = Rc::clone(&p);
    r.sim.spawn(async move {
        let out = client.call(&t, b"outlier").await;
        assert_eq!(out.info.completed_in, Mode::RemoteFetch);
        assert!(out.info.attempts > 5);
        p2.set(0);
        for _ in 0..5 {
            let out = client.call(&t, b"fast").await;
            assert_eq!(out.info.completed_in, Mode::RemoteFetch);
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    assert_eq!(r.client.stats().switches_to_reply(), 0);
}

#[test]
fn disabled_switch_keeps_fetching_forever() {
    let p = Rc::new(Cell::new(30));
    let cfg = RfpConfig {
        enable_mode_switch: false,
        ..RfpConfig::default()
    };
    let mut r = rig(cfg, p);
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    r.sim.spawn(async move {
        for _ in 0..5 {
            let out = client.call(&t, b"x").await;
            assert_eq!(out.info.completed_in, Mode::RemoteFetch);
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    assert_eq!(r.client.stats().switches_to_reply(), 0);
    assert_eq!(r.client.mode(), Mode::RemoteFetch);
}

#[test]
fn retry_stats_reflect_process_time() {
    // P ≈ 4 µs: a couple of retries per call, below the switch point.
    let p = Rc::new(Cell::new(4));
    let mut r = rig(RfpConfig::default(), p);
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    r.sim.spawn(async move {
        for _ in 0..30 {
            client.call(&t, b"work").await;
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    let stats = r.client.stats();
    assert_eq!(stats.calls(), 30);
    assert!(stats.mean_attempts() > 1.5, "{}", stats.mean_attempts());
    assert!(stats.max_attempts() <= 6);
    assert!(stats.frac_attempts_above(1) > 0.9);
    assert_eq!(stats.switches_to_reply(), 0, "P=4µs must not switch");
}

#[test]
fn utilization_drops_in_reply_mode() {
    // Figure 15's mechanism: busy-polling fetch mode pins the client
    // CPU; reply mode blocks idle.
    let run = |p_us: u64| {
        let p = Rc::new(Cell::new(p_us));
        let mut r = rig(RfpConfig::default(), p);
        let client = Rc::clone(&r.client);
        let t = Rc::clone(&r.client_thread);
        r.sim.spawn(async move {
            loop {
                client.call(&t, b"u").await;
            }
        });
        r.sim.run_for(SimSpan::millis(2));
        r.client_thread.reset_utilization();
        r.sim.run_for(SimSpan::millis(8));
        r.client_thread.utilization()
    };
    let fetch_util = run(1);
    let reply_util = run(30);
    assert!(fetch_util > 0.95, "fetch mode busy-polls: {fetch_util}");
    assert!(reply_util < 0.35, "reply mode blocks: {reply_util}");
}

#[test]
fn sequences_survive_many_calls() {
    // Regression guard for stale-response confusion: responses always
    // match the current call even at high call counts.
    let p = Rc::new(Cell::new(0));
    let mut r = rig(RfpConfig::default(), p);
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    let ok = Rc::new(Cell::new(0u32));
    let k = Rc::clone(&ok);
    r.sim.spawn(async move {
        for i in 0..500u32 {
            let out = client.call(&t, &i.to_le_bytes()).await;
            assert_eq!(out.data, i.to_le_bytes());
            k.set(k.get() + 1);
        }
    });
    r.sim.run_for(SimSpan::millis(20));
    assert_eq!(ok.get(), 500);
}

#[test]
fn mode_switches_are_traced() {
    use rfp_simnet::TraceLog;
    let trace = TraceLog::new(64);
    let p = Rc::new(Cell::new(30));
    let cfg = RfpConfig {
        trace: Some(trace.clone()),
        ..RfpConfig::default()
    };
    let mut r = rig(cfg, Rc::clone(&p));
    let client = Rc::clone(&r.client);
    let t = Rc::clone(&r.client_thread);
    let p2 = Rc::clone(&p);
    r.sim.spawn(async move {
        // Drive into server-reply, then back out.
        for _ in 0..4 {
            client.call(&t, b"trace").await;
        }
        p2.set(0);
        for _ in 0..3 {
            client.call(&t, b"trace").await;
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    let modes = trace.category("rfp.mode");
    assert!(modes.len() >= 2, "expected switch + switch-back: {modes:?}");
    assert!(modes[0].message.contains("ServerReply"), "{:?}", modes[0]);
    assert!(
        modes
            .last()
            .expect("non-empty")
            .message
            .contains("RemoteFetch"),
        "{modes:?}"
    );
    // Timestamps are monotone.
    for w in modes.windows(2) {
        assert!(w[0].at <= w[1].at);
    }
}
