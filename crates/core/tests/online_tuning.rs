//! End-to-end test of §3.2's online sampling path: a workload whose
//! result sizes drift mid-run must trigger a re-selection of `F`, after
//! which calls stop paying the second READ.

use std::cell::Cell;
use std::rc::Rc;

use rfp_core::{connect, serve_loop, OnlineTuner, ParamSelector, RfpConfig};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{SimSpan, Simulation};

#[test]
fn tuner_adapts_fetch_size_to_drifting_results() {
    let mut sim = Simulation::new(21);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let profile = ClusterProfile::paper_testbed();
    let (client, conn) = connect(
        &cm,
        &sm,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig {
            fetch_size: 256,
            resp_capacity: 8192,
            req_capacity: 8192,
            ..RfpConfig::default()
        },
    );
    let client = Rc::new(client);

    // Server: result size controlled by the test.
    let result_size = Rc::new(Cell::new(40usize));
    let rs = Rc::clone(&result_size);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        move |_req: &[u8]| (vec![0xCD; rs.get()], SimSpan::nanos(200)),
        SimSpan::nanos(100),
    ));

    let tuner = Rc::new(OnlineTuner::new(
        ParamSelector::new(profile.nic.clone(), profile.link.clone()),
        64,  // window M
        100, // reselect period
        1,   // client threads
        16,  // request size
    ));

    let ct = cm.thread("client");
    let cl = Rc::clone(&client);
    let tn = Rc::clone(&tuner);
    let rs2 = Rc::clone(&result_size);
    let phase2_extra_reads = Rc::new(Cell::new((0u32, 0u32))); // (early, late)
    let counts = Rc::clone(&phase2_extra_reads);
    sim.spawn(async move {
        // Phase 1: small results — the tuner should keep F small.
        for _ in 0..200 {
            let out = cl.call(&ct, b"req").await;
            tn.observe(&cl, &out);
        }
        let f_small = cl.fetch_size();
        assert!(
            f_small < 600,
            "small results should keep F small, got {f_small}"
        );

        // Phase 2: results grow to 700 B — every call pays a second
        // READ until the tuner moves F.
        rs2.set(700);
        let mut early = 0;
        let mut late = 0;
        for i in 0..300u32 {
            let out = cl.call(&ct, b"req").await;
            if out.info.extra_read {
                if i < 64 {
                    early += 1;
                } else if i >= 200 {
                    late += 1;
                }
            }
            tn.observe(&cl, &out);
        }
        counts.set((early, late));
    });

    sim.run_for(SimSpan::millis(20));
    let (early, late) = phase2_extra_reads.get();
    assert!(
        early > 50,
        "before retuning every call double-reads: {early}"
    );
    assert_eq!(late, 0, "after retuning no call should double-read");
    assert!(
        client.fetch_size() >= 716,
        "F must now cover 700B results: {}",
        client.fetch_size()
    );
    assert!(tuner.retunes() >= 1, "at least one retune must have fired");
    assert!(tuner.observed() == 500);
}

#[test]
fn stable_workloads_do_not_flap() {
    // A steady workload: the first selection sticks, no further retunes.
    let mut sim = Simulation::new(22);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let profile = ClusterProfile::paper_testbed();
    let (client, conn) = connect(
        &cm,
        &sm,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig::default(),
    );
    let client = Rc::new(client);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |_req: &[u8]| (vec![1u8; 48], SimSpan::nanos(200)),
        SimSpan::nanos(100),
    ));
    let tuner = Rc::new(OnlineTuner::new(
        ParamSelector::new(profile.nic.clone(), profile.link.clone()),
        64,
        50,
        1,
        16,
    ));
    let ct = cm.thread("client");
    let cl = Rc::clone(&client);
    let tn = Rc::clone(&tuner);
    sim.spawn(async move {
        for _ in 0..400 {
            let out = cl.call(&ct, b"x").await;
            tn.observe(&cl, &out);
        }
    });
    sim.run_for(SimSpan::millis(10));
    assert_eq!(tuner.observed(), 400);
    assert_eq!(
        tuner.retunes(),
        1,
        "exactly the initial selection, then stability"
    );
}
