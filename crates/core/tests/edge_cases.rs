//! Adversarial and boundary tests for the RFP protocol machinery.

use std::cell::Cell;
use std::rc::Rc;

use rfp_core::{connect, serve_loop, RfpConfig, REQ_HDR, RESP_HDR};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{timeout, SimSpan, Simulation};

fn two_machines() -> (Simulation, Cluster) {
    let mut sim = Simulation::new(31);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    (sim, cluster)
}

#[test]
fn empty_request_and_response_round_trip() {
    let (mut sim, cluster) = two_machines();
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let (client, conn) = connect(
        &cm,
        &sm,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig::default(),
    );
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |_req: &[u8]| (Vec::new(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        let out = client.call(&ct, b"").await;
        assert!(out.data.is_empty());
        d.set(true);
    });
    sim.run_for(SimSpan::millis(1));
    assert!(done.get());
}

#[test]
fn request_at_exact_capacity_fits() {
    let (mut sim, cluster) = two_machines();
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        req_capacity: 512,
        resp_capacity: 1024,
        ..RfpConfig::default()
    };
    let max_req = cfg.max_req_payload();
    assert_eq!(max_req, 512 - REQ_HDR);
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        let payload = vec![0x42u8; max_req];
        let out = client.call(&ct, &payload).await;
        assert_eq!(out.data, payload);
        d.set(true);
    });
    sim.run_for(SimSpan::millis(1));
    assert!(done.get());
}

#[test]
#[should_panic(expected = "request exceeds buffer capacity")]
fn oversized_request_panics_loudly() {
    let (mut sim, cluster) = two_machines();
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        req_capacity: 256,
        ..RfpConfig::default()
    };
    let (client, _conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let ct = cm.thread("client");
    sim.spawn(async move {
        client.send(&ct, &vec![0u8; 1024]).await;
    });
    sim.run_for(SimSpan::millis(1));
}

#[test]
fn response_exactly_at_fetch_size_needs_one_read() {
    let (mut sim, cluster) = two_machines();
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        fetch_size: 256,
        ..RfpConfig::default()
    };
    let boundary = 256 - RESP_HDR; // payload that exactly fills F
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        move |_req: &[u8]| (vec![7u8; boundary], SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        let out = client.call(&ct, b"x").await;
        assert_eq!(out.data.len(), boundary);
        assert!(!out.info.extra_read, "boundary payload must fit one fetch");
        d.set(true);
    });
    sim.run_for(SimSpan::millis(1));
    assert!(done.get());
}

#[test]
fn response_one_byte_over_fetch_size_needs_two_reads() {
    let (mut sim, cluster) = two_machines();
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        fetch_size: 256,
        ..RfpConfig::default()
    };
    let over = 256 - RESP_HDR + 1;
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        move |_req: &[u8]| (vec![8u8; over], SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        let out = client.call(&ct, b"x").await;
        assert_eq!(out.data.len(), over);
        assert!(
            out.info.extra_read,
            "one byte over F must cost a second READ"
        );
        d.set(true);
    });
    sim.run_for(SimSpan::millis(1));
    assert!(done.get());
}

#[test]
fn timeout_dropped_mid_fetch_does_not_corrupt_later_calls() {
    // Drop a recv future mid-flight (as a timeout combinator would),
    // then keep using the connection: sequence matching must keep
    // responses straight.
    let (mut sim, cluster) = two_machines();
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let (client, conn) = connect(
        &cm,
        &sm,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig::default(),
    );
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::micros(5)),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let h = sim.handle();
    let survived = Rc::new(Cell::new(0u32));
    let s = Rc::clone(&survived);
    sim.spawn(async move {
        // Call 1: send, then abandon the recv after 1 µs (the response
        // will arrive later and must be ignored by the next call).
        client.send(&ct, b"abandoned").await;
        let got = timeout(&h, SimSpan::micros(1), Box::pin(client.recv(&ct))).await;
        assert!(got.is_none(), "5µs process time cannot finish in 1µs");
        // Let the stale response land in server memory.
        h.sleep(SimSpan::micros(50)).await;
        // Subsequent calls must still match their own responses.
        for i in 0..20u32 {
            let req = i.to_le_bytes();
            let out = client.call(&ct, &req).await;
            assert_eq!(out.data, req, "stale response leaked into call {i}");
            s.set(s.get() + 1);
        }
    });
    sim.run_for(SimSpan::millis(5));
    assert_eq!(survived.get(), 20);
}

#[test]
fn many_connections_share_one_server_thread() {
    // 16 clients on one machine through one polled connection set.
    let mut sim = Simulation::new(33);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let mut conns = Vec::new();
    let completed = Rc::new(Cell::new(0u32));
    for i in 0..16 {
        let (client, conn) = connect(
            &cm,
            &sm,
            cluster.qp(0, 1),
            cluster.qp(1, 0),
            RfpConfig::default(),
        );
        conns.push(Rc::new(conn));
        let ct = cm.thread(format!("c{i}"));
        let done = Rc::clone(&completed);
        sim.spawn(async move {
            for k in 0..25u32 {
                let out = client.call(&ct, &[i as u8, k as u8]).await;
                assert_eq!(out.data, [i as u8, k as u8]);
            }
            done.set(done.get() + 25);
        });
    }
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        conns,
        |req: &[u8]| (req.to_vec(), SimSpan::nanos(200)),
        SimSpan::nanos(100),
    ));
    sim.run_for(SimSpan::millis(10));
    assert_eq!(completed.get(), 400);
}
