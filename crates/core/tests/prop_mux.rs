//! M=N mux equivalence: with one logical client pinned to each physical
//! connection, the multiplexing layer must be a zero-cost veneer — the
//! run is byte-identical to today's dedicated-connection path on the
//! wire (NIC op/byte counters), on every telemetry surface (full
//! registry snapshot, span recorder), on the virtual clock, and in
//! every response payload.
//!
//! This is the mux's regression anchor, in the same spirit as the
//! pipelined client's `W = 1 ≡ sequential` pin: fleet features must be
//! pay-as-you-go, and this test is what "zero" means.

use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use rfp_core::{
    connect, serve_loop, IdlePolicy, MuxConfig, RfpClient, RfpConfig, RfpMux, RfpTelemetry,
    TenantId,
};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{MetricsRegistry, SimSpan, Simulation, SpanRecorder};

/// Everything observable about one run.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    now_ns: u64,
    /// Full registry snapshot (rfp.client.*, serve.scan.*, nic.*).
    registry_csv: String,
    spans_recorded: u64,
    /// NIC counters of both machines.
    nics: Vec<rfp_rnic::NicCounters>,
    /// Every response payload, per client, in call order.
    responses: Vec<Vec<Vec<u8>>>,
}

/// Runs `m` clients, each issuing `calls` echo calls of sizes drawn
/// from `sizes`, over dedicated connections (`mux = false`) or a pinned
/// M=N mux (`mux = true`). Rig construction order is identical in both
/// arms so event ids line up.
fn run(seed: u64, m: usize, window: usize, calls: usize, sizes: &[usize], mux: bool) -> Observed {
    let registry = MetricsRegistry::new();
    let spans = SpanRecorder::new(1024);
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    cluster.attach_metrics(&registry);

    let mut clients: Vec<Rc<RfpClient>> = Vec::new();
    for i in 0..m {
        let cfg = RfpConfig {
            window,
            telemetry: Some(RfpTelemetry {
                registry: registry.clone(),
                spans: spans.clone(),
                prefix: format!("rfp.client.{i}"),
                track: i as u32,
            }),
            conn_id: i as u32,
            ..RfpConfig::default()
        };
        let (cl, sc) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
        clients.push(Rc::new(cl));
        let st = sm.thread(format!("server{i}"));
        // Adaptive idle keeps the per-case event count small: the rig
        // is idle for most of the horizon once the few calls finish.
        sim.spawn(serve_loop(
            st,
            vec![Rc::new(sc)],
            |req: &[u8]| (req.to_vec(), SimSpan::micros(1)),
            IdlePolicy::adaptive(SimSpan::nanos(100), SimSpan::micros(100)),
        ));
    }

    let mux_layer = mux.then(|| {
        RfpMux::new(
            clients.clone(),
            MuxConfig {
                stamp_tenant: false,
                ..MuxConfig::default()
            },
        )
    });

    let responses: Rc<std::cell::RefCell<Vec<Vec<Vec<u8>>>>> =
        Rc::new(std::cell::RefCell::new(vec![Vec::new(); m]));
    for i in 0..m {
        let t = cm.thread(format!("task{i}"));
        let client = Rc::clone(&clients[i]);
        let logical = mux_layer
            .as_ref()
            .map(|mx| mx.logical_client_pinned(TenantId(i as u32), i));
        let sizes: Vec<usize> = sizes.to_vec();
        let out = Rc::clone(&responses);
        sim.spawn(async move {
            for k in 0..calls {
                let len = sizes[(i + k) % sizes.len()];
                let payload: Vec<u8> = (0..len).map(|b| (b + i * 31 + k) as u8).collect();
                let result = match &logical {
                    Some(lc) => lc.call(&t, &payload).await,
                    None => client.call(&t, &payload).await,
                };
                out.borrow_mut()[i].push(result.data);
            }
        });
    }
    sim.run_for(SimSpan::millis(5));

    let mut registry_csv = Vec::new();
    registry
        .snapshot()
        .write_csv(&mut registry_csv)
        .expect("render snapshot");
    Observed {
        now_ns: sim.now().as_nanos(),
        registry_csv: String::from_utf8(registry_csv).expect("csv is utf8"),
        spans_recorded: spans.recorded(),
        nics: (0..2)
            .map(|i| cluster.machine(i).nic().counters())
            .collect(),
        responses: Rc::try_unwrap(responses)
            .expect("tasks finished")
            .into_inner(),
    }
}

proptest! {
    /// Pinned M=N mux ≡ dedicated connections, observably everywhere.
    #[test]
    fn pinned_mux_is_byte_identical_to_dedicated_conns(
        seed in 0u64..200,
        m in 1usize..4,
        wexp in 0usize..3,
        calls in 1usize..5,
        sizes in vec(1usize..96, 1..4),
    ) {
        let window = 1usize << wexp;
        let dedicated = run(seed, m, window, calls, &sizes, false);
        let muxed = run(seed, m, window, calls, &sizes, true);
        // Every call completed in both arms.
        for (i, r) in dedicated.responses.iter().enumerate() {
            prop_assert_eq!(r.len(), calls, "dedicated client {} unfinished", i);
        }
        prop_assert_eq!(&dedicated, &muxed);
    }
}
