//! Replica-router failover: epoch-fenced switchover between two
//! live server endpoints.

use std::cell::Cell;
use std::rc::Rc;

use rfp_core::{
    connect, serve_loop, FailoverConfig, RecoveryConfig, ReplicaClient, RfpConfig, RfpServerConn,
};
use rfp_rnic::{Cluster, ClusterProfile, ThreadCtx};
use rfp_simnet::{RetryPolicy, SimSpan, Simulation};

/// One client machine plus two server machines, both echoing; the
/// router prefers machine 1 (replica 0) and falls back to machine 2.
struct Rig {
    sim: Simulation,
    cluster: Cluster,
    router: Rc<ReplicaClient>,
    client_thread: Rc<ThreadCtx>,
    server_conns: Vec<Rc<RfpServerConn>>,
}

fn rig() -> Rig {
    let mut sim = Simulation::new(23);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 3);
    let client_m = cluster.machine(0);
    let mut replicas = Vec::new();
    let mut server_conns = Vec::new();
    for s in 1..3usize {
        let server_m = cluster.machine(s);
        let (cl, sc) = connect(
            &client_m,
            &server_m,
            cluster.qp(0, s),
            cluster.qp(s, 0),
            RfpConfig {
                enable_mode_switch: false,
                ..RfpConfig::default()
            },
        );
        cl.set_reconnect(cluster.qp_factory(0, s));
        let sc = Rc::new(sc);
        let st = server_m.thread(format!("server-{s}"));
        sim.spawn(serve_loop(
            st,
            vec![Rc::clone(&sc)],
            |req: &[u8]| (req.to_vec(), SimSpan::nanos(200)),
            SimSpan::nanos(100),
        ));
        server_conns.push(sc);
        replicas.push(Rc::new(cl));
    }
    let router = Rc::new(ReplicaClient::new(
        replicas,
        FailoverConfig {
            recovery: RecoveryConfig {
                // Short budget so a dead replica is abandoned quickly.
                retry: RetryPolicy::exponential(3, SimSpan::micros(5), SimSpan::micros(50), 0.2),
                ..RecoveryConfig::default()
            },
            max_failovers: 4,
            ..FailoverConfig::default()
        },
    ));
    Rig {
        client_thread: client_m.thread("client"),
        sim,
        cluster,
        router,
        server_conns,
    }
}

#[test]
fn healthy_run_sticks_to_the_primary() {
    let mut r = rig();
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    let done = Rc::new(Cell::new(0u32));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        for i in 0..20u32 {
            let out = router.call(&t, &i.to_le_bytes()).await.expect("healthy");
            assert_eq!(out.data, i.to_le_bytes());
            d.set(d.get() + 1);
        }
    });
    r.sim.run_for(SimSpan::millis(5));
    assert_eq!(done.get(), 20);
    assert_eq!(r.router.active(), 0);
    assert_eq!(r.router.failovers(), 0);
}

#[test]
fn primary_crash_fails_over_to_the_backup() {
    let mut r = rig();
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    // Promote the backup before the crash, as a failure detector would:
    // its responses then carry epoch 1.
    r.server_conns[1].set_epoch(1);
    r.cluster.machine(1).faults().set_crashed(true);
    let done = Rc::new(Cell::new(0u32));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        for i in 0..10u32 {
            let out = router.call(&t, &i.to_le_bytes()).await.expect("failover");
            assert_eq!(out.data, i.to_le_bytes());
            d.set(d.get() + 1);
        }
    });
    r.sim.run_for(SimSpan::millis(20));
    assert_eq!(done.get(), 10);
    assert_eq!(r.router.active(), 1);
    assert!(r.router.failovers() >= 1);
    // The router adopted the promoted replica's epoch...
    assert_eq!(r.router.known_epoch(), 1);
    // ...so if the deposed primary came back at epoch 0, nothing it
    // answers would pass the router's acceptance check.
}

#[test]
fn epoch_fence_self_heals_without_failover() {
    let mut r = rig();
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    // The active replica moves to epoch 3 (say, after a failover chain
    // elsewhere); the router's first epoch-0 call is fenced, adopts the
    // server's epoch from the `Fenced` verdict, and resubmits — all
    // inside one recovery loop, with no replica switch.
    r.server_conns[0].set_epoch(3);
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        let out = router.call(&t, b"fence-me").await.expect("heals");
        assert_eq!(out.data, b"fence-me");
        d.set(true);
    });
    r.sim.run_for(SimSpan::millis(5));
    assert!(done.get());
    assert_eq!(r.router.failovers(), 0);
    assert_eq!(r.router.known_epoch(), 3);
    assert!(r.server_conns[0].rejected_fenced() >= 1);
}

#[test]
fn backoff_streak_resets_after_a_successful_failover() {
    let mut r = rig();
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    r.server_conns[1].set_epoch(1);
    r.cluster.machine(1).faults().set_crashed(true);
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        // The first call burns the whole retry budget on the dead
        // primary (escalating the failure streak) before the failover
        // succeeds on the backup.
        let out = router.call(&t, b"streak").await.expect("failover");
        assert_eq!(out.data, b"streak");
        d.set(true);
    });
    r.sim.run_for(SimSpan::millis(20));
    assert!(done.get());
    assert!(r.router.failovers() >= 1);
    // The success must clear the escalated-backoff state: otherwise
    // the next transient error after a clean failover starts from the
    // streak the dead replica left behind and over-backs-off.
    assert_eq!(r.router.fail_streak(), 0);
}
