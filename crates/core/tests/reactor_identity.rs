//! N=1 reactor ≡ legacy serve loops, byte for byte.
//!
//! The multi-core refactor folded three serve-loop variants (the
//! classic scan, the admission-swept batch drain, the per-tenant
//! poller loop) into one [`Reactor`](rfp_core::Reactor). The refactor
//! contract is that a single-core reactor replays the legacy loops
//! *event for event*: same try_recv order, same busy charges, same
//! crash checks, same credit stamps, same idle backoff. This test pins
//! that contract the way `prop_mux` pins the mux veneer: frozen
//! verbatim copies of the pre-refactor loops run against the reactor
//! under randomized knobs (policy, ring window, idle backoff, client
//! count, payload sizes), and every observable surface — virtual
//! clock, full registry snapshot, NIC counters, every response payload
//! — must compare equal.

use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use rfp_core::{
    admit, connect, credits_for, serve_loop, serve_loop_tenant, Admission, IdlePolicy,
    OverloadConfig, RespStatus, RfpClient, RfpConfig, RfpHandler, RfpServerConn, RfpTelemetry,
    TenantCredits,
};
use rfp_rnic::{Cluster, ClusterProfile, ThreadCtx};
use rfp_simnet::{MetricsRegistry, SimSpan, Simulation, SpanRecorder};

/// Which admission discipline the scenario runs (and which frozen
/// legacy loop the reactor is compared against).
#[derive(Copy, Clone, Debug)]
enum Policy {
    Plain,
    Overload,
    Tenant,
}

/// Everything observable about one run.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    now_ns: u64,
    registry_csv: String,
    spans_recorded: u64,
    nics: Vec<rfp_rnic::NicCounters>,
    /// Every response payload (or rejection marker), per client, in
    /// call order.
    responses: Vec<Vec<Vec<u8>>>,
}

/// `IdlePolicy::next_nap`, reimplemented from its public contract (the
/// method itself is crate-private): zero without backoff, else doubling
/// from `spin` up to `max_nap`.
fn next_nap(idle: &IdlePolicy, prev: SimSpan) -> SimSpan {
    if idle.max_nap.is_zero() {
        return SimSpan::ZERO;
    }
    if prev.is_zero() {
        idle.spin.min(idle.max_nap)
    } else {
        SimSpan::nanos(prev.as_nanos().saturating_mul(2)).min(idle.max_nap)
    }
}

/// Frozen copy of the pre-reactor `serve_loop_plain`.
async fn legacy_plain(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    mut handler: impl RfpHandler,
    idle: IdlePolicy,
) {
    let mut nap = SimSpan::ZERO;
    loop {
        if thread.machine().faults().is_crashed() {
            thread
                .idle_wait(thread.handle().sleep(idle.spin.max(SimSpan::micros(1))))
                .await;
            continue;
        }
        let mut served_any = false;
        'conns: for conn in &conns {
            for _ in 0..conn.window() {
                if thread.machine().faults().is_crashed() {
                    break 'conns;
                }
                let Some(req) = conn.try_recv(&thread).await else {
                    break;
                };
                let (resp, process) = handler.handle(&req);
                if !process.is_zero() {
                    thread.busy(process).await;
                }
                if thread.machine().faults().is_crashed() {
                    break 'conns;
                }
                conn.send(&thread, &resp).await;
                served_any = true;
            }
        }
        if !served_any {
            thread.busy(idle.spin).await;
            nap = next_nap(&idle, nap);
            if !nap.is_zero() {
                thread.idle_wait(thread.handle().sleep(nap)).await;
            }
        } else {
            nap = SimSpan::ZERO;
        }
    }
}

/// Frozen copy of the pre-reactor `serve_loop_overload`.
async fn legacy_overload(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    mut handler: impl RfpHandler,
    idle: IdlePolicy,
    // The legacy loop read this via the (crate-private) conn accessor;
    // the test passes the identical config in from the rig instead.
    ov: OverloadConfig,
) {
    let mut advertised = ov.credit_max;
    let mut nap = SimSpan::ZERO;
    loop {
        if thread.machine().faults().is_crashed() {
            thread
                .idle_wait(thread.handle().sleep(idle.spin.max(SimSpan::micros(1))))
                .await;
            continue;
        }
        let mut served_any = false;
        let mut crashed = false;
        let mut admitted: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut backlog = 0usize;
        'sweep: for (i, conn) in conns.iter().enumerate() {
            for _ in 0..conn.window() {
                if thread.machine().faults().is_crashed() {
                    crashed = true;
                    break 'sweep;
                }
                let Some(req) = conn.try_recv(&thread).await else {
                    break;
                };
                backlog += 1;
                match admit(&ov, thread.now(), conn.current_deadline(), admitted.len()) {
                    Admission::Admit => admitted.push((i, req)),
                    Admission::Busy => {
                        conn.set_advertised_credits(0);
                        conn.reject(&thread, RespStatus::Busy).await;
                        served_any = true;
                    }
                    Admission::Shed => {
                        conn.set_advertised_credits(advertised);
                        conn.reject(&thread, RespStatus::Shed).await;
                        served_any = true;
                    }
                }
            }
        }
        advertised = credits_for(&ov, backlog);
        if !crashed {
            for (i, req) in admitted {
                if thread.machine().faults().is_crashed() {
                    break;
                }
                let (resp, process) = handler.handle(&req);
                if !process.is_zero() {
                    thread.busy(process).await;
                }
                if thread.machine().faults().is_crashed() {
                    break;
                }
                conns[i].set_advertised_credits(advertised);
                conns[i].send(&thread, &resp).await;
                served_any = true;
            }
        }
        if !served_any {
            thread.busy(idle.spin).await;
            nap = next_nap(&idle, nap);
            if !nap.is_zero() {
                thread.idle_wait(thread.handle().sleep(nap)).await;
            }
        } else {
            nap = SimSpan::ZERO;
        }
    }
}

/// Frozen copy of the pre-reactor `serve_loop_tenant`.
async fn legacy_tenant(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    mut handler: impl RfpHandler,
    idle: IdlePolicy,
    ov: OverloadConfig,
) {
    assert!(ov.enabled);
    let credits = TenantCredits::new();
    let mut nap = SimSpan::ZERO;
    loop {
        if thread.machine().faults().is_crashed() {
            thread
                .idle_wait(thread.handle().sleep(idle.spin.max(SimSpan::micros(1))))
                .await;
            continue;
        }
        let mut served_any = false;
        let mut crashed = false;
        credits.begin_scan();
        let mut admitted: Vec<(usize, Option<u32>, Vec<u8>)> = Vec::new();
        'sweep: for (i, conn) in conns.iter().enumerate() {
            for _ in 0..conn.window() {
                if thread.machine().faults().is_crashed() {
                    crashed = true;
                    break 'sweep;
                }
                let Some(req) = conn.try_recv(&thread).await else {
                    break;
                };
                let tenant = conn.current_tenant();
                match credits.admit(&ov, thread.now(), conn.current_deadline(), tenant) {
                    Admission::Admit => admitted.push((i, tenant, req)),
                    Admission::Busy => {
                        conn.set_advertised_credits(0);
                        conn.reject(&thread, RespStatus::Busy).await;
                        served_any = true;
                    }
                    Admission::Shed => {
                        conn.set_advertised_credits(credits.credits(&ov, tenant));
                        conn.reject(&thread, RespStatus::Shed).await;
                        served_any = true;
                    }
                }
            }
        }
        if !crashed {
            for (i, tenant, req) in admitted {
                if thread.machine().faults().is_crashed() {
                    break;
                }
                let (resp, process) = handler.handle(&req);
                if !process.is_zero() {
                    thread.busy(process).await;
                }
                if thread.machine().faults().is_crashed() {
                    break;
                }
                conns[i].set_advertised_credits(credits.credits(&ov, tenant));
                conns[i].send(&thread, &resp).await;
                served_any = true;
            }
        }
        if !served_any {
            thread.busy(idle.spin).await;
            nap = next_nap(&idle, nap);
            if !nap.is_zero() {
                thread.idle_wait(thread.handle().sleep(nap)).await;
            }
        } else {
            nap = SimSpan::ZERO;
        }
    }
}

struct Scenario {
    seed: u64,
    policy: Policy,
    m: usize,
    window: usize,
    calls: usize,
    sizes: Vec<usize>,
    adaptive: bool,
    queue_limit: usize,
    deadline_us: u64,
}

/// Runs the scenario with the reactor-backed entry points
/// (`legacy = false`) or the frozen pre-refactor loops
/// (`legacy = true`). Rig construction is identical in both arms.
fn run(sc: &Scenario, legacy: bool) -> Observed {
    let registry = MetricsRegistry::new();
    let spans = SpanRecorder::new(1024);
    let mut sim = Simulation::new(sc.seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    cluster.attach_metrics(&registry);

    let overload_on = !matches!(sc.policy, Policy::Plain);
    let mut clients: Vec<Rc<RfpClient>> = Vec::new();
    let mut conns: Vec<Rc<RfpServerConn>> = Vec::new();
    let mut ov0: Option<OverloadConfig> = None;
    for i in 0..sc.m {
        let ov = OverloadConfig {
            enabled: overload_on,
            queue_limit: sc.queue_limit,
            deadline: SimSpan::micros(sc.deadline_us),
            seed: rfp_simnet::derive_seed(sc.seed, 0x0CAFE + i as u64),
            ..OverloadConfig::default()
        };
        if i == 0 {
            ov0 = Some(ov.clone());
        }
        let cfg = RfpConfig {
            window: sc.window,
            overload: ov,
            telemetry: Some(RfpTelemetry {
                registry: registry.clone(),
                spans: spans.clone(),
                prefix: format!("rfp.client.{i}"),
                track: i as u32,
            }),
            conn_id: i as u32,
            ..RfpConfig::default()
        };
        let (cl, sc_conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
        if matches!(sc.policy, Policy::Tenant) {
            cl.set_tenant(Some(i as u32 % 2));
        }
        clients.push(Rc::new(cl));
        conns.push(Rc::new(sc_conn));
    }

    // One server thread owning every connection: the N=1 core shape
    // the identity contract covers.
    let st = sm.thread("server");
    let idle = if sc.adaptive {
        IdlePolicy::adaptive(SimSpan::nanos(100), SimSpan::micros(100))
    } else {
        IdlePolicy::fixed(SimSpan::nanos(100))
    };
    let handler = |req: &[u8]| (req.to_vec(), SimSpan::micros(1));
    match (sc.policy, legacy) {
        (Policy::Plain, false) | (Policy::Overload, false) => {
            sim.spawn(serve_loop(st, conns.clone(), handler, idle));
        }
        (Policy::Tenant, false) => {
            sim.spawn(serve_loop_tenant(st, conns.clone(), handler, idle));
        }
        (Policy::Plain, true) => {
            sim.spawn(legacy_plain(st, conns.clone(), handler, idle));
        }
        (Policy::Overload, true) => {
            sim.spawn(legacy_overload(
                st,
                conns.clone(),
                handler,
                idle,
                ov0.clone().expect("at least one conn"),
            ));
        }
        (Policy::Tenant, true) => {
            sim.spawn(legacy_tenant(
                st,
                conns.clone(),
                handler,
                idle,
                ov0.clone().expect("at least one conn"),
            ));
        }
    }

    let responses: Rc<std::cell::RefCell<Vec<Vec<Vec<u8>>>>> =
        Rc::new(std::cell::RefCell::new(vec![Vec::new(); sc.m]));
    for i in 0..sc.m {
        let t = cm.thread(format!("task{i}"));
        let client = Rc::clone(&clients[i]);
        let sizes = sc.sizes.clone();
        let calls = sc.calls;
        let out = Rc::clone(&responses);
        let pipelined = matches!(sc.policy, Policy::Plain) && sc.window > 1;
        let overload = overload_on;
        sim.spawn(async move {
            if pipelined {
                // One batch through the ring: multiple slots of one
                // connection pending in a single server scan.
                let reqs: Vec<Vec<u8>> = (0..calls)
                    .map(|k| {
                        let len = sizes[(i + k) % sizes.len()];
                        (0..len).map(|b| (b + i * 31 + k) as u8).collect()
                    })
                    .collect();
                let outs = client.call_pipelined(&t, &reqs).await;
                for o in outs {
                    out.borrow_mut()[i].push(o.data);
                }
                return;
            }
            for k in 0..calls {
                let len = sizes[(i + k) % sizes.len()];
                let payload: Vec<u8> = (0..len).map(|b| (b + i * 31 + k) as u8).collect();
                if overload {
                    let r = client.call_overload(&t, &payload, None).await;
                    // Rejections observe as status markers so both arms
                    // must reject identically, not just serve
                    // identically.
                    let data = match r.info.status {
                        RespStatus::Ok => r.data,
                        s => vec![0xEE, s as u8],
                    };
                    out.borrow_mut()[i].push(data);
                } else {
                    let r = client.call(&t, &payload).await;
                    out.borrow_mut()[i].push(r.data);
                }
            }
        });
    }
    sim.run_for(SimSpan::millis(3));

    let mut registry_csv = Vec::new();
    registry
        .snapshot()
        .write_csv(&mut registry_csv)
        .expect("render snapshot");
    Observed {
        now_ns: sim.now().as_nanos(),
        registry_csv: String::from_utf8(registry_csv).expect("csv is utf8"),
        spans_recorded: spans.recorded(),
        nics: (0..2)
            .map(|i| cluster.machine(i).nic().counters())
            .collect(),
        responses: Rc::try_unwrap(responses)
            .expect("tasks finished")
            .into_inner(),
    }
}

proptest! {
    /// Single-core reactor ≡ frozen legacy loops, observably everywhere.
    #[test]
    fn single_core_reactor_is_byte_identical_to_legacy_loops(
        seed in 0u64..200,
        policy_pick in 0usize..3,
        m in 1usize..4,
        wexp in 0usize..3,
        calls in 1usize..5,
        sizes in vec(1usize..96, 1..4),
        adaptive in any::<bool>(),
        queue_limit in 1usize..8,
        deadline_tight in any::<bool>(),
    ) {
        let sc = Scenario {
            seed,
            policy: [Policy::Plain, Policy::Overload, Policy::Tenant][policy_pick],
            m,
            window: 1usize << wexp,
            calls,
            sizes,
            adaptive,
            queue_limit,
            deadline_us: if deadline_tight { 5 } else { 1_000 },
        };
        let reactor = run(&sc, false);
        let frozen = run(&sc, true);
        prop_assert_eq!(&reactor, &frozen);
    }
}
