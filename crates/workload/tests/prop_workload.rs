//! Property-based tests of the workload generators.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfp_workload::{KeyDist, Op, OpMix, ValueSize, WorkloadSpec, Zipf};

fn spec(key_count: u64, get_fraction: f64, zipf: bool) -> WorkloadSpec {
    WorkloadSpec {
        key_count,
        key_len: 16,
        keys: if zipf {
            KeyDist::Zipf(0.99)
        } else {
            KeyDist::Uniform
        },
        values: ValueSize::Fixed(32),
        mix: OpMix { get_fraction },
    }
}

proptest! {
    /// Every generated key decodes to an id inside the key space and has
    /// the configured length.
    #[test]
    fn keys_always_in_range(
        key_count in 1u64..100_000,
        zipf in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut g = spec(key_count, 0.5, zipf).generator(seed);
        for _ in 0..200 {
            let op = g.next_op();
            let key = op.key();
            prop_assert_eq!(key.len(), 16);
            let id = u64::from_le_bytes(key[..8].try_into().expect("8 bytes"));
            prop_assert!(id < key_count, "id {id} out of {key_count}");
        }
    }

    /// Same seed ⇒ identical stream; the stream respects the mix within
    /// statistical tolerance.
    #[test]
    fn deterministic_and_mix_bounded(get_fraction in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut a = spec(1000, get_fraction, false).generator(seed);
        let mut b = spec(1000, get_fraction, false).generator(seed);
        let mut gets = 0usize;
        const N: usize = 1000;
        for _ in 0..N {
            let (x, y) = (a.next_op(), b.next_op());
            prop_assert_eq!(&x, &y);
            if matches!(x, Op::Get { .. }) {
                gets += 1;
            }
        }
        let frac = gets as f64 / N as f64;
        prop_assert!((frac - get_fraction).abs() < 0.08, "{frac} vs {get_fraction}");
    }

    /// Zipf samples are in-range for any (n, θ) in the supported domain,
    /// and the head is at least as heavy as uniform.
    #[test]
    fn zipf_domain(n in 1u64..1_000_000, theta in 0.01f64..0.999, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        prop_assert!(z.top_probability() >= 1.0 / n as f64 - 1e-12);
        // Head mass is monotone in k and reaches 1 at n.
        prop_assert!(z.head_mass(1) <= z.head_mass(n.min(10)) + 1e-12);
        prop_assert!((z.head_mass(n) - 1.0).abs() < 1e-6);
    }

    /// Value sizes stay inside the configured distribution.
    #[test]
    fn value_sizes_in_bounds(min in 1usize..512, extra in 0usize..4096, seed in any::<u64>()) {
        let values = ValueSize::Uniform { min, max: min + extra };
        for s in values.samples(100, seed) {
            prop_assert!(s >= min && s <= min + extra);
        }
        prop_assert_eq!(values.max(), min + extra);
    }
}
