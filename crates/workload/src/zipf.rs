//! Zipfian sampling, after Gray et al. ("Quickly Generating
//! Billion-Record Synthetic Databases", SIGMOD '94) — the algorithm YCSB
//! uses for its zipfian request distribution.
//!
//! Sampling is O(1) per draw after an O(n·) zeta precomputation; for the
//! paper's 128 M-key space the zeta sum is approximated by integral
//! bounds past a cutoff, keeping construction fast while staying within
//! a fraction of a percent of the exact value.

use rand::Rng;

/// A Zipf(θ) sampler over ranks `0..n`.
///
/// Rank 0 is the most popular item. With the paper's θ = 0.99, the most
/// popular key is about 10⁵× more frequent than the average key of a
/// 128 M-key space (§4.4.3).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rfp_workload::Zipf;
///
/// let zipf = Zipf::new(1_000_000, 0.99);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// // The head carries outsized mass relative to uniform.
/// assert!(zipf.head_mass(100) > 100.0 / 1_000_000.0 * 100.0);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

/// Exact zeta below this many terms; integral approximation above.
const EXACT_TERMS: u64 = 1 << 20;

fn zeta(n: u64, theta: f64) -> f64 {
    let exact_n = n.min(EXACT_TERMS);
    let mut sum = 0.0;
    for i in 1..=exact_n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    if n > exact_n {
        // ∫ x^-θ dx from exact_n to n, midpoint of the two Riemann
        // bounds (the summand is monotone, so the error is below half
        // the first omitted term).
        let a = exact_n as f64;
        let b = n as f64;
        let integral = (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        sum += integral + 0.5 * (a.powf(-theta) - b.powf(-theta));
    }
    sum
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)` (the YCSB
    /// algorithm's domain; θ = 0.99 is the paper's setting).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty rank space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of the most popular rank.
    pub fn top_probability(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Probability mass of the `k` most popular ranks (used in tests
    /// and for reasoning about cache hit rates).
    pub fn head_mass(&self, k: u64) -> f64 {
        zeta(k.min(self.n), self.theta) / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn empirical_head_matches_theory() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        const N: usize = 200_000;
        let mut head = 0usize;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        let expected = z.head_mass(100);
        let got = head as f64 / N as f64;
        assert!(
            (got - expected).abs() < 0.02,
            "head mass: got {got:.3}, expected {expected:.3}"
        );
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(100_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut zero = 0usize;
        const N: usize = 100_000;
        for _ in 0..N {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        let got = zero as f64 / N as f64;
        let expected = z.top_probability();
        assert!((got - expected).abs() < 0.01, "{got} vs {expected}");
        // The top key is orders of magnitude above the average key.
        assert!(expected > 100.0 / 100_000.0);
    }

    #[test]
    fn zeta_approximation_is_tight() {
        // Compare the integral-assisted zeta against an exact sum on a
        // size just past the cutoff.
        let n = EXACT_TERMS + 10_000;
        let approx = zeta(n, 0.99);
        let mut exact = 0.0;
        for i in 1..=n {
            exact += 1.0 / (i as f64).powf(0.99);
        }
        assert!(
            (approx - exact).abs() / exact < 1e-6,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn large_keyspace_constructs_quickly() {
        // The paper's 128 M keys must not require a 128 M-term sum.
        let z = Zipf::new(128 * 1024 * 1024, 0.99);
        assert!(z.top_probability() > 0.0);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn rejects_bad_theta() {
        let _ = Zipf::new(10, 1.5);
    }
}
