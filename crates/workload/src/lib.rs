//! YCSB-style workload generation for the key-value experiments.
//!
//! The paper evaluates on workloads "uniformly generated with YCSB"
//! (128 M key-value pairs, 16-byte keys, 32-byte values by default) plus
//! a skewed variant drawn from a Zipf distribution with parameter 0.99
//! (§4.2). This crate reproduces those generators deterministically:
//!
//! * [`KeyDist`] — uniform or Zipf(θ) key selection ([`zipf::Zipf`]
//!   implements the Gray et al. incremental method YCSB uses),
//! * [`ValueSize`] — fixed or uniformly distributed value sizes,
//! * [`OpMix`] — GET percentage,
//! * [`Generator`] — a seeded stream of [`Op`]s.

pub mod linear;
mod zipf;

pub use linear::{check_history, HistEntry, LinError, RegOp};
pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key selection distribution.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with the given exponent (the paper uses 0.99).
    Zipf(f64),
    /// YCSB's hotspot distribution: `hot_op_fraction` of operations hit
    /// a uniformly chosen key from the hottest `hot_fraction` of the
    /// key space; the rest are uniform over the remainder.
    HotSpot {
        /// Fraction of the key space that is hot, in `(0, 1)`.
        hot_fraction: f64,
        /// Fraction of operations that target the hot set, in `[0, 1]`.
        hot_op_fraction: f64,
    },
}

/// Value size distribution.
#[derive(Copy, Clone, Debug)]
pub enum ValueSize {
    /// All values have this size (the paper's default is 32 B).
    Fixed(usize),
    /// Uniformly distributed in `[min, max]` (the §4.4.3 mixed run uses
    /// 32..8192).
    Uniform {
        /// Smallest value size.
        min: usize,
        /// Largest value size.
        max: usize,
    },
}

impl ValueSize {
    /// Largest size this distribution can produce.
    pub fn max(self) -> usize {
        match self {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform { max, .. } => max,
        }
    }

    /// Samples of this distribution (for parameter pre-runs).
    pub fn samples(self, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| match self {
                ValueSize::Fixed(n) => n,
                ValueSize::Uniform { min, max } => rng.gen_range(min..=max),
            })
            .collect()
    }
}

/// GET/PUT mix.
#[derive(Copy, Clone, Debug)]
pub struct OpMix {
    /// Fraction of operations that are GETs, in `[0, 1]`.
    pub get_fraction: f64,
}

impl OpMix {
    /// The paper's read-intensive mix (95% GET).
    pub const READ_INTENSIVE: OpMix = OpMix { get_fraction: 0.95 };
    /// The balanced mix (50% GET).
    pub const BALANCED: OpMix = OpMix { get_fraction: 0.50 };
    /// The write-intensive mix (5% GET).
    pub const WRITE_INTENSIVE: OpMix = OpMix { get_fraction: 0.05 };
}

/// One generated operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the value of `key`.
    Get {
        /// The key, exactly `key_len` bytes.
        key: Vec<u8>,
    },
    /// Store `value` under `key`.
    Put {
        /// The key, exactly `key_len` bytes.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
}

impl Op {
    /// The operation's key bytes.
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Get { key } | Op::Put { key, .. } => key,
        }
    }

    /// Whether this is a GET.
    pub fn is_get(&self) -> bool {
        matches!(self, Op::Get { .. })
    }
}

/// Workload description (one per experiment).
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of distinct keys (the paper pre-generates 128 M).
    pub key_count: u64,
    /// Key length in bytes (the paper uses 16).
    pub key_len: usize,
    /// Key distribution.
    pub keys: KeyDist,
    /// Value sizes.
    pub values: ValueSize,
    /// GET/PUT mix.
    pub mix: OpMix,
}

impl WorkloadSpec {
    /// The paper's default: uniform keys, 16 B keys, 32 B values,
    /// 95% GET.
    pub fn paper_default() -> Self {
        WorkloadSpec {
            key_count: 128 * 1024 * 1024,
            key_len: 16,
            keys: KeyDist::Uniform,
            values: ValueSize::Fixed(32),
            mix: OpMix::READ_INTENSIVE,
        }
    }

    /// The skewed variant: Zipf(0.99) keys.
    pub fn paper_skewed() -> Self {
        WorkloadSpec {
            keys: KeyDist::Zipf(0.99),
            ..Self::paper_default()
        }
    }

    /// Builds a deterministic generator for this spec.
    pub fn generator(&self, seed: u64) -> Generator {
        Generator::new(self.clone(), seed)
    }
}

/// Deterministic operation stream.
///
/// # Examples
///
/// ```
/// use rfp_workload::WorkloadSpec;
///
/// let spec = WorkloadSpec {
///     key_count: 100,
///     ..WorkloadSpec::paper_default()
/// };
/// let mut gen = spec.generator(42);
/// let op = gen.next_op();
/// assert_eq!(op.key().len(), 16); // the paper's 16-byte keys
/// ```
pub struct Generator {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Option<Zipf>,
}

impl Generator {
    /// Creates a generator; same `(spec, seed)` ⇒ same stream.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        assert!(spec.key_count > 0, "need at least one key");
        assert!(spec.key_len >= 8, "keys must hold a 64-bit id");
        assert!(
            (0.0..=1.0).contains(&spec.mix.get_fraction),
            "get fraction out of range"
        );
        let zipf = match spec.keys {
            KeyDist::Uniform | KeyDist::HotSpot { .. } => None,
            KeyDist::Zipf(theta) => Some(Zipf::new(spec.key_count, theta)),
        };
        if let KeyDist::HotSpot {
            hot_fraction,
            hot_op_fraction,
        } = spec.keys
        {
            assert!(
                hot_fraction > 0.0 && hot_fraction < 1.0,
                "hot fraction must be in (0, 1)"
            );
            assert!(
                (0.0..=1.0).contains(&hot_op_fraction),
                "hot op fraction out of range"
            );
        }
        Generator {
            spec,
            rng: StdRng::seed_from_u64(seed),
            zipf,
        }
    }

    /// The spec this stream follows.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn key_id(&mut self) -> u64 {
        if let KeyDist::HotSpot {
            hot_fraction,
            hot_op_fraction,
        } = self.spec.keys
        {
            let hot_keys = ((self.spec.key_count as f64 * hot_fraction) as u64).max(1);
            return if self.rng.gen::<f64>() < hot_op_fraction {
                self.rng.gen_range(0..hot_keys)
            } else {
                self.rng
                    .gen_range(hot_keys..self.spec.key_count.max(hot_keys + 1))
            };
        }
        match &self.zipf {
            None => self.rng.gen_range(0..self.spec.key_count),
            Some(z) => z.sample(&mut self.rng),
        }
    }

    /// Materialises key id `id` as `key_len` bytes (id little-endian,
    /// then a deterministic fill — matching how YCSB pads "userNNN"
    /// keys to a fixed width).
    pub fn key_bytes(&self, id: u64) -> Vec<u8> {
        let mut key = vec![0u8; self.spec.key_len];
        key[..8].copy_from_slice(&id.to_le_bytes());
        for (i, b) in key.iter_mut().enumerate().skip(8) {
            *b = (i as u8).wrapping_mul(31).wrapping_add(7);
        }
        key
    }

    fn value(&mut self) -> Vec<u8> {
        let n = match self.spec.values {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform { min, max } => self.rng.gen_range(min..=max),
        };
        // Cheap deterministic content; the KV systems verify echo
        // integrity with it.
        let tag = self.rng.gen::<u8>();
        (0..n).map(|i| tag.wrapping_add(i as u8)).collect()
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let id = self.key_id();
        let key = self.key_bytes(id);
        if self.rng.gen::<f64>() < self.spec.mix.get_fraction {
            Op::Get { key }
        } else {
            Op::Put {
                key,
                value: self.value(),
            }
        }
    }

    /// Key/value pairs for pre-loading the store (ids `0..count`).
    pub fn preload(&mut self, count: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..count)
            .map(|id| (self.key_bytes(id), self.value()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let spec = WorkloadSpec {
            key_count: 1000,
            ..WorkloadSpec::paper_default()
        };
        let mut a = spec.generator(42);
        let mut b = spec.generator(42);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = spec.generator(43);
        let differs = (0..100).any(|_| a.next_op() != c.next_op());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn mix_fraction_is_respected() {
        let spec = WorkloadSpec {
            key_count: 1000,
            mix: OpMix::READ_INTENSIVE,
            ..WorkloadSpec::paper_default()
        };
        let mut g = spec.generator(7);
        let gets = (0..10_000).filter(|_| g.next_op().is_get()).count();
        let frac = gets as f64 / 10_000.0;
        assert!((0.93..0.97).contains(&frac), "{frac}");
    }

    #[test]
    fn keys_have_requested_length_and_unique_ids() {
        let spec = WorkloadSpec {
            key_count: 50,
            key_len: 16,
            ..WorkloadSpec::paper_default()
        };
        let g = spec.generator(0);
        let mut seen = std::collections::HashSet::new();
        for id in 0..50 {
            let k = g.key_bytes(id);
            assert_eq!(k.len(), 16);
            assert!(seen.insert(k));
        }
    }

    #[test]
    fn uniform_value_sizes_stay_in_range() {
        let spec = WorkloadSpec {
            key_count: 10,
            mix: OpMix { get_fraction: 0.0 },
            values: ValueSize::Uniform { min: 32, max: 8192 },
            ..WorkloadSpec::paper_default()
        };
        let mut g = spec.generator(1);
        let mut min_seen = usize::MAX;
        let mut max_seen = 0;
        for _ in 0..2000 {
            if let Op::Put { value, .. } = g.next_op() {
                min_seen = min_seen.min(value.len());
                max_seen = max_seen.max(value.len());
            }
        }
        assert!(min_seen >= 32);
        assert!(max_seen <= 8192);
        assert!(max_seen - min_seen > 4000, "spread looks wrong");
    }

    #[test]
    fn skewed_spec_concentrates_mass() {
        let spec = WorkloadSpec {
            key_count: 100_000,
            ..WorkloadSpec::paper_skewed()
        };
        let mut g = spec.generator(3);
        let mut top = 0u64;
        const N: u64 = 20_000;
        for _ in 0..N {
            let op = g.next_op();
            let id = u64::from_le_bytes(op.key()[..8].try_into().unwrap());
            if id < 100 {
                top += 1;
            }
        }
        // Zipf(.99): the top 100 of 100k keys draw a large share.
        let share = top as f64 / N as f64;
        assert!(share > 0.3, "top-100 share {share}");
    }

    #[test]
    fn preload_covers_requested_ids() {
        let spec = WorkloadSpec {
            key_count: 100,
            ..WorkloadSpec::paper_default()
        };
        let mut g = spec.generator(0);
        let pairs = g.preload(100);
        assert_eq!(pairs.len(), 100);
        assert!(pairs.iter().all(|(k, v)| k.len() == 16 && v.len() == 32));
    }

    #[test]
    fn hotspot_concentrates_configured_mass() {
        let spec = WorkloadSpec {
            key_count: 10_000,
            keys: KeyDist::HotSpot {
                hot_fraction: 0.1,
                hot_op_fraction: 0.8,
            },
            ..WorkloadSpec::paper_default()
        };
        let mut g = spec.generator(9);
        let mut hot = 0u32;
        const N: u32 = 20_000;
        for _ in 0..N {
            let op = g.next_op();
            let id = u64::from_le_bytes(op.key()[..8].try_into().expect("8 bytes"));
            assert!(id < 10_000);
            if id < 1_000 {
                hot += 1;
            }
        }
        let frac = hot as f64 / N as f64;
        assert!((0.77..0.83).contains(&frac), "hot share {frac}");
    }

    #[test]
    #[should_panic(expected = "hot fraction must be in")]
    fn hotspot_rejects_degenerate_fraction() {
        let spec = WorkloadSpec {
            key_count: 100,
            keys: KeyDist::HotSpot {
                hot_fraction: 1.5,
                hot_op_fraction: 0.5,
            },
            ..WorkloadSpec::paper_default()
        };
        let _ = spec.generator(0);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_rejected() {
        let spec = WorkloadSpec {
            key_count: 0,
            ..WorkloadSpec::paper_default()
        };
        let _ = spec.generator(0);
    }
}
