//! A WGL-style linearizability checker for key-value histories.
//!
//! The chaos rigs record every client operation as an interval
//! (invocation time, response time) plus its observed outcome; this
//! module decides, per key, whether some sequential order of those
//! operations (a) respects real time — an operation that completed
//! before another began must be ordered first — and (b) is legal for a
//! register: every read observes the latest preceding write. That is
//! the Wing & Gong / Lowe search: depth-first over the set of
//! "linearize next" candidates, memoized on (linearized-set, register
//! value) so equivalent interleavings are explored once.
//!
//! Conventions tailored to the rigs:
//!
//! * **unique write values** — every write carries a globally unique
//!   `u64` (the rigs use `client << 32 | version`), so a read pins
//!   exactly which write it observed; two acknowledged writes of the
//!   same value indicate a duplicated ack and are rejected outright;
//! * **pending operations** — an operation whose response never
//!   arrived (client crashed mid-call, call exhausted its budget) *may*
//!   have taken effect. A pending write may be linearized at any point
//!   after its invocation, or never; a pending read constrains nothing
//!   and should simply not be recorded.
//!
//! Histories are capped at 128 operations per key (the search mask is a
//! `u128`); the rigs size their runs under that.

use std::collections::{BTreeMap, HashSet};

/// One operation on a single register (one key).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RegOp {
    /// Store `value` (unique across the whole history).
    Write(u64),
    /// Observe the register: `Some(value)` or `None` for not-found.
    Read(Option<u64>),
}

/// One recorded operation interval.
#[derive(Copy, Clone, Debug)]
pub struct HistEntry {
    /// The key this operation touched.
    pub key: u64,
    /// Issuing client (diagnostics only; the checker does not use it).
    pub client: u32,
    /// Invocation instant (any monotonic unit, e.g. sim nanoseconds).
    pub start: u64,
    /// Response instant; `None` for a pending operation that never
    /// returned (it may or may not have taken effect).
    pub end: Option<u64>,
    /// What the operation did / observed.
    pub op: RegOp,
}

/// Why a history failed the check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinError {
    /// Two acknowledged writes carried the same value — a duplicated
    /// ack, which the unique-value convention rules out.
    DuplicateWriteValue {
        /// The offending key.
        key: u64,
        /// The doubly-acknowledged value.
        value: u64,
    },
    /// More than 128 operations on one key (search mask overflow).
    HistoryTooLong {
        /// The offending key.
        key: u64,
        /// Operations recorded on it.
        len: usize,
    },
    /// No legal sequential order exists for this key's operations.
    NotLinearizable {
        /// The offending key.
        key: u64,
    },
}

impl std::fmt::Display for LinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinError::DuplicateWriteValue { key, value } => {
                write!(f, "key {key}: write value {value:#x} acknowledged twice")
            }
            LinError::HistoryTooLong { key, len } => {
                write!(f, "key {key}: {len} ops exceed the 128-op search cap")
            }
            LinError::NotLinearizable { key } => {
                write!(f, "key {key}: no linearization exists")
            }
        }
    }
}

impl std::error::Error for LinError {}

/// Checks a whole multi-key history: groups by key and runs the
/// register search on each. Returns the first failing key (lowest key
/// id first — deterministic).
pub fn check_history(entries: &[HistEntry]) -> Result<(), LinError> {
    let mut by_key: BTreeMap<u64, Vec<&HistEntry>> = BTreeMap::new();
    for e in entries {
        by_key.entry(e.key).or_default().push(e);
    }
    for (key, ops) in by_key {
        check_register(key, &ops)?;
    }
    Ok(())
}

/// One key's search. `ops` need not be sorted.
fn check_register(key: u64, ops: &[&HistEntry]) -> Result<(), LinError> {
    if ops.len() > 128 {
        return Err(LinError::HistoryTooLong {
            key,
            len: ops.len(),
        });
    }
    // Duplicate-ack screen: acked writes must carry distinct values.
    let mut seen = HashSet::new();
    for e in ops {
        if let (RegOp::Write(v), Some(_)) = (e.op, e.end) {
            if !seen.insert(v) {
                return Err(LinError::DuplicateWriteValue { key, value: v });
            }
        }
    }

    let ends: Vec<u64> = ops.iter().map(|e| e.end.unwrap_or(u64::MAX)).collect();
    let required: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, e)| e.end.is_some())
        .fold(0u128, |m, (i, _)| m | (1u128 << i));

    // Iterative DFS: (mask of linearized ops, register value). `None`
    // register value = initial / not-found.
    let mut visited: HashSet<(u128, Option<u64>)> = HashSet::new();
    let mut stack: Vec<(u128, Option<u64>)> = vec![(0, None)];
    while let Some((mask, value)) = stack.pop() {
        if mask & required == required {
            return Ok(());
        }
        if !visited.insert((mask, value)) {
            continue;
        }
        // The next linearized op must be *minimal*: no other
        // un-linearized op may have completed before it was invoked.
        let mut frontier = u64::MAX;
        for (i, end) in ends.iter().enumerate() {
            if mask & (1u128 << i) == 0 {
                frontier = frontier.min(*end);
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if mask & (1u128 << i) != 0 || op.start > frontier {
                continue;
            }
            match op.op {
                RegOp::Write(v) => stack.push((mask | (1u128 << i), Some(v))),
                RegOp::Read(obs) => {
                    if obs == value {
                        stack.push((mask | (1u128 << i), value));
                    }
                }
            }
        }
    }
    Err(LinError::NotLinearizable { key })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(key: u64, client: u32, start: u64, end: u64, v: u64) -> HistEntry {
        HistEntry {
            key,
            client,
            start,
            end: Some(end),
            op: RegOp::Write(v),
        }
    }

    fn r(key: u64, client: u32, start: u64, end: u64, obs: Option<u64>) -> HistEntry {
        HistEntry {
            key,
            client,
            start,
            end: Some(end),
            op: RegOp::Read(obs),
        }
    }

    #[test]
    fn sequential_single_writer_is_linearizable() {
        let h = [
            w(1, 0, 0, 10, 100),
            r(1, 0, 20, 30, Some(100)),
            w(1, 0, 40, 50, 101),
            r(1, 0, 60, 70, Some(101)),
        ];
        assert_eq!(check_history(&h), Ok(()));
    }

    #[test]
    fn concurrent_read_may_see_either_side_of_a_write() {
        // The read overlaps the write: both the old and the new value
        // are legal observations.
        let old = [
            w(1, 0, 0, 10, 100),
            w(1, 0, 20, 40, 101),
            r(1, 1, 25, 35, Some(100)),
        ];
        let new = [
            w(1, 0, 0, 10, 100),
            w(1, 0, 20, 40, 101),
            r(1, 1, 25, 35, Some(101)),
        ];
        assert_eq!(check_history(&old), Ok(()));
        assert_eq!(check_history(&new), Ok(()));
    }

    #[test]
    fn lost_update_is_rejected() {
        // The write was acknowledged, yet a strictly later read finds
        // nothing — the acked update vanished.
        let h = [w(1, 0, 0, 10, 100), r(1, 1, 20, 30, None)];
        assert_eq!(check_history(&h), Err(LinError::NotLinearizable { key: 1 }));
    }

    #[test]
    fn stale_read_is_rejected() {
        // Both writes completed before the read began; observing the
        // overwritten value is a stale read.
        let h = [
            w(1, 0, 0, 10, 100),
            w(1, 0, 20, 30, 101),
            r(1, 1, 40, 50, Some(100)),
        ];
        assert_eq!(check_history(&h), Err(LinError::NotLinearizable { key: 1 }));
    }

    #[test]
    fn duplicate_ack_is_rejected() {
        // A failover resubmission that got acked twice under the same
        // unique value.
        let h = [w(1, 0, 0, 10, 100), w(1, 0, 20, 30, 100)];
        assert_eq!(
            check_history(&h),
            Err(LinError::DuplicateWriteValue { key: 1, value: 100 })
        );
    }

    #[test]
    fn pending_write_may_apply_or_not() {
        let pending = HistEntry {
            key: 1,
            client: 0,
            start: 20,
            end: None,
            op: RegOp::Write(101),
        };
        // Applied: a later read observes it.
        let applied = [w(1, 0, 0, 10, 100), pending, r(1, 1, 40, 50, Some(101))];
        assert_eq!(check_history(&applied), Ok(()));
        // Dropped: a later read still sees the old value.
        let dropped = [w(1, 0, 0, 10, 100), pending, r(1, 1, 40, 50, Some(100))];
        assert_eq!(check_history(&dropped), Ok(()));
        // But once observed, it cannot un-happen.
        let flip_flop = [
            w(1, 0, 0, 10, 100),
            pending,
            r(1, 1, 40, 50, Some(101)),
            r(1, 1, 60, 70, Some(100)),
        ];
        assert_eq!(
            check_history(&flip_flop),
            Err(LinError::NotLinearizable { key: 1 })
        );
    }

    #[test]
    fn keys_are_checked_independently() {
        let h = [
            w(1, 0, 0, 10, 100),
            r(1, 1, 20, 30, Some(100)),
            w(2, 0, 0, 10, 200),
            r(2, 1, 20, 30, None), // key 2's acked write vanished
        ];
        assert_eq!(check_history(&h), Err(LinError::NotLinearizable { key: 2 }));
    }
}
