//! Property-based tests of the simulation core: clock monotonicity,
//! timer ordering, FIFO resource conservation, histogram percentiles.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use rfp_simnet::{FifoServer, Histogram, SimSpan, SimTime, Simulation};

proptest! {
    /// Sleeps wake in (deadline, spawn-order) order and the observed
    /// clock never goes backwards.
    #[test]
    fn timers_fire_in_order(delays in vec(0u64..10_000, 1..40)) {
        let mut sim = Simulation::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, d) in delays.iter().copied().enumerate() {
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(d)).await;
                log.borrow_mut().push((h.now().as_nanos(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        // Wake time equals requested deadline.
        for &(at, i) in log.iter() {
            prop_assert_eq!(at, delays[i]);
        }
        // Observed order is sorted by (time, spawn index).
        let mut expected: Vec<(u64, usize)> =
            delays.iter().copied().enumerate().map(|(i, d)| (d, i)).collect();
        expected.sort();
        prop_assert_eq!(log.clone(), expected);
    }

    /// A FIFO server conserves work: completion time of the last job
    /// equals total demand when all jobs arrive at t=0, and per-job
    /// completion equals the prefix sum.
    #[test]
    fn fifo_server_prefix_sums(demands in vec(1u64..5_000, 1..30)) {
        let mut sim = Simulation::new(0);
        let server = Rc::new(FifoServer::new(sim.handle()));
        let done: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &demands {
            let s = Rc::clone(&server);
            let h = sim.handle();
            let done = Rc::clone(&done);
            sim.spawn(async move {
                s.serve(SimSpan::nanos(d)).await;
                done.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        let done = done.borrow();
        let mut prefix = 0;
        for (i, &d) in demands.iter().enumerate() {
            prefix += d;
            prop_assert_eq!(done[i], prefix);
        }
        prop_assert_eq!(server.busy_time().as_nanos(), prefix);
        prop_assert_eq!(server.completed(), demands.len() as u64);
    }

    /// `run_until` is equivalent to a single run split at arbitrary
    /// deadlines (simulation is restart-transparent).
    #[test]
    fn run_until_is_splittable(delays in vec(1u64..2_000, 1..20), cut in 0u64..2_000) {
        let observed = |split: Option<u64>| {
            let mut sim = Simulation::new(0);
            let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for &d in &delays {
                let h = sim.handle();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    h.sleep(SimSpan::nanos(d)).await;
                    log.borrow_mut().push(h.now().as_nanos());
                });
            }
            if let Some(c) = split {
                sim.run_until(SimTime::from_nanos(c));
            }
            sim.run();
            Rc::try_unwrap(log).expect("sole owner").into_inner()
        };
        prop_assert_eq!(observed(None), observed(Some(cut)));
    }

    /// Percentiles agree with the sorted-slice reference.
    #[test]
    fn histogram_percentiles_match_reference(samples in vec(0u64..1_000_000, 1..200), p in 0.0f64..100.0) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(SimSpan::nanos(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let expect = sorted[rank.max(1).min(sorted.len()) - 1];
        prop_assert_eq!(h.percentile(p).expect("non-empty").as_nanos(), expect);
        prop_assert_eq!(h.max().expect("non-empty").as_nanos(), *sorted.last().expect("non-empty"));
    }

    /// Span arithmetic: associativity of sums and scaling consistency.
    #[test]
    fn span_arithmetic(a in 0u64..1 << 40, b in 0u64..1 << 40, k in 1u64..1000) {
        let (sa, sb) = (SimSpan::nanos(a), SimSpan::nanos(b));
        prop_assert_eq!((sa + sb).as_nanos(), a + b);
        prop_assert_eq!((sa * k).as_nanos(), a * k);
        prop_assert_eq!((sa * k / k).as_nanos(), a);
        let t = SimTime::from_nanos(a) + sb;
        prop_assert_eq!(t.since(SimTime::from_nanos(a)), sb);
    }
}
