//! Bounded event tracing for simulated systems.
//!
//! A [`TraceLog`] is a ring buffer of timestamped, categorised events.
//! Components accept an optional shared log and record milestones
//! (mode switches, retransmissions, evictions…); experiments and tests
//! inspect or dump it afterwards. Recording is cheap and the buffer is
//! bounded, so a log can stay attached across long runs.
//!
//! Events carry a [`Severity`]; the plain [`record`](TraceLog::record)
//! defaults to [`Severity::Info`]. A log built with
//! [`with_category_cap`](TraceLog::with_category_cap) additionally
//! bounds each category's retention, so a high-rate debug category
//! evicts its own oldest entries instead of flushing rare error events
//! out of the ring.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// How loud a recorded event is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-rate diagnostics.
    Debug,
    /// Ordinary milestones (the default).
    Info,
    /// Degradation worth surfacing.
    Warn,
    /// A fault or invariant violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        })
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// How loud it is.
    pub severity: Severity,
    /// Component-chosen category (e.g. `"rfp.mode"`).
    pub category: &'static str,
    /// Free-form details.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Info keeps the legacy rendering; other severities stand out.
        if self.severity == Severity::Info {
            write!(f, "[{}] {}: {}", self.at, self.category, self.message)
        } else {
            write!(
                f,
                "[{}] {} {}: {}",
                self.at, self.severity, self.category, self.message
            )
        }
    }
}

/// A bounded, shareable event log.
///
/// # Examples
///
/// ```
/// use rfp_simnet::{SimTime, TraceLog};
///
/// let log = TraceLog::new(16);
/// log.record(SimTime::from_nanos(100), "mode", "switched to ServerReply");
/// assert_eq!(log.category("mode").len(), 1);
/// assert_eq!(log.recorded(), 1);
/// ```
#[derive(Clone)]
pub struct TraceLog {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TraceLog")
            .field("len", &inner.len)
            .field("capacity", &inner.capacity)
            .field("recorded", &inner.recorded)
            .finish()
    }
}

/// A retained entry stamped with its global insertion order (categories
/// keep separate queues; snapshots merge by stamp).
struct Stamped {
    order: u64,
    entry: TraceEntry,
}

struct Inner {
    /// Per-category queues, each ordered by insertion.
    cats: BTreeMap<&'static str, VecDeque<Stamped>>,
    /// Retained entries across all categories.
    len: usize,
    capacity: usize,
    /// Per-category retention bound, if any.
    category_cap: Option<usize>,
    next_order: u64,
    recorded: u64,
    dropped: u64,
}

impl Inner {
    /// Evicts the globally oldest retained entry.
    fn evict_oldest(&mut self) {
        let oldest = self
            .cats
            .iter()
            .filter_map(|(cat, q)| q.front().map(|s| (s.order, *cat)))
            .min()
            .map(|(_, cat)| cat);
        if let Some(cat) = oldest {
            self.cats.get_mut(cat).expect("category exists").pop_front();
            self.len -= 1;
            self.dropped += 1;
        }
    }
}

impl TraceLog {
    /// Creates a log keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            inner: Rc::new(RefCell::new(Inner {
                cats: BTreeMap::new(),
                len: 0,
                capacity,
                category_cap: None,
                next_order: 0,
                recorded: 0,
                dropped: 0,
            })),
        }
    }

    /// Creates a log additionally bounding each category to its most
    /// recent `category_cap` events: a flooding category evicts its own
    /// oldest entries first, so rare events in quiet categories survive.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `category_cap` is zero.
    pub fn with_category_cap(capacity: usize, category_cap: usize) -> Self {
        assert!(category_cap > 0, "category cap must be positive");
        let log = TraceLog::new(capacity);
        log.inner.borrow_mut().category_cap = Some(category_cap);
        log
    }

    /// Records an [`Severity::Info`] event at instant `at`.
    pub fn record(&self, at: SimTime, category: &'static str, message: impl Into<String>) {
        self.record_sev(at, Severity::Info, category, message);
    }

    /// Records an event with an explicit severity.
    pub fn record_sev(
        &self,
        at: SimTime,
        severity: Severity,
        category: &'static str,
        message: impl Into<String>,
    ) {
        let mut inner = self.inner.borrow_mut();
        // Per-category bound first: a category at its cap recycles its
        // own slot and never pressures the global ring.
        if let Some(cap) = inner.category_cap {
            if let Some(q) = inner.cats.get_mut(category) {
                if q.len() == cap {
                    q.pop_front();
                    inner.len -= 1;
                    inner.dropped += 1;
                }
            }
        }
        if inner.len == inner.capacity {
            inner.evict_oldest();
        }
        let order = inner.next_order;
        inner.next_order += 1;
        inner.recorded += 1;
        inner.len += 1;
        inner.cats.entry(category).or_default().push_back(Stamped {
            order,
            entry: TraceEntry {
                at,
                severity,
                category,
                message: message.into(),
            },
        });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.borrow().len
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// Events evicted by the ring (or per-category) bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// A snapshot of the retained events, oldest first (global
    /// insertion order, merged across categories).
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        let inner = self.inner.borrow();
        let mut stamped: Vec<(u64, &TraceEntry)> = inner
            .cats
            .values()
            .flatten()
            .map(|s| (s.order, &s.entry))
            .collect();
        stamped.sort_by_key(|&(order, _)| order);
        stamped.into_iter().map(|(_, e)| e.clone()).collect()
    }

    /// Retained events of one category, oldest first.
    pub fn category(&self, category: &str) -> Vec<TraceEntry> {
        self.inner
            .borrow()
            .cats
            .get(category)
            .map(|q| q.iter().map(|s| s.entry.clone()).collect())
            .unwrap_or_default()
    }

    /// Retained events at or above `severity`, oldest first.
    pub fn at_least(&self, severity: Severity) -> Vec<TraceEntry> {
        self.snapshot()
            .into_iter()
            .filter(|e| e.severity >= severity)
            .collect()
    }

    /// Clears the log (keeps cumulative counters).
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.cats.clear();
        inner.len = 0;
    }

    /// Zeroes the cumulative `recorded`/`dropped` counters without
    /// touching retained events — pairs with [`clear`](TraceLog::clear)
    /// when a measurement window starts after warm-up.
    pub fn reset_counters(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.recorded = 0;
        inner.dropped = 0;
    }

    /// Writes every retained event as one line each.
    pub fn dump(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        for e in self.snapshot() {
            writeln!(w, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn records_in_order() {
        let log = TraceLog::new(8);
        log.record(t(1), "a", "first");
        log.record(t(2), "b", "second");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].message, "first");
        assert_eq!(snap[1].at, t(2));
    }

    #[test]
    fn ring_bound_evicts_oldest() {
        let log = TraceLog::new(3);
        for i in 0..5u64 {
            log.record(t(i), "x", format!("e{i}"));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].message, "e2");
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn ring_bound_evicts_oldest_across_categories() {
        let log = TraceLog::new(2);
        log.record(t(1), "a", "a1");
        log.record(t(2), "b", "b1");
        log.record(t(3), "b", "b2");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].message, "b1");
        assert_eq!(snap[1].message, "b2");
    }

    #[test]
    fn category_filter() {
        let log = TraceLog::new(8);
        log.record(t(1), "mode", "switch");
        log.record(t(2), "io", "read");
        log.record(t(3), "mode", "switch back");
        assert_eq!(log.category("mode").len(), 2);
        assert_eq!(log.category("io").len(), 1);
        assert!(log.category("nothing").is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let log = TraceLog::new(4);
        let other = log.clone();
        other.record(t(9), "shared", "visible to both");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn reset_counters_keeps_entries() {
        let log = TraceLog::new(2);
        for i in 0..4u64 {
            log.record(t(i), "x", format!("e{i}"));
        }
        assert_eq!((log.recorded(), log.dropped()), (4, 2));
        log.reset_counters();
        assert_eq!((log.recorded(), log.dropped()), (0, 0));
        // Retained events survive; counting restarts from zero.
        assert_eq!(log.len(), 2);
        log.record(t(9), "x", "after");
        assert_eq!((log.recorded(), log.dropped()), (1, 1));
    }

    #[test]
    fn dump_renders_lines() {
        let log = TraceLog::new(4);
        log.record(t(1_500), "cat", "msg");
        let mut out = Vec::new();
        log.dump(&mut out).expect("write to vec");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("cat: msg"), "{text}");
    }

    #[test]
    fn severity_defaults_to_info_and_orders() {
        let log = TraceLog::new(4);
        log.record(t(1), "cat", "plain");
        assert_eq!(log.snapshot()[0].severity, Severity::Info);
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn at_least_filters_by_severity() {
        let log = TraceLog::new(8);
        log.record_sev(t(1), Severity::Debug, "hot", "noise");
        log.record_sev(t(2), Severity::Error, "rare", "fault");
        log.record(t(3), "mid", "info");
        let loud = log.at_least(Severity::Warn);
        assert_eq!(loud.len(), 1);
        assert_eq!(loud[0].category, "rare");
        assert_eq!(log.at_least(Severity::Debug).len(), 3);
    }

    #[test]
    fn category_cap_protects_rare_events_from_floods() {
        let log = TraceLog::with_category_cap(8, 4);
        log.record_sev(t(0), Severity::Error, "rare", "the one that matters");
        for i in 0..100u64 {
            log.record_sev(t(1 + i), Severity::Debug, "hot", format!("noise {i}"));
        }
        // The flood recycled its own slots; the error survived.
        assert_eq!(log.category("hot").len(), 4);
        assert_eq!(log.category("rare").len(), 1);
        assert_eq!(log.len(), 5);
        assert_eq!(log.dropped(), 96);
        // Merged snapshot stays in insertion order.
        let snap = log.snapshot();
        assert_eq!(snap[0].category, "rare");
        assert_eq!(snap.last().unwrap().message, "noise 99");
    }

    #[test]
    fn severity_renders_in_dump_for_non_info() {
        let log = TraceLog::new(4);
        log.record_sev(t(1), Severity::Warn, "cat", "degraded");
        let mut out = Vec::new();
        log.dump(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("WARN cat: degraded"), "{text}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceLog::new(0);
    }

    #[test]
    #[should_panic(expected = "category cap must be positive")]
    fn zero_category_cap_rejected() {
        let _ = TraceLog::with_category_cap(8, 0);
    }
}
