//! Bounded event tracing for simulated systems.
//!
//! A [`TraceLog`] is a ring buffer of timestamped, categorised events.
//! Components accept an optional shared log and record milestones
//! (mode switches, retransmissions, evictions…); experiments and tests
//! inspect or dump it afterwards. Recording is cheap and the buffer is
//! bounded, so a log can stay attached across long runs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// Component-chosen category (e.g. `"rfp.mode"`).
    pub category: &'static str,
    /// Free-form details.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.message)
    }
}

/// A bounded, shareable event log.
///
/// # Examples
///
/// ```
/// use rfp_simnet::{SimTime, TraceLog};
///
/// let log = TraceLog::new(16);
/// log.record(SimTime::from_nanos(100), "mode", "switched to ServerReply");
/// assert_eq!(log.category("mode").len(), 1);
/// assert_eq!(log.recorded(), 1);
/// ```
#[derive(Clone)]
pub struct TraceLog {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TraceLog")
            .field("len", &inner.entries.len())
            .field("capacity", &inner.capacity)
            .field("recorded", &inner.recorded)
            .finish()
    }
}

struct Inner {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl TraceLog {
    /// Creates a log keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            inner: Rc::new(RefCell::new(Inner {
                entries: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                recorded: 0,
                dropped: 0,
            })),
        }
    }

    /// Records an event at instant `at`.
    pub fn record(&self, at: SimTime, category: &'static str, message: impl Into<String>) {
        let mut inner = self.inner.borrow_mut();
        if inner.entries.len() == inner.capacity {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(TraceEntry {
            at,
            category,
            message: message.into(),
        });
        inner.recorded += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.borrow().entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// A snapshot of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        self.inner.borrow().entries.iter().cloned().collect()
    }

    /// Retained events of one category, oldest first.
    pub fn category(&self, category: &str) -> Vec<TraceEntry> {
        self.inner
            .borrow()
            .entries
            .iter()
            .filter(|e| e.category == category)
            .cloned()
            .collect()
    }

    /// Clears the log (keeps cumulative counters).
    pub fn clear(&self) {
        self.inner.borrow_mut().entries.clear();
    }

    /// Zeroes the cumulative `recorded`/`dropped` counters without
    /// touching retained events — pairs with [`clear`](TraceLog::clear)
    /// when a measurement window starts after warm-up.
    pub fn reset_counters(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.recorded = 0;
        inner.dropped = 0;
    }

    /// Writes every retained event as one line each.
    pub fn dump(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        for e in self.inner.borrow().entries.iter() {
            writeln!(w, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn records_in_order() {
        let log = TraceLog::new(8);
        log.record(t(1), "a", "first");
        log.record(t(2), "b", "second");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].message, "first");
        assert_eq!(snap[1].at, t(2));
    }

    #[test]
    fn ring_bound_evicts_oldest() {
        let log = TraceLog::new(3);
        for i in 0..5u64 {
            log.record(t(i), "x", format!("e{i}"));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].message, "e2");
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn category_filter() {
        let log = TraceLog::new(8);
        log.record(t(1), "mode", "switch");
        log.record(t(2), "io", "read");
        log.record(t(3), "mode", "switch back");
        assert_eq!(log.category("mode").len(), 2);
        assert_eq!(log.category("io").len(), 1);
        assert!(log.category("nothing").is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let log = TraceLog::new(4);
        let other = log.clone();
        other.record(t(9), "shared", "visible to both");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn reset_counters_keeps_entries() {
        let log = TraceLog::new(2);
        for i in 0..4u64 {
            log.record(t(i), "x", format!("e{i}"));
        }
        assert_eq!((log.recorded(), log.dropped()), (4, 2));
        log.reset_counters();
        assert_eq!((log.recorded(), log.dropped()), (0, 0));
        // Retained events survive; counting restarts from zero.
        assert_eq!(log.len(), 2);
        log.record(t(9), "x", "after");
        assert_eq!((log.recorded(), log.dropped()), (1, 1));
    }

    #[test]
    fn dump_renders_lines() {
        let log = TraceLog::new(4);
        log.record(t(1_500), "cat", "msg");
        let mut out = Vec::new();
        log.dump(&mut out).expect("write to vec");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("cat: msg"), "{text}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceLog::new(0);
    }
}
