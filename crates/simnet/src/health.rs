//! The rolling health plane: per-connection sliding-window statistics,
//! deterministic anomaly detection, and dump-on-anomaly bundles.
//!
//! A [`HealthHub`] hands out one [`ConnHealth`] per connection. Each
//! keeps a sliding window of fixed-width epochs (aligned to the virtual
//! clock, so rotation is deterministic); every epoch holds a
//! log-bucketed latency sketch plus retry/shed/corrupt/credit/stall
//! counters and an in-flight watermark. Recording is O(1) bookkeeping
//! with no simulated-CPU charge and no scheduled events, so the plane
//! can stay on under a W=16 pipelined load without perturbing timing.
//!
//! [`HealthHub::report`] merges the retained epochs into a
//! [`HealthReport`] (p50/p99/p999, rates, recent result sizes — the
//! shape an online tuner consumes). An [`AnomalyDetector`] compares a
//! report against a captured baseline window with fixed thresholds and
//! emits [`Anomaly`]s; [`DumpBundle`] renders the triggering window's
//! flight-recorder events, metrics snapshot and Chrome trace for
//! post-mortem replay.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::rc::Rc;

use crate::metrics::MetricsSnapshot;
use crate::recorder::FlightRecorder;
use crate::span::SpanRecorder;
use crate::time::{SimSpan, SimTime};

/// Power-of-two log-bucketed latency sketch: bucket `b` counts samples
/// with `floor(log2(ns)) == b`. Quantiles come back as the matching
/// bucket's upper bound — coarse (≤ 2x) but O(1) to record and O(64)
/// to query, which is what keeps the plane always-on.
#[derive(Clone)]
struct LatencySketch {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl LatencySketch {
    fn new() -> Self {
        LatencySketch {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn record(&mut self, ns: u64) {
        let idx = if ns <= 1 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn merge(&mut self, other: &LatencySketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Nearest-rank quantile (`q` in 0..=1) as the bucket upper bound;
    /// 0 when empty.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket idx: 2^(idx+1) - 1, clamped to
                // the observed maximum so outliers don't inflate it.
                let bound = if idx >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (idx + 1)) - 1
                };
                return bound.min(self.max_ns);
            }
        }
        self.max_ns
    }

    fn mean(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One fixed-width slice of a connection's history.
#[derive(Clone)]
struct Epoch {
    start: SimTime,
    latency: LatencySketch,
    calls: u64,
    retries: u64,
    sheds: u64,
    busys: u64,
    corrupts: u64,
    credit_waits: u64,
    stalls: u64,
    reconnects: u64,
    verb_errors: u64,
    failovers: u64,
    result_bytes: u64,
    process_us: u64,
    inflight_peak: u32,
}

impl Epoch {
    fn new(start: SimTime) -> Self {
        Epoch {
            start,
            latency: LatencySketch::new(),
            calls: 0,
            retries: 0,
            sheds: 0,
            busys: 0,
            corrupts: 0,
            credit_waits: 0,
            stalls: 0,
            reconnects: 0,
            verb_errors: 0,
            failovers: 0,
            result_bytes: 0,
            process_us: 0,
            inflight_peak: 0,
        }
    }
}

/// Sizing of the sliding window.
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Width of one epoch (window slices rotate on this boundary,
    /// aligned to the virtual clock).
    pub epoch: SimSpan,
    /// Epochs retained — the window covers `epoch * epochs`.
    pub epochs: usize,
    /// Recent result sizes kept for tuner consumption.
    pub size_samples: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            epoch: SimSpan::micros(200),
            epochs: 8,
            size_samples: 64,
        }
    }
}

struct ConnInner {
    epochs: VecDeque<Epoch>,
    inflight: u32,
    recent_sizes: VecDeque<usize>,
}

/// Rolling-window health state of one connection.
pub struct ConnHealth {
    conn: u32,
    cfg: HealthConfig,
    inner: RefCell<ConnInner>,
}

impl ConnHealth {
    fn new(conn: u32, cfg: HealthConfig) -> Self {
        ConnHealth {
            conn,
            cfg,
            inner: RefCell::new(ConnInner {
                epochs: VecDeque::new(),
                inflight: 0,
                recent_sizes: VecDeque::new(),
            }),
        }
    }

    /// The connection this state belongs to.
    pub fn conn(&self) -> u32 {
        self.conn
    }

    /// Epoch start containing `now`, aligned to the epoch width.
    fn aligned(&self, now: SimTime) -> SimTime {
        let w = self.cfg.epoch.as_nanos().max(1);
        SimTime::from_nanos(now.as_nanos() / w * w)
    }

    /// Rotates the window so the back epoch contains `now`, then hands
    /// it to `f`.
    fn with_current<R>(&self, now: SimTime, f: impl FnOnce(&mut Epoch) -> R) -> R {
        let mut inner = self.inner.borrow_mut();
        let target = self.aligned(now);
        let stale = inner
            .epochs
            .back()
            .is_some_and(|e| e.start < target)
            .then(|| inner.epochs.back().map(|e| e.start))
            .flatten();
        if inner.epochs.is_empty() {
            inner.epochs.push_back(Epoch::new(target));
        } else if let Some(back_start) = stale {
            // Advance one epoch at a time so short gaps keep their empty
            // slices (rates stay honest); a long gap restarts the window.
            let w = self.cfg.epoch.as_nanos().max(1);
            let steps = (target.as_nanos() - back_start.as_nanos()) / w;
            if steps as usize > self.cfg.epochs {
                inner.epochs.clear();
                inner.epochs.push_back(Epoch::new(target));
            } else {
                for s in 1..=steps {
                    inner.epochs.push_back(Epoch::new(SimTime::from_nanos(
                        back_start.as_nanos() + s * w,
                    )));
                    if inner.epochs.len() > self.cfg.epochs {
                        inner.epochs.pop_front();
                    }
                }
            }
        }
        f(inner.epochs.back_mut().expect("window is never empty"))
    }

    /// Books one completed call.
    pub fn record_call(
        &self,
        now: SimTime,
        latency: SimSpan,
        retries: u64,
        result_bytes: usize,
        server_time_us: u16,
    ) {
        self.with_current(now, |e| {
            e.calls += 1;
            e.retries += retries;
            e.latency.record(latency.as_nanos());
            e.result_bytes += result_bytes as u64;
            e.process_us += server_time_us as u64;
        });
        let mut inner = self.inner.borrow_mut();
        if inner.recent_sizes.len() == self.cfg.size_samples {
            inner.recent_sizes.pop_front();
        }
        inner.recent_sizes.push_back(result_bytes);
    }

    /// Books one `Shed` verdict (server or locally synthesised).
    pub fn record_shed(&self, now: SimTime) {
        self.with_current(now, |e| e.sheds += 1);
    }

    /// Books one `Busy` verdict.
    pub fn record_busy(&self, now: SimTime) {
        self.with_current(now, |e| e.busys += 1);
    }

    /// Books one fetch discarded by integrity verification.
    pub fn record_corrupt(&self, now: SimTime) {
        self.with_current(now, |e| e.corrupts += 1);
    }

    /// Books one pause on a zero-credit gate.
    pub fn record_credit_wait(&self, now: SimTime) {
        self.with_current(now, |e| e.credit_waits += 1);
    }

    /// Books one pipeline slot overrunning its retry budget.
    pub fn record_stall(&self, now: SimTime) {
        self.with_current(now, |e| e.stalls += 1);
    }

    /// Books one QP re-establishment.
    pub fn record_reconnect(&self, now: SimTime) {
        self.with_current(now, |e| e.reconnects += 1);
    }

    /// Books one verb completing with an error.
    pub fn record_verb_error(&self, now: SimTime) {
        self.with_current(now, |e| e.verb_errors += 1);
    }

    /// Books one failover to another replica.
    pub fn record_failover(&self, now: SimTime) {
        self.with_current(now, |e| e.failovers += 1);
    }

    /// Updates the in-flight level; the window keeps per-epoch peaks.
    pub fn set_inflight(&self, now: SimTime, inflight: u32) {
        self.with_current(now, |e| e.inflight_peak = e.inflight_peak.max(inflight));
        self.inner.borrow_mut().inflight = inflight;
    }

    /// Merges the retained window into one report.
    pub fn report(&self, now: SimTime) -> ConnHealthReport {
        // Rotate first so the report always describes the window ending
        // at `now`.
        self.with_current(now, |_| {});
        let inner = self.inner.borrow();
        let mut latency = LatencySketch::new();
        let mut merged = Epoch::new(inner.epochs.front().expect("rotated").start);
        for e in &inner.epochs {
            latency.merge(&e.latency);
            merged.calls += e.calls;
            merged.retries += e.retries;
            merged.sheds += e.sheds;
            merged.busys += e.busys;
            merged.corrupts += e.corrupts;
            merged.credit_waits += e.credit_waits;
            merged.stalls += e.stalls;
            merged.reconnects += e.reconnects;
            merged.verb_errors += e.verb_errors;
            merged.failovers += e.failovers;
            merged.result_bytes += e.result_bytes;
            merged.process_us += e.process_us;
            merged.inflight_peak = merged.inflight_peak.max(e.inflight_peak);
        }
        let per_call = |n: u64| {
            if merged.calls == 0 {
                0.0
            } else {
                n as f64 / merged.calls as f64
            }
        };
        ConnHealthReport {
            conn: self.conn,
            window_start: merged.start,
            window_end: now,
            calls: merged.calls,
            p50_ns: latency.quantile(0.50),
            p99_ns: latency.quantile(0.99),
            p999_ns: latency.quantile(0.999),
            mean_ns: latency.mean(),
            max_ns: latency.max_ns,
            retry_rate: per_call(merged.retries),
            shed_rate: per_call(merged.sheds + merged.busys),
            corrupt_rate: per_call(merged.corrupts),
            sheds: merged.sheds,
            busys: merged.busys,
            corrupts: merged.corrupts,
            credit_waits: merged.credit_waits,
            stalls: merged.stalls,
            reconnects: merged.reconnects,
            verb_errors: merged.verb_errors,
            failovers: merged.failovers,
            inflight_peak: merged.inflight_peak,
            mean_result_bytes: per_call(merged.result_bytes),
            mean_process_ns: per_call(merged.process_us) * 1_000.0,
            result_sizes: inner.recent_sizes.iter().copied().collect(),
        }
    }
}

/// The merged sliding window of one connection, ready for a tuner or a
/// detector.
#[derive(Clone, Debug)]
pub struct ConnHealthReport {
    /// The connection described.
    pub conn: u32,
    /// Start of the oldest retained epoch.
    pub window_start: SimTime,
    /// The instant the report was taken.
    pub window_end: SimTime,
    /// Calls completed inside the window.
    pub calls: u64,
    /// Latency quantiles (log-bucket upper bounds, ≤ 2x coarse).
    pub p50_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// 99.9th percentile latency.
    pub p999_ns: u64,
    /// Mean latency (exact, from the sketch's running sum).
    pub mean_ns: u64,
    /// Largest latency observed in the window.
    pub max_ns: u64,
    /// Failed fetch attempts per call.
    pub retry_rate: f64,
    /// `Shed` + `Busy` verdicts per call.
    pub shed_rate: f64,
    /// Integrity-discarded fetches per call.
    pub corrupt_rate: f64,
    /// `Shed` verdicts in the window.
    pub sheds: u64,
    /// `Busy` verdicts in the window.
    pub busys: u64,
    /// Integrity-discarded fetches in the window.
    pub corrupts: u64,
    /// Zero-credit pauses in the window.
    pub credit_waits: u64,
    /// Pipeline slot stalls in the window.
    pub stalls: u64,
    /// QP re-establishments in the window.
    pub reconnects: u64,
    /// Verbs completing with an error in the window.
    pub verb_errors: u64,
    /// Failovers to another replica in the window.
    pub failovers: u64,
    /// Peak in-flight calls in the window.
    pub inflight_peak: u32,
    /// Mean result payload bytes per call.
    pub mean_result_bytes: f64,
    /// Mean server-reported process time, ns (the tuner's `P`).
    pub mean_process_ns: f64,
    /// Recent result sizes (the tuner's `M` samples), oldest first.
    pub result_sizes: Vec<usize>,
}

/// Fleet view: every connection's report, in connection order.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// The instant the report was taken.
    pub at: SimTime,
    /// Per-connection reports, sorted by connection id.
    pub conns: Vec<ConnHealthReport>,
}

impl HealthReport {
    /// The report of connection `conn`, if present.
    pub fn conn(&self, conn: u32) -> Option<&ConnHealthReport> {
        self.conns.iter().find(|c| c.conn == conn)
    }

    /// Merges per-connection windows into per-group aggregates, where
    /// `group_of` maps a connection id to its group (a tenant, a poller
    /// group, a rack — any u32 keying). Returned sorted by group id.
    pub fn rollup(&self, group_of: impl Fn(u32) -> u32) -> Vec<HealthRollup> {
        let mut groups: BTreeMap<u32, HealthRollup> = BTreeMap::new();
        for c in &self.conns {
            let agg = groups
                .entry(group_of(c.conn))
                .or_insert_with(|| HealthRollup {
                    group: group_of(c.conn),
                    ..HealthRollup::default()
                });
            agg.conns += 1;
            agg.calls += c.calls;
            agg.sheds += c.sheds;
            agg.busys += c.busys;
            agg.corrupts += c.corrupts;
            agg.reconnects += c.reconnects;
            agg.verb_errors += c.verb_errors;
            agg.worst_p99_ns = agg.worst_p99_ns.max(c.p99_ns);
            agg.max_ns = agg.max_ns.max(c.max_ns);
            agg.mean_weight += c.mean_ns as f64 * c.calls as f64;
        }
        groups
            .into_values()
            .map(|mut g| {
                if g.calls > 0 {
                    g.mean_ns = (g.mean_weight / g.calls as f64) as u64;
                    g.reject_rate = (g.sheds + g.busys) as f64 / g.calls as f64;
                }
                g
            })
            .collect()
    }
}

/// Aggregate of several connections' windows — one tenant's fleet, one
/// poller group, etc. (see [`HealthReport::rollup`]).
#[derive(Clone, Debug, Default)]
pub struct HealthRollup {
    /// The group key.
    pub group: u32,
    /// Connections merged into this group.
    pub conns: usize,
    /// Calls completed inside the window, summed.
    pub calls: u64,
    /// `Shed` verdicts, summed.
    pub sheds: u64,
    /// `Busy` verdicts, summed.
    pub busys: u64,
    /// Integrity-discarded fetches, summed.
    pub corrupts: u64,
    /// QP re-establishments, summed.
    pub reconnects: u64,
    /// Verb errors, summed.
    pub verb_errors: u64,
    /// Worst member p99 (a group is as healthy as its sickest member).
    pub worst_p99_ns: u64,
    /// Largest latency observed across the group.
    pub max_ns: u64,
    /// Call-weighted mean latency.
    pub mean_ns: u64,
    /// `(sheds + busys) / calls` over the group.
    pub reject_rate: f64,
    /// Intermediate Σ(mean·calls) for the weighted mean.
    mean_weight: f64,
}

/// A shareable hub handing out per-connection health state.
///
/// Clones share the connection map (like
/// [`MetricsRegistry`](crate::MetricsRegistry)).
#[derive(Clone)]
pub struct HealthHub {
    cfg: HealthConfig,
    conns: Rc<RefCell<BTreeMap<u32, Rc<ConnHealth>>>>,
}

impl fmt::Debug for HealthHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HealthHub")
            .field("conns", &self.conns.borrow().len())
            .field("epoch", &self.cfg.epoch)
            .field("epochs", &self.cfg.epochs)
            .finish()
    }
}

impl Default for HealthHub {
    fn default() -> Self {
        HealthHub::new(HealthConfig::default())
    }
}

impl HealthHub {
    /// Creates an empty hub.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthHub {
            cfg,
            conns: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    /// The health state of connection `conn`, created on first use.
    pub fn conn(&self, conn: u32) -> Rc<ConnHealth> {
        Rc::clone(
            self.conns
                .borrow_mut()
                .entry(conn)
                .or_insert_with(|| Rc::new(ConnHealth::new(conn, self.cfg.clone()))),
        )
    }

    /// Connections registered so far, sorted.
    pub fn conn_ids(&self) -> Vec<u32> {
        self.conns.borrow().keys().copied().collect()
    }

    /// Merges every connection's window into one fleet report.
    pub fn report(&self, now: SimTime) -> HealthReport {
        HealthReport {
            at: now,
            conns: self
                .conns
                .borrow()
                .values()
                .map(|c| c.report(now))
                .collect(),
        }
    }
}

/// What an anomaly detector can flag.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// Window p99 regressed past the baseline by the configured factor.
    LatencyRegression,
    /// Retry rate spiked past the baseline by the configured factor.
    RetrySpike,
    /// Integrity verification discarded fetches.
    CorruptionBurst,
    /// The server shed or busy-rejected calls.
    OverloadShedding,
    /// The credit gate paused submissions.
    CreditStarvation,
    /// A pipeline slot overran its retry budget.
    StuckSlot,
    /// Verb errors or QP re-establishments — the connection dropped.
    ConnectionDrop,
    /// The client abandoned a replica and re-homed onto another one.
    Failover,
    /// Gray failure: a sustained p99 regression with *no* matching
    /// drop/crash/overload/corruption root in the same window — the
    /// replica is degraded-but-alive (fail-slow NIC, flaky link,
    /// throttled server core) and liveness-based failover will never
    /// trip on it.
    GrayFailure,
    /// One server core is executing far more than its fair share of
    /// the served work (EREW partition skew with no stealing to level
    /// it): the aggregate collapses toward single-core capacity while
    /// the siblings idle.
    CoreImbalance,
}

impl AnomalyKind {
    /// Stable snake_case name (metric keys, CSV columns).
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::LatencyRegression => "latency_regression",
            AnomalyKind::RetrySpike => "retry_spike",
            AnomalyKind::CorruptionBurst => "corruption_burst",
            AnomalyKind::OverloadShedding => "overload_shedding",
            AnomalyKind::CreditStarvation => "credit_starvation",
            AnomalyKind::StuckSlot => "stuck_slot",
            AnomalyKind::ConnectionDrop => "connection_drop",
            AnomalyKind::Failover => "failover",
            AnomalyKind::GrayFailure => "gray_failure",
            AnomalyKind::CoreImbalance => "core_imbalance",
        }
    }

    /// Every kind, in declaration order.
    pub fn all() -> [AnomalyKind; 10] {
        [
            AnomalyKind::LatencyRegression,
            AnomalyKind::RetrySpike,
            AnomalyKind::CorruptionBurst,
            AnomalyKind::OverloadShedding,
            AnomalyKind::CreditStarvation,
            AnomalyKind::StuckSlot,
            AnomalyKind::ConnectionDrop,
            AnomalyKind::Failover,
            AnomalyKind::GrayFailure,
            AnomalyKind::CoreImbalance,
        ]
    }
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One detected anomaly.
#[derive(Clone, Debug)]
pub struct Anomaly {
    /// When the triggering report was taken.
    pub at: SimTime,
    /// The connection it fired on.
    pub conn: u32,
    /// What fired.
    pub kind: AnomalyKind,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] conn {} {}: {}",
            self.at, self.conn, self.kind, self.detail
        )
    }
}

/// Fixed detection thresholds. All comparisons are deterministic pure
/// functions of the two reports, so the same run always yields the same
/// anomaly list.
#[derive(Clone, Debug)]
pub struct AnomalyConfig {
    /// Baseline calls required before latency/retry comparisons engage.
    pub min_calls: u64,
    /// Window calls required before latency/retry comparisons engage.
    pub min_window_calls: u64,
    /// p99 must exceed `baseline_p99 * latency_factor` …
    pub latency_factor: f64,
    /// … and `baseline_p99 + latency_slack_ns` (absolute guard against
    /// flagging noise around tiny baselines).
    pub latency_slack_ns: u64,
    /// Retry rate must exceed `baseline * retry_factor + retry_margin`.
    pub retry_factor: f64,
    /// Absolute retry-rate slack (extra retries per call).
    pub retry_margin: f64,
    /// Integrity-discarded fetches in a window that constitute a burst.
    pub corrupt_min: u64,
    /// Shed/busy verdicts in a window that constitute shedding.
    pub shed_min: u64,
    /// Credit-gate pauses in a window that constitute starvation.
    pub credit_wait_min: u64,
    /// Slot stalls in a window that constitute a stuck slot.
    pub stall_min: u64,
    /// Verb errors + reconnects in a window that constitute a drop.
    pub drop_min: u64,
    /// Replica failovers in a window that constitute an anomaly.
    pub failover_min: u64,
    /// A core must execute more than `core_factor` times the per-core
    /// mean served count before [`AnomalyKind::CoreImbalance`] fires.
    pub core_factor: f64,
    /// Total served work below which core-skew comparisons stay quiet
    /// (an idle server has no meaningful balance).
    pub core_min_served: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            min_calls: 16,
            min_window_calls: 4,
            latency_factor: 3.0,
            latency_slack_ns: 2_000,
            retry_factor: 3.0,
            retry_margin: 1.0,
            corrupt_min: 1,
            shed_min: 1,
            credit_wait_min: 1,
            stall_min: 1,
            drop_min: 1,
            failover_min: 1,
            core_factor: 2.0,
            core_min_served: 64,
        }
    }
}

/// One core's executed-work share in a [`CoreSkewReport`].
#[derive(Clone, Debug)]
pub struct CoreLoad {
    /// Core index within its server.
    pub core: u32,
    /// Requests this core *executed* (its own plus any it stole).
    pub served: u64,
    /// Requests found pending in its most recent scan (run-queue
    /// depth, the backlog signal).
    pub queue_depth: u64,
    /// Requests this core stole from siblings.
    pub steals: u64,
    /// Requests siblings stole from this core's domain.
    pub stolen: u64,
    /// Busy fraction of the core's thread since measurements began.
    pub utilization: f64,
}

/// Point-in-time per-core load rollup for one multi-core server — the
/// `CoreSkew` health view the doctor scans for a hot core.
#[derive(Clone, Debug)]
pub struct CoreSkewReport {
    /// When the rollup was taken.
    pub at: SimTime,
    /// One row per core, in core order.
    pub cores: Vec<CoreLoad>,
}

impl CoreSkewReport {
    /// Total requests executed across all cores.
    pub fn total_served(&self) -> u64 {
        self.cores.iter().map(|c| c.served).sum()
    }

    /// Hottest core by executed work, if any.
    pub fn hottest(&self) -> Option<&CoreLoad> {
        self.cores.iter().max_by_key(|c| c.served)
    }

    /// Executed-work imbalance: hottest core's served count over the
    /// per-core mean. 1.0 for a perfectly level (or empty) server.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_served();
        if self.cores.is_empty() || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.cores.len() as f64;
        self.hottest().map_or(1.0, |h| h.served as f64 / mean)
    }
}

#[derive(Clone, Copy)]
struct Baseline {
    calls: u64,
    p99_ns: u64,
    retry_rate: f64,
}

/// Compares health reports against a captured baseline window.
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    baselines: RefCell<BTreeMap<u32, Baseline>>,
}

impl AnomalyDetector {
    /// Creates a detector with `cfg` thresholds and no baseline.
    pub fn new(cfg: AnomalyConfig) -> Self {
        AnomalyDetector {
            cfg,
            baselines: RefCell::new(BTreeMap::new()),
        }
    }

    /// Captures `report` as the healthy baseline (replacing any prior
    /// capture per connection).
    pub fn set_baseline(&self, report: &HealthReport) {
        let mut baselines = self.baselines.borrow_mut();
        for c in &report.conns {
            baselines.insert(
                c.conn,
                Baseline {
                    calls: c.calls,
                    p99_ns: c.p99_ns,
                    retry_rate: c.retry_rate,
                },
            );
        }
    }

    /// Whether a baseline with enough calls exists for `conn`.
    pub fn has_baseline(&self, conn: u32) -> bool {
        self.baselines
            .borrow()
            .get(&conn)
            .is_some_and(|b| b.calls >= self.cfg.min_calls)
    }

    /// Scans a report; returns the anomalies it trips, ordered by
    /// connection then kind.
    pub fn scan(&self, report: &HealthReport) -> Vec<Anomaly> {
        let baselines = self.baselines.borrow();
        // Fleet-wide hard-root screen for the gray-failure rule: a
        // saturated or crashing server sheds/errors on *some* conns
        // while merely slowing its siblings, and those siblings'
        // regressions are not rootless — the root is just booked one
        // conn over. Gray means no hard root anywhere in the window.
        let hard_root = report.conns.iter().any(|c| {
            c.verb_errors + c.reconnects + c.corrupts + c.sheds + c.busys + c.failovers > 0
        });
        let mut out = Vec::new();
        for c in &report.conns {
            let mut hit = |kind: AnomalyKind, detail: String| {
                out.push(Anomaly {
                    at: report.at,
                    conn: c.conn,
                    kind,
                    detail,
                });
            };
            if let Some(b) = baselines.get(&c.conn) {
                if b.calls >= self.cfg.min_calls && c.calls >= self.cfg.min_window_calls {
                    let threshold = (b.p99_ns as f64 * self.cfg.latency_factor) as u64;
                    if c.p99_ns > threshold && c.p99_ns > b.p99_ns + self.cfg.latency_slack_ns {
                        hit(
                            AnomalyKind::LatencyRegression,
                            format!("p99 {}ns vs baseline {}ns", c.p99_ns, b.p99_ns),
                        );
                        // A regression with no hard root in the same
                        // window (no drops, no corruption, no shedding,
                        // no failover — on this conn or any sibling) is
                        // a gray failure: the replica is
                        // degraded-but-alive and nothing else will flag
                        // it.
                        if !hard_root {
                            hit(
                                AnomalyKind::GrayFailure,
                                format!(
                                    "p99 {}ns vs baseline {}ns with no drop/crash root",
                                    c.p99_ns, b.p99_ns
                                ),
                            );
                        }
                    }
                    let retry_threshold =
                        b.retry_rate * self.cfg.retry_factor + self.cfg.retry_margin;
                    if c.retry_rate > retry_threshold {
                        hit(
                            AnomalyKind::RetrySpike,
                            format!(
                                "retry rate {:.2}/call vs baseline {:.2}/call",
                                c.retry_rate, b.retry_rate
                            ),
                        );
                    }
                }
            }
            if c.corrupts >= self.cfg.corrupt_min {
                hit(
                    AnomalyKind::CorruptionBurst,
                    format!("{} fetches failed integrity verification", c.corrupts),
                );
            }
            if c.sheds + c.busys >= self.cfg.shed_min {
                hit(
                    AnomalyKind::OverloadShedding,
                    format!("{} shed + {} busy verdicts", c.sheds, c.busys),
                );
            }
            if c.credit_waits >= self.cfg.credit_wait_min {
                hit(
                    AnomalyKind::CreditStarvation,
                    format!("{} zero-credit pauses", c.credit_waits),
                );
            }
            if c.stalls >= self.cfg.stall_min {
                hit(
                    AnomalyKind::StuckSlot,
                    format!("{} slots overran the retry budget", c.stalls),
                );
            }
            if c.verb_errors + c.reconnects >= self.cfg.drop_min {
                hit(
                    AnomalyKind::ConnectionDrop,
                    format!("{} verb errors, {} reconnects", c.verb_errors, c.reconnects),
                );
            }
            if c.failovers >= self.cfg.failover_min {
                hit(
                    AnomalyKind::Failover,
                    format!("{} replica failovers", c.failovers),
                );
            }
        }
        out
    }

    /// Scans a per-core load rollup for a hot core. Fires one
    /// [`AnomalyKind::CoreImbalance`] on the hottest core when its
    /// executed share exceeds `core_factor` times the per-core mean —
    /// EREW skew that stealing failed to (or was not allowed to)
    /// level. Idle servers (below `core_min_served` total) and
    /// single-core servers never fire.
    pub fn scan_cores(&self, skew: &CoreSkewReport) -> Vec<Anomaly> {
        if skew.cores.len() < 2 || skew.total_served() < self.cfg.core_min_served {
            return Vec::new();
        }
        let imbalance = skew.imbalance();
        if imbalance <= self.cfg.core_factor {
            return Vec::new();
        }
        let hot = skew
            .hottest()
            .expect("non-empty core set has a hottest core");
        vec![Anomaly {
            at: skew.at,
            conn: hot.core,
            kind: AnomalyKind::CoreImbalance,
            detail: format!(
                "core {} executed {} of {} ({:.2}x the per-core mean; \
                 queue depth {}, {} stolen away)",
                hot.core,
                hot.served,
                skew.total_served(),
                imbalance,
                hot.queue_depth,
                hot.stolen,
            ),
        }]
    }
}

/// A dump-on-anomaly bundle: the anomaly, the triggering window's
/// flight-recorder events, a metrics snapshot, and the window's Chrome
/// trace — everything needed to replay the failure's causal history.
pub struct DumpBundle<'a> {
    /// What fired.
    pub anomaly: &'a Anomaly,
    /// Flight recorder to pull the window's cause chains from.
    pub recorder: Option<&'a FlightRecorder>,
    /// Point-in-time metrics.
    pub metrics: Option<&'a MetricsSnapshot>,
    /// Span recorder to render the window's Chrome trace from.
    pub spans: Option<&'a SpanRecorder>,
    /// The offending window.
    pub window: (SimTime, SimTime),
}

impl DumpBundle<'_> {
    /// Renders the bundle as sectioned text (deterministic byte-for-byte
    /// for a given simulation state).
    pub fn write(&self, w: &mut dyn Write) -> io::Result<()> {
        let (from, to) = self.window;
        writeln!(w, "== anomaly ==")?;
        writeln!(w, "{}", self.anomaly)?;
        writeln!(w, "window: {from} .. {to}")?;
        if let Some(rec) = self.recorder {
            writeln!(w, "== flight recorder ==")?;
            for e in rec.events_in(from, to) {
                // The window's events plus, for connection-scoped
                // anomalies, the full chain behind each event.
                writeln!(w, "{e}")?;
                if let Some(cause) = e.cause {
                    for link in rec.chain(cause) {
                        writeln!(w, "  caused by: {link}")?;
                    }
                }
            }
        }
        if let Some(snap) = self.metrics {
            writeln!(w, "== metrics ==")?;
            snap.write_json(w)?;
        }
        if let Some(spans) = self.spans {
            writeln!(w, "== chrome trace ==")?;
            spans.write_chrome_trace_window(w, from, to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Severity;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn hub() -> HealthHub {
        HealthHub::new(HealthConfig {
            epoch: SimSpan::micros(100),
            epochs: 4,
            size_samples: 8,
        })
    }

    #[test]
    fn sketch_quantiles_bracket_samples() {
        let mut s = LatencySketch::new();
        for ns in [100u64, 200, 300, 400, 10_000] {
            s.record(ns);
        }
        let p50 = s.quantile(0.5);
        assert!((128..=512).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(0.999), 10_000);
        assert_eq!(s.mean(), 2_200);
        assert_eq!(s.quantile(1.0), 10_000);
        assert_eq!(LatencySketch::new().quantile(0.5), 0);
    }

    #[test]
    fn window_rotates_and_drops_old_epochs() {
        let h = hub().conn(0);
        h.record_call(t(10), SimSpan::micros(1), 0, 32, 1);
        // 4 epochs of 100µs: by t=600µs the first call left the window.
        let early = h.report(t(50));
        assert_eq!(early.calls, 1);
        let late = h.report(t(650));
        assert_eq!(late.calls, 0);
    }

    #[test]
    fn long_gap_restarts_window() {
        let h = hub().conn(0);
        h.record_call(t(10), SimSpan::micros(1), 0, 32, 1);
        h.record_call(t(100_000), SimSpan::micros(1), 0, 32, 1);
        assert_eq!(h.report(t(100_010)).calls, 1);
    }

    #[test]
    fn report_rates_and_sizes() {
        let h = hub().conn(3);
        for i in 0..10 {
            h.record_call(t(i), SimSpan::micros(2), 1, 64, 5);
        }
        h.record_shed(t(11));
        h.record_corrupt(t(12));
        h.set_inflight(t(13), 7);
        h.set_inflight(t(14), 2);
        let r = h.report(t(20));
        assert_eq!(r.conn, 3);
        assert_eq!(r.calls, 10);
        assert_eq!(r.retry_rate, 1.0);
        assert_eq!(r.shed_rate, 0.1);
        assert_eq!(r.corrupt_rate, 0.1);
        assert_eq!(r.inflight_peak, 7);
        assert_eq!(r.mean_result_bytes, 64.0);
        assert_eq!(r.mean_process_ns, 5_000.0);
        assert_eq!(r.result_sizes.len(), 8); // bounded at size_samples
        assert!(r.p50_ns >= 1_000 && r.p50_ns <= 4_000, "p50 = {}", r.p50_ns);
    }

    #[test]
    fn hub_reports_sorted_and_shared() {
        let hub = hub();
        let clone = hub.clone();
        clone.conn(5).record_call(t(1), SimSpan::micros(1), 0, 8, 1);
        hub.conn(2).record_call(t(1), SimSpan::micros(1), 0, 8, 1);
        let report = hub.report(t(10));
        let ids: Vec<u32> = report.conns.iter().map(|c| c.conn).collect();
        assert_eq!(ids, [2, 5]);
        assert!(report.conn(5).is_some());
        assert!(report.conn(9).is_none());
    }

    #[test]
    fn rollup_groups_and_weights() {
        let hub = hub();
        // Conns 0,2 → group 0; conn 1 → group 1.
        hub.conn(0).record_call(t(1), SimSpan::micros(1), 0, 8, 1);
        hub.conn(0).record_call(t(1), SimSpan::micros(1), 0, 8, 1);
        hub.conn(2).record_call(t(1), SimSpan::micros(4), 0, 8, 1);
        hub.conn(2).record_shed(t(1));
        hub.conn(1).record_call(t(1), SimSpan::micros(9), 0, 8, 1);
        let report = hub.report(t(5));
        let groups = report.rollup(|conn| conn % 2);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].group, 0);
        assert_eq!(groups[0].conns, 2);
        assert_eq!(groups[0].calls, 3);
        assert_eq!(groups[0].sheds, 1);
        // Call-weighted mean: (2·1µs + 1·4µs)/3 = 2µs.
        assert_eq!(groups[0].mean_ns, 2_000);
        assert!(groups[0].worst_p99_ns >= 4_000);
        assert!((groups[0].reject_rate - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(groups[1].group, 1);
        assert_eq!(groups[1].calls, 1);
    }

    fn baseline_and_window(
        h: &HealthHub,
        det: &AnomalyDetector,
        degrade: impl Fn(&Rc<ConnHealth>, SimTime),
    ) -> Vec<Anomaly> {
        let c = h.conn(0);
        for i in 0..32u64 {
            c.record_call(t(i), SimSpan::micros(2), 0, 32, 1);
        }
        det.set_baseline(&h.report(t(40)));
        // Move past the window so the baseline epochs rotate out.
        for i in 0..8u64 {
            degrade(&c, t(1_000 + i));
        }
        det.scan(&h.report(t(1_010)))
    }

    #[test]
    fn latency_regression_detected() {
        let h = hub();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        let anomalies = baseline_and_window(&h, &det, |c, at| {
            c.record_call(at, SimSpan::micros(50), 0, 32, 1);
        });
        assert!(
            anomalies
                .iter()
                .any(|a| a.kind == AnomalyKind::LatencyRegression),
            "{anomalies:?}"
        );
    }

    #[test]
    fn rootless_latency_regression_is_flagged_gray() {
        let h = hub();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        // Slow calls and nothing else: no drops, no corruption, no
        // shedding — the degraded-but-alive signature.
        let anomalies = baseline_and_window(&h, &det, |c, at| {
            c.record_call(at, SimSpan::micros(50), 0, 32, 1);
        });
        assert!(
            anomalies.iter().any(|a| a.kind == AnomalyKind::GrayFailure),
            "{anomalies:?}"
        );
    }

    #[test]
    fn regression_with_a_sibling_conn_root_is_not_gray() {
        let h = hub();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        // Conn 0 regresses cleanly, but conn 1 sheds in the same
        // window: the fleet has a hard root (a saturated server books
        // its pushback wherever the rejected calls ran), so conn 0's
        // slowdown is not gray.
        let anomalies = baseline_and_window(&h, &det, |c, at| {
            c.record_call(at, SimSpan::micros(50), 0, 32, 1);
            h.conn(1).record_shed(at);
        });
        assert!(
            anomalies
                .iter()
                .any(|a| a.kind == AnomalyKind::LatencyRegression),
            "{anomalies:?}"
        );
        assert!(
            !anomalies.iter().any(|a| a.kind == AnomalyKind::GrayFailure),
            "a regression with a sibling-conn root is not gray: {anomalies:?}"
        );
    }

    #[test]
    fn regression_with_a_drop_root_is_not_gray() {
        let h = hub();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        let anomalies = baseline_and_window(&h, &det, |c, at| {
            c.record_call(at, SimSpan::micros(50), 0, 32, 1);
            c.record_verb_error(at);
        });
        assert!(
            anomalies
                .iter()
                .any(|a| a.kind == AnomalyKind::LatencyRegression),
            "{anomalies:?}"
        );
        assert!(
            !anomalies.iter().any(|a| a.kind == AnomalyKind::GrayFailure),
            "a regression rooted in connection drops is not gray: {anomalies:?}"
        );
    }

    #[test]
    fn retry_spike_detected() {
        let h = hub();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        let anomalies = baseline_and_window(&h, &det, |c, at| {
            c.record_call(at, SimSpan::micros(2), 10, 32, 1);
        });
        assert!(
            anomalies.iter().any(|a| a.kind == AnomalyKind::RetrySpike),
            "{anomalies:?}"
        );
        // Latency did not move, so no regression rides along.
        assert!(
            !anomalies
                .iter()
                .any(|a| a.kind == AnomalyKind::LatencyRegression),
            "{anomalies:?}"
        );
    }

    #[test]
    fn clean_window_is_quiet() {
        let h = hub();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        let anomalies = baseline_and_window(&h, &det, |c, at| {
            c.record_call(at, SimSpan::micros(2), 0, 32, 1);
        });
        assert!(anomalies.is_empty(), "{anomalies:?}");
    }

    #[test]
    fn counter_anomalies_need_no_baseline() {
        let h = hub();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        let c = h.conn(1);
        c.record_corrupt(t(5));
        c.record_shed(t(5));
        c.record_credit_wait(t(5));
        c.record_stall(t(5));
        c.record_verb_error(t(5));
        let kinds: Vec<AnomalyKind> = det.scan(&h.report(t(10))).iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            [
                AnomalyKind::CorruptionBurst,
                AnomalyKind::OverloadShedding,
                AnomalyKind::CreditStarvation,
                AnomalyKind::StuckSlot,
                AnomalyKind::ConnectionDrop,
            ]
        );
    }

    #[test]
    fn dump_bundle_renders_sections() {
        let rec = FlightRecorder::new(16);
        let root = rec.record(t(5), Some(0), 3, Severity::Warn, "chaos.straggler", "x8");
        rec.record_caused(
            t(6),
            Some(0),
            3,
            Severity::Warn,
            "recovery.resubmits",
            "",
            Some(root),
        );
        let anomaly = Anomaly {
            at: t(10),
            conn: 0,
            kind: AnomalyKind::LatencyRegression,
            detail: "p99 regressed".into(),
        };
        let snap = MetricsSnapshot::default();
        let spans = SpanRecorder::new(4);
        let bundle = DumpBundle {
            anomaly: &anomaly,
            recorder: Some(&rec),
            metrics: Some(&snap),
            spans: Some(&spans),
            window: (t(0), t(10)),
        };
        let mut out = Vec::new();
        bundle.write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("== anomaly =="), "{text}");
        assert!(text.contains("latency_regression"), "{text}");
        assert!(text.contains("chaos.straggler"), "{text}");
        assert!(text.contains("caused by"), "{text}");
        assert!(text.contains("== metrics =="), "{text}");
        assert!(text.contains("== chrome trace =="), "{text}");
    }
}
