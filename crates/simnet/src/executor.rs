//! The single-threaded cooperative executor driving the virtual clock.
//!
//! Simulated processes are ordinary Rust futures. The executor interleaves
//! two activities until quiescence (or a deadline):
//!
//! 1. poll every task whose waker has fired,
//! 2. when no task is runnable, pop the earliest pending timer event,
//!    advance the virtual clock to it, and fire its waker.
//!
//! Events scheduled for the same instant fire in scheduling order, which
//! makes runs fully deterministic.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use crossbeam::queue::SegQueue;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{SimSpan, SimTime};

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Identifier of a task inside one [`Simulation`].
type TaskId = usize;

/// A timer entry in the event heap.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Shared core of one simulation: clock, event heap, spawn queue, RNG.
pub(crate) struct SimCore {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    /// Futures spawned while the executor is running; drained by the driver.
    spawn_queue: RefCell<Vec<BoxFuture>>,
    /// Task ids whose wakers fired; drained by the driver.
    ready: Arc<SegQueue<TaskId>>,
    rng: RefCell<StdRng>,
}

impl SimCore {
    pub(crate) fn now(&self) -> SimTime {
        self.now.get()
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Registers `waker` to fire at instant `at`.
    pub(crate) fn schedule_wake(&self, at: SimTime, waker: Waker) {
        debug_assert!(at >= self.now.get(), "cannot schedule in the past");
        let seq = self.next_seq();
        self.timers
            .borrow_mut()
            .push(Reverse(TimerEntry { at, seq, waker }));
    }
}

/// The waker for one task: pushes the task id on the shared ready queue.
struct TaskWaker {
    id: TaskId,
    ready: Arc<SegQueue<TaskId>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A slot in the task slab.
enum Slot {
    /// Task present and possibly runnable.
    Occupied(BoxFuture),
    /// Task currently taken out for polling (guards against re-entrancy).
    Polling,
    /// Free slot (future finished).
    Vacant,
}

/// Owner and driver of one simulation run.
///
/// The `Simulation` owns all task futures, so dropping it drops every
/// simulated process (futures hold only [`SimHandle`]s back into the
/// core, which does not own tasks — no reference cycles, no leaks).
pub struct Simulation {
    core: Rc<SimCore>,
    tasks: Vec<Slot>,
    free: Vec<TaskId>,
    live: usize,
}

impl Simulation {
    /// Creates a fresh simulation whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulation {
            core: Rc::new(SimCore {
                now: Cell::new(SimTime::ZERO),
                seq: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                spawn_queue: RefCell::new(Vec::new()),
                ready: Arc::new(SegQueue::new()),
                rng: RefCell::new(StdRng::seed_from_u64(seed)),
            }),
            tasks: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// A cheap clonable handle for use inside simulated processes.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            core: Rc::clone(&self.core),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Spawns a simulated process. It first runs when the executor next
    /// gets control.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
        self.core.spawn_queue.borrow_mut().push(Box::pin(fut));
    }

    /// Number of live (unfinished) tasks.
    pub fn live_tasks(&self) -> usize {
        self.live + self.core.spawn_queue.borrow().len()
    }

    fn admit_spawned(&mut self) {
        let spawned: Vec<BoxFuture> = self.core.spawn_queue.borrow_mut().drain(..).collect();
        for fut in spawned {
            let id = match self.free.pop() {
                Some(id) => {
                    self.tasks[id] = Slot::Occupied(fut);
                    id
                }
                None => {
                    self.tasks.push(Slot::Occupied(fut));
                    self.tasks.len() - 1
                }
            };
            self.live += 1;
            self.core.ready.push(id);
        }
    }

    fn poll_task(&mut self, id: TaskId) {
        let mut fut = match std::mem::replace(&mut self.tasks[id], Slot::Polling) {
            Slot::Occupied(f) => f,
            // Spurious wake for a finished or already-running task.
            other => {
                self.tasks[id] = other;
                return;
            }
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.core.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.tasks[id] = Slot::Vacant;
                self.free.push(id);
                self.live -= 1;
            }
            Poll::Pending => {
                self.tasks[id] = Slot::Occupied(fut);
            }
        }
    }

    /// Polls every runnable task (including freshly spawned ones) until no
    /// task is runnable at the current instant.
    fn drain_runnable(&mut self) {
        loop {
            self.admit_spawned();
            let Some(id) = self.core.ready.pop() else {
                if self.core.spawn_queue.borrow().is_empty() {
                    return;
                }
                continue;
            };
            self.poll_task(id);
        }
    }

    /// Advances the clock to the next timer and fires every timer scheduled
    /// for that instant. Returns `false` when no timers remain.
    fn advance(&mut self) -> bool {
        let mut timers = self.core.timers.borrow_mut();
        let Some(Reverse(first)) = timers.pop() else {
            return false;
        };
        let at = first.at;
        debug_assert!(at >= self.core.now());
        self.core.now.set(at);
        first.waker.wake();
        while let Some(Reverse(e)) = timers.peek() {
            if e.at != at {
                break;
            }
            let Reverse(e) = timers.pop().expect("peeked entry exists");
            e.waker.wake();
        }
        true
    }

    /// Runs until no task is runnable and no timer is pending.
    ///
    /// Tasks blocked on synchronisation that will never fire simply remain
    /// suspended; they do not prevent `run` from returning.
    pub fn run(&mut self) {
        loop {
            self.drain_runnable();
            if !self.advance() {
                return;
            }
        }
    }

    /// Runs until the virtual clock reaches `deadline` (processing every
    /// event strictly before or at it), then sets the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            self.drain_runnable();
            let next = self.core.timers.borrow().peek().map(|Reverse(e)| e.at);
            match next {
                Some(at) if at <= deadline => {
                    self.advance();
                }
                _ => break,
            }
        }
        if self.core.now() < deadline {
            self.core.now.set(deadline);
        }
    }

    /// Convenience: `run_until(now + span)`.
    pub fn run_for(&mut self, span: SimSpan) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }
}

/// Clonable handle to the simulation, used inside simulated processes.
#[derive(Clone)]
pub struct SimHandle {
    core: Rc<SimCore>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Suspends the calling process for `span` of virtual time.
    pub fn sleep(&self, span: SimSpan) -> Sleep {
        Sleep {
            core: Rc::clone(&self.core),
            deadline: self.core.now() + span,
            registered: false,
        }
    }

    /// Suspends until the virtual clock reaches `deadline` (immediately
    /// ready if the deadline has passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            core: Rc::clone(&self.core),
            deadline,
            registered: false,
        }
    }

    /// Spawns another simulated process.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.core.spawn_queue.borrow_mut().push(Box::pin(fut));
    }

    /// Draws from the simulation's master RNG (deterministic per seed).
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.core.rng.borrow_mut())
    }

    /// Registers `waker` to fire at `at`; used by custom futures
    /// (resources, timeouts) built on top of the executor.
    pub fn schedule_wake(&self, at: SimTime, waker: Waker) {
        self.core.schedule_wake(at, waker);
    }
}

/// Future returned by [`SimHandle::sleep`].
pub struct Sleep {
    core: Rc<SimCore>,
    deadline: SimTime,
    registered: bool,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.core.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.core.schedule_wake(self.deadline, cx.waker().clone());
            self.registered = true;
        }
        Poll::Pending
    }
}

/// Yields once, letting every other runnable task at this instant proceed.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let seen = Rc::new(Cell::new(0u64));
        let s = Rc::clone(&seen);
        sim.spawn(async move {
            assert_eq!(h.now(), SimTime::ZERO);
            h.sleep(SimSpan::micros(7)).await;
            s.set(h.now().as_nanos());
        });
        sim.run();
        assert_eq!(seen.get(), 7_000);
    }

    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        let mut sim = Simulation::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let h = sim.handle();
            let ord = Rc::clone(&order);
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(10)).await;
                ord.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_spawn_runs() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let hit = Rc::new(Cell::new(false));
        let flag = Rc::clone(&hit);
        sim.spawn(async move {
            let inner_flag = Rc::clone(&flag);
            let h2 = h.clone();
            h.spawn(async move {
                h2.sleep(SimSpan::nanos(1)).await;
                inner_flag.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let count = Rc::new(Cell::new(0u32));
        let c = Rc::clone(&count);
        sim.spawn(async move {
            loop {
                h.sleep(SimSpan::micros(1)).await;
                c.set(c.get() + 1);
            }
        });
        sim.run_until(SimTime::from_nanos(10_500));
        assert_eq!(count.get(), 10);
        assert_eq!(sim.now().as_nanos(), 10_500);
        // The looping task is still alive, merely suspended.
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn run_for_is_relative() {
        let mut sim = Simulation::new(0);
        sim.run_for(SimSpan::micros(3));
        assert_eq!(sim.now().as_nanos(), 3_000);
        sim.run_for(SimSpan::micros(2));
        assert_eq!(sim.now().as_nanos(), 5_000);
    }

    #[test]
    fn yield_now_interleaves_fairly() {
        let mut sim = Simulation::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let ord = Rc::clone(&order);
            sim.spawn(async move {
                for step in 0..3 {
                    ord.borrow_mut().push((i, step));
                    yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(
            *order.borrow(),
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        );
    }

    #[test]
    fn finished_tasks_free_their_slots() {
        let mut sim = Simulation::new(0);
        for _ in 0..100 {
            sim.spawn(async {});
        }
        sim.run();
        assert_eq!(sim.live_tasks(), 0);
        // Slots are recycled for later spawns.
        for _ in 0..100 {
            sim.spawn(async {});
        }
        sim.run();
        assert!(sim.tasks.len() <= 100);
    }

    #[test]
    fn sleep_zero_completes_immediately() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            h.sleep(SimSpan::ZERO).await;
            d.set(true);
        });
        sim.run();
        assert!(done.get());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        use rand::Rng;
        let draw = |seed| {
            let sim = Simulation::new(seed);
            sim.handle().with_rng(|r| r.gen::<u64>())
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
