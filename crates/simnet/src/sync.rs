//! Synchronisation primitives for simulated processes.
//!
//! All primitives are single-threaded (they live inside one
//! [`Simulation`](crate::Simulation)) and deterministic: waiters are
//! released in FIFO order.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A level-triggered event: once [`fire`](Signal::fire)d, every current
/// and future [`wait`](Signal::wait) completes immediately until
/// [`reset`](Signal::reset).
#[derive(Clone, Default)]
pub struct Signal {
    state: Rc<RefCell<SignalState>>,
}

#[derive(Default)]
struct SignalState {
    fired: bool,
    waiters: Vec<Waker>,
}

impl Signal {
    /// Creates an unfired signal.
    pub fn new() -> Self {
        Signal::default()
    }

    /// Fires the signal, waking all waiters.
    pub fn fire(&self) {
        let mut st = self.state.borrow_mut();
        st.fired = true;
        for w in st.waiters.drain(..) {
            w.wake();
        }
    }

    /// Clears the fired flag; subsequent waits block until the next fire.
    pub fn reset(&self) {
        self.state.borrow_mut().fired = false;
    }

    /// Whether the signal is currently fired.
    pub fn is_fired(&self) -> bool {
        self.state.borrow().fired
    }

    /// Completes once the signal has fired.
    pub fn wait(&self) -> SignalWait {
        SignalWait {
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Signal::wait`].
pub struct SignalWait {
    state: Rc<RefCell<SignalState>>,
}

impl Future for SignalWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.borrow_mut();
        if st.fired {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// An unbounded FIFO channel between simulated processes.
///
/// `send` is synchronous (never blocks); `recv` suspends until a value is
/// available. Multiple receivers are served in FIFO order.
///
/// # Examples
///
/// ```
/// use rfp_simnet::{Channel, SimSpan, Simulation};
///
/// let mut sim = Simulation::new(0);
/// let ch: Channel<u32> = Channel::new();
/// let (tx, rx) = (ch.clone(), ch);
/// let h = sim.handle();
/// sim.spawn(async move {
///     h.sleep(SimSpan::micros(1)).await;
///     tx.send(7);
/// });
/// sim.spawn(async move {
///     assert_eq!(rx.recv().await, 7);
/// });
/// sim.run();
/// ```
pub struct Channel<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel {
            state: Rc::clone(&self.state),
        }
    }
}

struct ChannelState<T> {
    items: VecDeque<T>,
    waiters: VecDeque<Waker>,
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Channel<T> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Channel {
            state: Rc::new(RefCell::new(ChannelState {
                items: VecDeque::new(),
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Enqueues a value, waking the longest-waiting receiver (if any).
    pub fn send(&self, value: T) {
        let mut st = self.state.borrow_mut();
        st.items.push_back(value);
        if let Some(w) = st.waiters.pop_front() {
            w.wake();
        }
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.state.borrow().items.len()
    }

    /// Whether the channel holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dequeues a value without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.state.borrow_mut().items.pop_front()
    }

    /// Suspends until a value can be dequeued.
    pub fn recv(&self) -> Recv<T> {
        Recv {
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Channel::recv`].
pub struct Recv<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

impl<T> Future for Recv<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.items.pop_front() {
            Poll::Ready(v)
        } else {
            st.waiters.push_back(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A strictly FIFO mutex (ticket lock) for simulated processes.
///
/// Models a serialized critical section (e.g. the shared LRU lock in the
/// RDMA-Memcached comparator). Each acquirer draws a ticket on its first
/// poll; the guard's drop advances `now_serving` and wakes exactly the
/// next ticket holder, so there is no barging and admission order equals
/// first-poll order.
///
/// # Examples
///
/// ```
/// use rfp_simnet::{SimLock, SimSpan, Simulation};
///
/// let mut sim = Simulation::new(0);
/// let lock = SimLock::new();
/// for _ in 0..3 {
///     let l = lock.clone();
///     let h = sim.handle();
///     sim.spawn(async move {
///         let _guard = l.lock().await;
///         h.sleep(SimSpan::micros(1)).await; // serialized section
///     });
/// }
/// sim.run();
/// assert_eq!(sim.now().as_nanos(), 3_000); // three holds back-to-back
/// ```
///
/// Dropping a [`LockAcquire`](SimLock::lock) future after its first poll (i.e.
/// cancelling a queued acquisition) would stall the queue; simulated
/// processes in this workspace never cancel lock acquisitions.
#[derive(Clone, Default)]
pub struct SimLock {
    state: Rc<RefCell<LockState>>,
}

#[derive(Default)]
struct LockState {
    next_ticket: u64,
    now_serving: u64,
    /// Wakers of queued acquirers, keyed by ticket.
    waiters: VecDeque<(u64, Waker)>,
}

impl SimLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        SimLock::default()
    }

    /// Whether the lock is currently held or queued for.
    pub fn is_locked(&self) -> bool {
        let st = self.state.borrow();
        st.next_ticket != st.now_serving
    }

    /// Suspends until the lock is acquired; returns the RAII guard.
    pub fn lock(&self) -> LockAcquire {
        LockAcquire {
            state: Rc::clone(&self.state),
            ticket: None,
        }
    }
}

/// Future returned by [`SimLock::lock`].
pub struct LockAcquire {
    state: Rc<RefCell<LockState>>,
    ticket: Option<u64>,
}

impl Future for LockAcquire {
    type Output = SimLockGuard;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SimLockGuard> {
        let state = Rc::clone(&self.state);
        let mut st = state.borrow_mut();
        let ticket = match self.ticket {
            Some(t) => t,
            None => {
                let t = st.next_ticket;
                st.next_ticket += 1;
                self.ticket = Some(t);
                t
            }
        };
        if st.now_serving == ticket {
            drop(st);
            return Poll::Ready(SimLockGuard {
                state: Rc::clone(&self.state),
            });
        }
        // Replace any stale waker for this ticket, then wait.
        if let Some(entry) = st.waiters.iter_mut().find(|(t, _)| *t == ticket) {
            entry.1 = cx.waker().clone();
        } else {
            st.waiters.push_back((ticket, cx.waker().clone()));
        }
        Poll::Pending
    }
}

/// RAII guard for [`SimLock`]; releases on drop.
pub struct SimLockGuard {
    state: Rc<RefCell<LockState>>,
}

impl Drop for SimLockGuard {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.now_serving += 1;
        let serving = st.now_serving;
        if let Some(pos) = st.waiters.iter().position(|(t, _)| *t == serving) {
            let (_, w) = st.waiters.remove(pos).expect("position exists");
            w.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimSpan, Simulation};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn signal_wakes_all_waiters() {
        let mut sim = Simulation::new(0);
        let sig = Signal::new();
        let hits = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let s = sig.clone();
            let c = Rc::clone(&hits);
            sim.spawn(async move {
                s.wait().await;
                c.set(c.get() + 1);
            });
        }
        let s = sig.clone();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimSpan::micros(1)).await;
            s.fire();
        });
        sim.run();
        assert_eq!(hits.get(), 3);
    }

    #[test]
    fn signal_fired_completes_immediately() {
        let mut sim = Simulation::new(0);
        let sig = Signal::new();
        sig.fire();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        let s = sig.clone();
        sim.spawn(async move {
            s.wait().await;
            d.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn signal_reset_blocks_again() {
        let sig = Signal::new();
        sig.fire();
        assert!(sig.is_fired());
        sig.reset();
        assert!(!sig.is_fired());
    }

    #[test]
    fn channel_delivers_in_order() {
        let mut sim = Simulation::new(0);
        let ch: Channel<u32> = Channel::new();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let rx = ch.clone();
        let out = Rc::clone(&seen);
        sim.spawn(async move {
            for _ in 0..3 {
                let v = rx.recv().await;
                out.borrow_mut().push(v);
            }
        });
        let tx = ch.clone();
        let h = sim.handle();
        sim.spawn(async move {
            for v in [10, 20, 30] {
                h.sleep(SimSpan::nanos(5)).await;
                tx.send(v);
            }
        });
        sim.run();
        assert_eq!(*seen.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn channel_try_recv_and_len() {
        let ch: Channel<u8> = Channel::new();
        assert!(ch.is_empty());
        ch.send(1);
        ch.send(2);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.try_recv(), Some(1));
        assert_eq!(ch.try_recv(), Some(2));
        assert_eq!(ch.try_recv(), None);
    }

    #[test]
    fn lock_serializes_critical_sections() {
        let mut sim = Simulation::new(0);
        let lock = SimLock::new();
        let inside = Rc::new(Cell::new(0u32));
        let max_inside = Rc::new(Cell::new(0u32));
        for _ in 0..5 {
            let l = lock.clone();
            let i = Rc::clone(&inside);
            let m = Rc::clone(&max_inside);
            let h = sim.handle();
            sim.spawn(async move {
                let _g = l.lock().await;
                i.set(i.get() + 1);
                m.set(m.get().max(i.get()));
                h.sleep(SimSpan::nanos(100)).await;
                i.set(i.get() - 1);
            });
        }
        sim.run();
        assert_eq!(max_inside.get(), 1, "lock admitted two holders");
        assert_eq!(sim.now().as_nanos(), 500);
    }

    #[test]
    fn lock_hands_off_fifo() {
        let mut sim = Simulation::new(0);
        let lock = SimLock::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let l = lock.clone();
            let ord = Rc::clone(&order);
            let h = sim.handle();
            sim.spawn(async move {
                let _g = l.lock().await;
                ord.borrow_mut().push(i);
                h.sleep(SimSpan::nanos(10)).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }
}
