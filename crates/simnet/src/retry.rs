//! A shared retry loop: bounded attempts with capped, jittered backoff.
//!
//! Several protocols in the workspace need the same control flow — try an
//! operation, wait a while on failure, try again, give up after a bound:
//! HERD's UD request retransmission (fixed timeout, immediate resend) and
//! RFP's crash recovery (deadline per attempt, exponential backoff between
//! attempts). [`RetryPolicy`] captures the schedule, [`retry`] runs the
//! loop on the simulated clock.
//!
//! Jitter is supplied by the caller as a unit draw (`[0, 1)`) so the
//! policy itself stays deterministic and side-effect free; callers that
//! want no jitter pass a constant.

use std::future::Future;

use crate::executor::SimHandle;
use crate::time::SimSpan;

/// Schedule for a bounded retry loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` behaves like `1`).
    pub max_attempts: u32,
    /// Backoff slept after the first failed attempt.
    pub base: SimSpan,
    /// Growth factor applied to the backoff per further failure.
    pub multiplier: f64,
    /// Ceiling on any single backoff.
    pub cap: SimSpan,
    /// Jitter amplitude as a fraction of the computed backoff: a unit
    /// draw `u` scales the sleep by `1 + jitter * (2u - 1)`.
    pub jitter: f64,
}

impl RetryPolicy {
    /// Retransmit-now policy: up to `max_attempts` tries with no pause
    /// between them (HERD-style immediate retransmission).
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base: SimSpan::ZERO,
            multiplier: 1.0,
            cap: SimSpan::ZERO,
            jitter: 0.0,
        }
    }

    /// Capped exponential backoff doubling from `base` up to `cap`, with
    /// ±`jitter` fractional spread.
    pub fn exponential(max_attempts: u32, base: SimSpan, cap: SimSpan, jitter: f64) -> Self {
        RetryPolicy {
            max_attempts,
            base,
            multiplier: 2.0,
            cap,
            jitter,
        }
    }

    /// Backoff to sleep after `failed` failures (`failed >= 1`), given a
    /// unit jitter draw in `[0, 1)`.
    pub fn backoff_for(&self, failed: u32, unit: f64) -> SimSpan {
        if self.base.is_zero() {
            return SimSpan::ZERO;
        }
        let exp = self.multiplier.powi(failed.saturating_sub(1) as i32);
        let raw = (self.base.as_nanos() as f64 * exp).min(self.cap.as_nanos() as f64);
        let spread = 1.0 + self.jitter * (2.0 * unit - 1.0);
        SimSpan::from_nanos_f64(raw * spread)
    }
}

/// Outcome of an exhausted [`retry`] loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryExhausted<E> {
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: E,
}

/// Runs `op` until it succeeds or the policy's attempt budget is spent,
/// sleeping the policy's backoff between attempts.
///
/// `op` receives the zero-based attempt number; `jitter_unit` is drawn
/// once per backoff (callers thread their own RNG through it). Backoff
/// sleeps run on `handle` directly — they model an idle wait, not CPU
/// time, so callers wanting busy-time accounting do it inside `op`.
pub async fn retry<T, E, F, Fut>(
    handle: &SimHandle,
    policy: &RetryPolicy,
    jitter_unit: impl FnMut() -> f64,
    op: F,
) -> Result<T, RetryExhausted<E>>
where
    F: FnMut(u32) -> Fut,
    Fut: Future<Output = Result<T, E>>,
{
    retry_with_deadline(handle, policy, None, jitter_unit, op).await
}

/// [`retry`] with an absolute deadline clamped onto the backoff
/// schedule: no sleep ever runs past `deadline`, and once the clock
/// reaches it the loop gives up with the last error instead of making
/// another attempt — a jittered backoff can never overshoot the
/// deadline it is supposed to enforce. `None` behaves exactly like
/// [`retry`].
pub async fn retry_with_deadline<T, E, F, Fut>(
    handle: &SimHandle,
    policy: &RetryPolicy,
    deadline: Option<crate::time::SimTime>,
    mut jitter_unit: impl FnMut() -> f64,
    mut op: F,
) -> Result<T, RetryExhausted<E>>
where
    F: FnMut(u32) -> Fut,
    Fut: Future<Output = Result<T, E>>,
{
    let budget = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt).await {
            Ok(v) => return Ok(v),
            Err(e) => {
                attempt += 1;
                if attempt >= budget {
                    return Err(RetryExhausted {
                        attempts: attempt,
                        last: e,
                    });
                }
                let mut pause = policy.backoff_for(attempt, jitter_unit());
                if let Some(d) = deadline {
                    if handle.now() >= d {
                        return Err(RetryExhausted {
                            attempts: attempt,
                            last: e,
                        });
                    }
                    pause = pause.min(d.since(handle.now()));
                }
                if !pause.is_zero() {
                    handle.sleep(pause).await;
                }
                if let Some(d) = deadline {
                    if handle.now() >= d {
                        return Err(RetryExhausted {
                            attempts: attempt,
                            last: e,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn immediate_policy_never_sleeps() {
        let p = RetryPolicy::immediate(5);
        assert_eq!(p.backoff_for(1, 0.9), SimSpan::ZERO);
        assert_eq!(p.backoff_for(4, 0.1), SimSpan::ZERO);
    }

    #[test]
    fn exponential_policy_doubles_and_caps() {
        let p = RetryPolicy::exponential(8, SimSpan::micros(10), SimSpan::micros(35), 0.0);
        assert_eq!(p.backoff_for(1, 0.5).as_nanos(), 10_000);
        assert_eq!(p.backoff_for(2, 0.5).as_nanos(), 20_000);
        // 40us exceeds the 35us cap.
        assert_eq!(p.backoff_for(3, 0.5).as_nanos(), 35_000);
        assert_eq!(p.backoff_for(7, 0.5).as_nanos(), 35_000);
    }

    #[test]
    fn jitter_spreads_symmetrically() {
        let p = RetryPolicy::exponential(3, SimSpan::micros(10), SimSpan::millis(1), 0.2);
        assert_eq!(p.backoff_for(1, 0.0).as_nanos(), 8_000);
        assert_eq!(p.backoff_for(1, 0.5).as_nanos(), 10_000);
        assert_eq!(p.backoff_for(1, 1.0).as_nanos(), 12_000);
    }

    #[test]
    fn retry_succeeds_after_failures_and_sleeps_backoff() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let flag = Rc::clone(&done);
        sim.spawn(async move {
            let calls = Cell::new(0u32);
            let policy = RetryPolicy::exponential(5, SimSpan::micros(10), SimSpan::millis(1), 0.0);
            let out = retry(
                &h,
                &policy,
                || 0.5,
                |attempt| {
                    calls.set(calls.get() + 1);
                    async move {
                        if attempt < 2 {
                            Err("not yet")
                        } else {
                            Ok(attempt)
                        }
                    }
                },
            )
            .await;
            assert_eq!(out, Ok(2));
            assert_eq!(calls.get(), 3);
            // Two backoffs: 10us + 20us.
            assert_eq!(h.now().as_nanos(), 30_000);
            flag.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn deadline_clamps_backoff_and_stops_the_loop() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let flag = Rc::clone(&done);
        sim.spawn(async move {
            // 100µs backoff against a 30µs deadline: the first pause is
            // clamped to the deadline, then the loop gives up instead of
            // attempting again past it.
            let policy =
                RetryPolicy::exponential(10, SimSpan::micros(100), SimSpan::millis(1), 0.0);
            let deadline = crate::time::SimTime::from_nanos(30_000);
            let calls = Cell::new(0u32);
            let out: Result<(), _> = retry_with_deadline(
                &h,
                &policy,
                Some(deadline),
                || 0.5,
                |_| {
                    calls.set(calls.get() + 1);
                    async { Err("down") }
                },
            )
            .await;
            assert_eq!(
                out,
                Err(RetryExhausted {
                    attempts: 1,
                    last: "down"
                })
            );
            assert_eq!(calls.get(), 1);
            // Slept exactly to the deadline, not the full 100µs backoff.
            assert_eq!(h.now().as_nanos(), 30_000);
            flag.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn deadline_already_passed_skips_the_sleep() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let flag = Rc::clone(&done);
        sim.spawn(async move {
            h.sleep(SimSpan::micros(50)).await;
            let policy = RetryPolicy::exponential(10, SimSpan::micros(10), SimSpan::millis(1), 0.0);
            let deadline = crate::time::SimTime::from_nanos(20_000);
            let out: Result<(), _> = retry_with_deadline(
                &h,
                &policy,
                Some(deadline),
                || 0.5,
                |_| async { Err("down") },
            )
            .await;
            assert_eq!(
                out,
                Err(RetryExhausted {
                    attempts: 1,
                    last: "down"
                })
            );
            // No sleep at all: the deadline predated the first failure.
            assert_eq!(h.now().as_nanos(), 50_000);
            flag.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn no_deadline_matches_plain_retry() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let flag = Rc::clone(&done);
        sim.spawn(async move {
            let policy = RetryPolicy::exponential(3, SimSpan::micros(10), SimSpan::millis(1), 0.0);
            let out: Result<(), _> =
                retry_with_deadline(&h, &policy, None, || 0.5, |_| async { Err(()) }).await;
            assert!(out.is_err());
            // Two full backoffs: 10µs + 20µs.
            assert_eq!(h.now().as_nanos(), 30_000);
            flag.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn retry_exhausts_with_last_error() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let flag = Rc::clone(&done);
        sim.spawn(async move {
            let policy = RetryPolicy::immediate(3);
            let out: Result<(), _> =
                retry(&h, &policy, || 0.5, |attempt| async move { Err(attempt) }).await;
            assert_eq!(
                out,
                Err(RetryExhausted {
                    attempts: 3,
                    last: 2
                })
            );
            assert_eq!(h.now().as_nanos(), 0);
            flag.set(true);
        });
        sim.run();
        assert!(done.get());
    }
}
