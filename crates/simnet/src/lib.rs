//! Deterministic discrete-event simulation core.
//!
//! This crate provides the substrate on which the RDMA cluster model
//! (`rfp-rnic`) and every experiment in the RFP reproduction run:
//!
//! * a virtual clock measured in nanoseconds ([`SimTime`] / [`SimSpan`]),
//! * a single-threaded cooperative executor for simulated processes
//!   written as ordinary `async` functions ([`Simulation`] / [`SimHandle`]),
//! * timer futures ([`SimHandle::sleep`], [`yield_now`]),
//! * queueing resources with FIFO discipline ([`FifoServer`],
//!   [`MultiServer`]) used to model NIC engines and serialized critical
//!   sections ([`SimLock`]),
//! * synchronisation primitives for simulated processes ([`Signal`],
//!   [`Channel`]),
//! * measurement helpers ([`Counter`], [`Histogram`], [`BusyClock`]),
//! * request-lifecycle telemetry: a registry of hierarchically named
//!   instruments ([`MetricsRegistry`]), per-request phase spans
//!   ([`RequestTrace`], [`SpanRecorder`]) and fixed-interval series
//!   ([`TimeSeriesSampler`]).
//!
//! Determinism: all state lives on one OS thread; events that fire at the
//! same virtual instant are dispatched in insertion order, so every run
//! with the same seed reproduces the same trace bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use rfp_simnet::{Simulation, SimSpan};
//!
//! let mut sim = Simulation::new(42);
//! let h = sim.handle();
//! sim.spawn(async move {
//!     h.sleep(SimSpan::micros(5)).await;
//!     assert_eq!(h.now().as_nanos(), 5_000);
//! });
//! sim.run();
//! ```

pub mod crc64;

mod coord;
mod executor;
mod health;
mod metrics;
mod recorder;
mod resource;
mod retry;
mod sampler;
mod span;
mod stats;
mod sync;
mod time;
mod timeout;
mod trace;

pub use coord::{Barrier, Semaphore, SemaphoreGuard, WaitGroup, WaitGroupToken};
pub use crc64::{crc64, crc64_pair, Crc64};
pub use executor::{yield_now, SimHandle, Simulation, Sleep};
pub use health::{
    Anomaly, AnomalyConfig, AnomalyDetector, AnomalyKind, ConnHealth, ConnHealthReport, CoreLoad,
    CoreSkewReport, DumpBundle, HealthConfig, HealthHub, HealthReport, HealthRollup,
};
pub use metrics::{prometheus_name, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use recorder::{FlightEvent, FlightRecorder};
pub use resource::{FifoServer, MultiServer};
pub use retry::{retry, retry_with_deadline, RetryExhausted, RetryPolicy};
pub use sampler::{SampleRow, TimeSeriesSampler};
pub use span::{Phase, RequestTrace, SpanRecorder};
pub use stats::{BusyClock, Counter, Histogram};
pub use sync::{Channel, Recv, Signal, SimLock, SimLockGuard};
pub use time::{SimSpan, SimTime};
pub use timeout::{timeout, Timeout};
pub use trace::{Severity, TraceEntry, TraceLog};

/// Derives a per-component RNG seed from a master seed and a stream id.
///
/// Components (clients, servers, workload generators) each get an
/// independent deterministic stream so that adding one component does not
/// perturb the randomness seen by the others.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the pair; good avalanche, cheap, stable.
    // The golden-ratio offset keeps (0, 0) away from the fixed point at 0.
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_streams_differ() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_is_stable() {
        // The value is part of experiment reproducibility; lock it down.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), 0);
    }
}
