//! A unified registry of named instruments.
//!
//! Components register (or lazily create) [`Counter`]s, [`Gauge`]s and
//! [`Histogram`]s under hierarchical dot-separated names —
//! `nic.0.inbound.ops`, `rfp.client.3.retries` — and experiments read
//! them back uniformly: as a point-in-time [`MetricsSnapshot`], as a
//! delta since the previous snapshot, or exported as CSV / JSON.
//!
//! Everything is keyed through `BTreeMap`s, so iteration order — and
//! therefore every exported byte — is deterministic for a given set of
//! recorded values.
//!
//! # Examples
//!
//! ```
//! use rfp_simnet::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! reg.counter("nic.0.inbound.ops").add(3);
//! reg.gauge("nic.0.inbound.depth").set(2);
//! let snap = reg.snapshot();
//! assert_eq!(snap.scalar("nic.0.inbound.ops"), Some(3.0));
//! ```

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::rc::Rc;

use crate::stats::{Counter, Histogram};

/// An instantaneous level (queue depth, busy nanoseconds, current mode).
///
/// Unlike a [`Counter`] it can go down.
#[derive(Default)]
pub struct Gauge {
    value: Cell<i64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, value: i64) {
        self.value.set(value);
    }

    /// Moves the level by `delta` (saturating).
    pub fn add(&self, delta: i64) {
        self.value.set(self.value.get().saturating_add(delta));
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.get()
    }
}

/// One exported value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Cumulative event count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Distribution summary (all durations in sim-nanoseconds).
    Histogram {
        count: u64,
        mean_ns: u64,
        p50_ns: u64,
        p95_ns: u64,
        p99_ns: u64,
        max_ns: u64,
    },
}

impl MetricValue {
    /// The value reduced to one number: count for counters and
    /// histograms, level for gauges.
    pub fn scalar(&self) -> f64 {
        match *self {
            MetricValue::Counter(v) => v as f64,
            MetricValue::Gauge(v) => v as f64,
            MetricValue::Histogram { count, .. } => count as f64,
        }
    }
}

/// A point-in-time, deterministically ordered view of every registered
/// instrument.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Metric name → value, in name order.
    pub values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The named metric reduced to one number (see
    /// [`MetricValue::scalar`]), or `None` if absent.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.values.get(name).map(MetricValue::scalar)
    }

    /// Writes `metric,field,value` rows, one line per exported number,
    /// sorted by metric name.
    pub fn write_csv(&self, w: &mut dyn Write) -> io::Result<()> {
        writeln!(w, "metric,field,value")?;
        for (name, value) in &self.values {
            match *value {
                MetricValue::Counter(v) => writeln!(w, "{name},count,{v}")?,
                MetricValue::Gauge(v) => writeln!(w, "{name},level,{v}")?,
                MetricValue::Histogram {
                    count,
                    mean_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    max_ns,
                } => {
                    writeln!(w, "{name},count,{count}")?;
                    writeln!(w, "{name},mean_ns,{mean_ns}")?;
                    writeln!(w, "{name},p50_ns,{p50_ns}")?;
                    writeln!(w, "{name},p95_ns,{p95_ns}")?;
                    writeln!(w, "{name},p99_ns,{p99_ns}")?;
                    writeln!(w, "{name},max_ns,{max_ns}")?;
                }
            }
        }
        Ok(())
    }

    /// Writes the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are sanitized with [`prometheus_name`]; counters get
    /// a `_total` suffix and a `# TYPE` line, gauges export their level,
    /// and histograms are expanded to cumulative `_bucket{le="..."}`
    /// lines synthesized from the stored percentiles (nearest-rank
    /// cumulative counts), plus `_sum` and `_count`. Output is sorted by
    /// metric name, so it is byte-deterministic.
    pub fn write_prometheus(&self, w: &mut dyn Write) -> io::Result<()> {
        for (name, value) in &self.values {
            let n = prometheus_name(name);
            match *value {
                MetricValue::Counter(v) => {
                    writeln!(w, "# TYPE {n}_total counter")?;
                    writeln!(w, "{n}_total {v}")?;
                }
                MetricValue::Gauge(v) => {
                    writeln!(w, "# TYPE {n} gauge")?;
                    writeln!(w, "{n} {v}")?;
                }
                MetricValue::Histogram {
                    count,
                    mean_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    max_ns,
                } => {
                    writeln!(w, "# TYPE {n} histogram")?;
                    // Cumulative nearest-rank count at quantile q is
                    // ceil(q * count); equal bounds collapse into one
                    // bucket keeping the larger count, and counts are
                    // forced nondecreasing.
                    let rank = |q: f64| ((q * count as f64).ceil() as u64).min(count);
                    let mut buckets: Vec<(u64, u64)> = vec![
                        (p50_ns, rank(0.50)),
                        (p95_ns, rank(0.95)),
                        (p99_ns, rank(0.99)),
                        (max_ns, count),
                    ];
                    buckets.sort();
                    buckets.dedup_by(|b, a| {
                        if a.0 == b.0 {
                            a.1 = a.1.max(b.1);
                            true
                        } else {
                            false
                        }
                    });
                    let mut floor = 0u64;
                    for (le, cum) in buckets {
                        floor = floor.max(cum);
                        writeln!(w, "{n}_bucket{{le=\"{le}\"}} {floor}")?;
                    }
                    writeln!(w, "{n}_bucket{{le=\"+Inf\"}} {count}")?;
                    writeln!(w, "{n}_sum {}", mean_ns.saturating_mul(count))?;
                    writeln!(w, "{n}_count {count}")?;
                }
            }
        }
        Ok(())
    }

    /// Writes the snapshot as a JSON object keyed by metric name
    /// (counters and gauges as numbers, histograms as objects).
    pub fn write_json(&self, w: &mut dyn Write) -> io::Result<()> {
        writeln!(w, "{{")?;
        let last = self.values.len().saturating_sub(1);
        for (i, (name, value)) in self.values.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            match *value {
                MetricValue::Counter(v) => writeln!(w, "  {}: {v}{comma}", json_string(name))?,
                MetricValue::Gauge(v) => writeln!(w, "  {}: {v}{comma}", json_string(name))?,
                MetricValue::Histogram {
                    count,
                    mean_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    max_ns,
                } => writeln!(
                    w,
                    "  {}: {{\"count\": {count}, \"mean_ns\": {mean_ns}, \
                     \"p50_ns\": {p50_ns}, \"p95_ns\": {p95_ns}, \
                     \"p99_ns\": {p99_ns}, \"max_ns\": {max_ns}}}{comma}",
                    json_string(name)
                )?,
            }
        }
        writeln!(w, "}}")
    }
}

/// Maps a hierarchical metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and
/// a leading digit gets a `_` prefix. Stable: the same input always
/// yields the same output.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Rc<Counter>>,
    gauges: BTreeMap<String, Rc<Gauge>>,
    histograms: BTreeMap<String, Rc<Histogram>>,
    /// Scalar baselines captured by the previous [`MetricsRegistry::diff`].
    baseline: BTreeMap<String, f64>,
}

/// A shareable registry of named instruments.
///
/// Cloning is shallow: clones observe and extend the same instrument
/// set, so a registry can be threaded through every layer of a system
/// under test.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<Inner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Rc<Counter> {
        let mut inner = self.inner.borrow_mut();
        assert_kind_free(&inner.gauges, &inner.histograms, name);
        Rc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Rc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Rc<Gauge> {
        let mut inner = self.inner.borrow_mut();
        assert_kind_free(&inner.counters, &inner.histograms, name);
        Rc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Rc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Rc<Histogram> {
        let mut inner = self.inner.borrow_mut();
        assert_kind_free(&inner.counters, &inner.gauges, name);
        Rc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Rc::new(Histogram::new())),
        )
    }

    /// Registers an existing counter under `name` (components that
    /// already own their instruments expose them this way).
    pub fn register_counter(&self, name: &str, counter: &Rc<Counter>) {
        self.inner
            .borrow_mut()
            .counters
            .insert(name.to_string(), Rc::clone(counter));
    }

    /// Registers an existing gauge under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Rc<Gauge>) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(name.to_string(), Rc::clone(gauge));
    }

    /// Registers an existing histogram under `name`.
    pub fn register_histogram(&self, name: &str, histogram: &Rc<Histogram>) {
        self.inner
            .borrow_mut()
            .histograms
            .insert(name.to_string(), Rc::clone(histogram));
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.borrow();
        let mut names: Vec<String> = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.histograms.keys())
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// A point-in-time view of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        let mut values = BTreeMap::new();
        for (name, c) in &inner.counters {
            values.insert(name.clone(), MetricValue::Counter(c.get()));
        }
        for (name, g) in &inner.gauges {
            values.insert(name.clone(), MetricValue::Gauge(g.get()));
        }
        for (name, h) in &inner.histograms {
            let ns = |s: Option<crate::SimSpan>| s.map_or(0, |v| v.as_nanos());
            values.insert(
                name.clone(),
                MetricValue::Histogram {
                    count: h.len() as u64,
                    mean_ns: ns(h.mean()),
                    p50_ns: ns(h.percentile(50.0)),
                    p95_ns: ns(h.percentile(95.0)),
                    p99_ns: ns(h.percentile(99.0)),
                    max_ns: ns(h.max()),
                },
            );
        }
        MetricsSnapshot { values }
    }

    /// Scalar change of every instrument since the previous `diff` call
    /// (or since registration, the first time): counter and histogram
    /// counts as deltas, gauges as their current level.
    pub fn diff(&self) -> BTreeMap<String, f64> {
        let snap = self.snapshot();
        let mut inner = self.inner.borrow_mut();
        let mut out = BTreeMap::new();
        for (name, value) in &snap.values {
            let now = value.scalar();
            let delta = match value {
                MetricValue::Gauge(_) => now,
                _ => now - inner.baseline.get(name).copied().unwrap_or(0.0),
            };
            inner.baseline.insert(name.clone(), now);
            out.insert(name.clone(), delta);
        }
        out
    }

    /// Resets every counter, histogram and diff baseline (gauges keep
    /// their level: they describe present state, not history).
    pub fn reset(&self) {
        let inner = self.inner.borrow_mut();
        for c in inner.counters.values() {
            c.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
        drop(inner);
        self.inner.borrow_mut().baseline.clear();
    }
}

fn assert_kind_free<A, B>(a: &BTreeMap<String, A>, b: &BTreeMap<String, B>, name: &str) {
    assert!(
        !a.contains_key(name) && !b.contains_key(name),
        "metric {name:?} already registered as a different kind"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpan;

    #[test]
    fn create_or_get_shares_instruments() {
        let reg = MetricsRegistry::new();
        reg.counter("a.ops").incr();
        reg.counter("a.ops").incr();
        assert_eq!(reg.counter("a.ops").get(), 2);
        let clone = reg.clone();
        clone.counter("a.ops").incr();
        assert_eq!(reg.counter("a.ops").get(), 3);
    }

    #[test]
    fn register_existing_instrument() {
        let reg = MetricsRegistry::new();
        let c = Rc::new(Counter::new());
        reg.register_counter("sys.served", &c);
        c.add(7);
        assert_eq!(reg.snapshot().scalar("sys.served"), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_rejected() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(4);
        reg.gauge("g").set(-2);
        let h = reg.histogram("h");
        h.record(SimSpan::nanos(10));
        h.record(SimSpan::nanos(30));
        let snap = reg.snapshot();
        assert_eq!(snap.values["c"], MetricValue::Counter(4));
        assert_eq!(snap.values["g"], MetricValue::Gauge(-2));
        match snap.values["h"] {
            MetricValue::Histogram {
                count,
                mean_ns,
                max_ns,
                ..
            } => {
                assert_eq!((count, mean_ns, max_ns), (2, 20, 30));
            }
            ref other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn diff_reports_deltas_for_counters_levels_for_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(5);
        reg.gauge("g").set(9);
        assert_eq!(reg.diff()["c"], 5.0);
        reg.counter("c").add(2);
        let d = reg.diff();
        assert_eq!(d["c"], 2.0);
        assert_eq!(d["g"], 9.0);
    }

    #[test]
    fn csv_and_json_are_deterministic_and_ordered() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("b.ops").add(2);
            reg.counter("a.ops").add(1);
            reg.gauge("m.depth").set(3);
            reg.histogram("z.lat").record(SimSpan::nanos(100));
            let mut csv = Vec::new();
            let mut json = Vec::new();
            let snap = reg.snapshot();
            snap.write_csv(&mut csv).unwrap();
            snap.write_json(&mut json).unwrap();
            (csv, json)
        };
        let (csv1, json1) = build();
        let (csv2, json2) = build();
        assert_eq!(csv1, csv2);
        assert_eq!(json1, json2);
        let text = String::from_utf8(csv1).unwrap();
        let a = text.find("a.ops").unwrap();
        let b = text.find("b.ops").unwrap();
        assert!(a < b, "rows must be name-sorted:\n{text}");
        let jtext = String::from_utf8(json1).unwrap();
        assert!(jtext.contains("\"m.depth\": 3"), "{jtext}");
        assert!(jtext.contains("\"count\": 1"), "{jtext}");
    }

    #[test]
    fn reset_clears_counts_keeps_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(5);
        reg.gauge("g").set(7);
        reg.histogram("h").record(SimSpan::nanos(1));
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.scalar("c"), Some(0.0));
        assert_eq!(snap.scalar("g"), Some(7.0));
        assert_eq!(snap.scalar("h"), Some(0.0));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn prometheus_name_sanitizes_stably() {
        assert_eq!(prometheus_name("nic.0.inbound.ops"), "nic_0_inbound_ops");
        assert_eq!(prometheus_name("rfp.client-3.p99µs"), "rfp_client_3_p99_s");
        assert_eq!(prometheus_name("0weird"), "_0weird");
        assert_eq!(prometheus_name(""), "_");
        assert_eq!(
            prometheus_name("nic.0.inbound.ops"),
            prometheus_name("nic.0.inbound.ops")
        );
    }

    #[test]
    fn prometheus_exposition_counters_and_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("a.ops").add(3);
        reg.gauge("q.depth").set(-2);
        let mut out = Vec::new();
        reg.snapshot().write_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("# TYPE a_ops_total counter\na_ops_total 3\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE q_depth gauge\nq_depth -2\n"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_exposition_histogram_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for ns in [10u64, 20, 30, 40] {
            h.record(SimSpan::nanos(ns));
        }
        let mut out = Vec::new();
        reg.snapshot().write_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_count 4"), "{text}");
        assert!(text.contains("lat_sum 100"), "{text}");
        // Bucket counts must be cumulative and nondecreasing.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert!(!counts.is_empty());
    }

    #[test]
    fn prometheus_exposition_is_deterministic() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("b").add(1);
            reg.counter("a").add(2);
            reg.histogram("h").record(SimSpan::nanos(7));
            let mut out = Vec::new();
            reg.snapshot().write_prometheus(&mut out).unwrap();
            out
        };
        assert_eq!(build(), build());
    }
}
