//! Fixed-interval time series over registry metrics.
//!
//! A [`TimeSeriesSampler`] snapshots selected metrics from a
//! [`MetricsRegistry`] each time the driving loop calls
//! [`sample`](TimeSeriesSampler::sample) — the caller advances the
//! simulation by a fixed sim-time interval between calls, so rows land
//! at deterministic virtual instants regardless of wall-clock speed.
//!
//! # Examples
//!
//! ```
//! use rfp_simnet::{MetricsRegistry, SimTime, TimeSeriesSampler};
//!
//! let reg = MetricsRegistry::new();
//! reg.counter("ops").add(10);
//! let mut ts = TimeSeriesSampler::new(reg.clone(), vec!["ops".into()]);
//! ts.sample(SimTime::from_nanos(1_000));
//! reg.counter("ops").add(5);
//! ts.sample(SimTime::from_nanos(2_000));
//! assert_eq!(ts.rows().len(), 2);
//! ```

use std::io::{self, Write};

use crate::metrics::MetricsRegistry;
use crate::time::SimTime;

/// One sampled row: the instant plus the scalar value of each tracked
/// metric, in tracked-name order.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleRow {
    /// When the row was taken.
    pub at: SimTime,
    /// Scalar values, parallel to [`TimeSeriesSampler::names`].
    pub values: Vec<f64>,
}

/// Collects scalar metric values at caller-driven sim-time instants.
pub struct TimeSeriesSampler {
    registry: MetricsRegistry,
    names: Vec<String>,
    rows: Vec<SampleRow>,
}

impl TimeSeriesSampler {
    /// Creates a sampler tracking `names` (sorted and deduplicated for
    /// deterministic column order). An empty list means "every metric
    /// registered at first sample time".
    pub fn new(registry: MetricsRegistry, mut names: Vec<String>) -> Self {
        names.sort();
        names.dedup();
        TimeSeriesSampler {
            registry,
            names,
            rows: Vec::new(),
        }
    }

    /// The tracked metric names (column order of every row).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The rows collected so far.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// Takes one row at instant `at`. Counters and histograms are
    /// sampled cumulatively (diff adjacent rows for rates); gauges are
    /// levels. Missing metrics sample as 0.
    pub fn sample(&mut self, at: SimTime) {
        if self.names.is_empty() {
            self.names = self.registry.names();
        }
        let snap = self.registry.snapshot();
        let values = self
            .names
            .iter()
            .map(|n| snap.scalar(n).unwrap_or(0.0))
            .collect();
        self.rows.push(SampleRow { at, values });
    }

    /// Writes the series as CSV: a `time_ns` column plus one column per
    /// tracked metric. Values are formatted as integers when exact —
    /// counters, gauges and counts always are — and as decimals
    /// otherwise, so output is byte-stable across runs.
    pub fn write_csv(&self, w: &mut dyn Write) -> io::Result<()> {
        write!(w, "time_ns")?;
        for name in &self.names {
            write!(w, ",{name}")?;
        }
        writeln!(w)?;
        for row in &self.rows {
            write!(w, "{}", row.at.as_nanos())?;
            for v in &row.values {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    write!(w, ",{}", *v as i64)?;
                } else {
                    write!(w, ",{v}")?;
                }
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn samples_cumulative_counters_and_gauge_levels() {
        let reg = MetricsRegistry::new();
        reg.counter("ops").add(3);
        reg.gauge("depth").set(5);
        let mut ts = TimeSeriesSampler::new(reg.clone(), vec!["ops".into(), "depth".into()]);
        ts.sample(t(100));
        reg.counter("ops").add(2);
        reg.gauge("depth").set(1);
        ts.sample(t(200));
        assert_eq!(ts.names(), &["depth".to_string(), "ops".to_string()]);
        assert_eq!(ts.rows()[0].values, vec![5.0, 3.0]);
        assert_eq!(ts.rows()[1].values, vec![1.0, 5.0]);
    }

    #[test]
    fn empty_name_list_tracks_everything_at_first_sample() {
        let reg = MetricsRegistry::new();
        reg.counter("a").incr();
        reg.counter("b").incr();
        let mut ts = TimeSeriesSampler::new(reg.clone(), Vec::new());
        ts.sample(t(10));
        assert_eq!(ts.names(), &["a".to_string(), "b".to_string()]);
        // Metrics registered later do not disturb existing columns.
        reg.counter("c").incr();
        ts.sample(t(20));
        assert_eq!(ts.rows()[1].values.len(), 2);
    }

    #[test]
    fn missing_metrics_sample_as_zero() {
        let reg = MetricsRegistry::new();
        let mut ts = TimeSeriesSampler::new(reg, vec!["ghost".into()]);
        ts.sample(t(1));
        assert_eq!(ts.rows()[0].values, vec![0.0]);
    }

    #[test]
    fn csv_is_deterministic_with_integer_values() {
        let render = || {
            let reg = MetricsRegistry::new();
            reg.counter("ops").add(7);
            reg.gauge("depth").set(-3);
            let mut ts = TimeSeriesSampler::new(reg, Vec::new());
            ts.sample(t(1_000));
            ts.sample(t(2_000));
            let mut out = Vec::new();
            ts.write_csv(&mut out).unwrap();
            String::from_utf8(out).unwrap()
        };
        let a = render();
        assert_eq!(a, render());
        assert_eq!(a, "time_ns,depth,ops\n1000,-3,7\n2000,-3,7\n");
    }
}
