//! Virtual-clock time types.
//!
//! The simulation measures time in integer nanoseconds. Two newtypes keep
//! instants and durations from being mixed up:
//!
//! * [`SimTime`] — an instant (nanoseconds since simulation start),
//! * [`SimSpan`] — a duration.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in nanoseconds since start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A length of simulated time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulation clock never
    /// runs backwards, so that indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimSpan {
        SimSpan(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimSpan {
    /// The empty duration.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Creates a duration of `n` nanoseconds.
    pub const fn nanos(n: u64) -> Self {
        SimSpan(n)
    }

    /// Creates a duration of `n` microseconds.
    pub const fn micros(n: u64) -> Self {
        SimSpan(n * 1_000)
    }

    /// Creates a duration of `n` milliseconds.
    pub const fn millis(n: u64) -> Self {
        SimSpan(n * 1_000_000)
    }

    /// Creates a duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimSpan(n * 1_000_000_000)
    }

    /// Creates a duration from a float number of nanoseconds, rounding to
    /// the nearest integer nanosecond (negative values clamp to zero).
    pub fn from_nanos_f64(ns: f64) -> Self {
        SimSpan(ns.max(0.0).round() as u64)
    }

    /// This duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        self.since(rhs)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.checked_add(rhs.0).expect("SimSpan overflow"))
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.checked_sub(rhs.0).expect("SimSpan underflow"))
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0.checked_mul(rhs).expect("SimSpan overflow"))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1e3)
    }
}

impl fmt::Debug for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimSpan::micros(3).as_nanos(), 3_000);
        assert_eq!(SimSpan::millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimSpan::secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::from_nanos(100) + SimSpan::nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!((t - SimTime::from_nanos(100)).as_nanos(), 50);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_rejects_backwards() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn span_float_round_trips() {
        assert_eq!(SimSpan::from_nanos_f64(123.4).as_nanos(), 123);
        assert_eq!(SimSpan::from_nanos_f64(-5.0).as_nanos(), 0);
        assert!((SimSpan::micros(5).as_micros_f64() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn span_sum_and_scale() {
        let total: SimSpan = [SimSpan::nanos(1), SimSpan::nanos(2)].into_iter().sum();
        assert_eq!(total.as_nanos(), 3);
        assert_eq!((SimSpan::nanos(7) * 3).as_nanos(), 21);
        assert_eq!((SimSpan::nanos(7) / 2).as_nanos(), 3);
    }
}
