//! Queueing resources with FIFO discipline.
//!
//! A [`FifoServer`] models a pipeline that serves one request at a time
//! (e.g. one engine of an RNIC): callers submit a service demand and are
//! resumed when the engine finishes their request, after all previously
//! queued requests. Because service order equals submission order and
//! service times are known on submission, the queue itself never needs to
//! be materialised — the server just tracks when it next becomes free.
//!
//! A [`MultiServer`] generalises this to `k` identical parallel servers
//! with a single FIFO queue (e.g. a pool of DMA engines).

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::executor::{SimHandle, Sleep};
use crate::time::{SimSpan, SimTime};

/// A single-pipeline FIFO queueing resource.
///
/// # Examples
///
/// ```
/// use rfp_simnet::{Simulation, FifoServer, SimSpan};
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(0);
/// let engine = Rc::new(FifoServer::new(sim.handle()));
/// for _ in 0..3 {
///     let e = Rc::clone(&engine);
///     sim.spawn(async move {
///         // Each op takes 100ns of engine time; ops queue FIFO.
///         e.serve(SimSpan::nanos(100)).await;
///     });
/// }
/// sim.run();
/// assert_eq!(sim.now().as_nanos(), 300);
/// assert_eq!(engine.completed(), 3);
/// ```
pub struct FifoServer {
    handle: SimHandle,
    next_free: Cell<SimTime>,
    busy: Cell<SimSpan>,
    completed: Cell<u64>,
    queue_wait: Cell<SimSpan>,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new(handle: SimHandle) -> Self {
        FifoServer {
            handle,
            next_free: Cell::new(SimTime::ZERO),
            busy: Cell::new(SimSpan::ZERO),
            completed: Cell::new(0),
            queue_wait: Cell::new(SimSpan::ZERO),
        }
    }

    /// Enqueues a request needing `demand` of service time and returns a
    /// future that completes when the server has finished it.
    pub fn serve(&self, demand: SimSpan) -> Sleep {
        let now = self.handle.now();
        let start = self.next_free.get().max(now);
        let finish = start + demand;
        self.next_free.set(finish);
        self.busy.set(self.busy.get() + demand);
        self.completed.set(self.completed.get() + 1);
        self.queue_wait.set(self.queue_wait.get() + (start - now));
        self.handle.sleep_until(finish)
    }

    /// Instant at which all currently queued work finishes.
    pub fn next_free(&self) -> SimTime {
        self.next_free.get()
    }

    /// Total service time delivered so far.
    pub fn busy_time(&self) -> SimSpan {
        self.busy.get()
    }

    /// Number of requests accepted so far.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Sum of time requests spent waiting in queue before service.
    pub fn total_queue_wait(&self) -> SimSpan {
        self.queue_wait.get()
    }

    /// Resets the measurement counters (busy time, completions, waits)
    /// without touching queued work; used to discard warm-up.
    pub fn reset_stats(&self) {
        self.busy.set(SimSpan::ZERO);
        self.completed.set(0);
        self.queue_wait.set(SimSpan::ZERO);
    }
}

/// `k` identical parallel servers fed by one FIFO queue.
pub struct MultiServer {
    handle: SimHandle,
    /// Earliest-free-first heap of per-server free instants.
    free_at: RefCell<BinaryHeap<Reverse<SimTime>>>,
    busy: Cell<SimSpan>,
    completed: Cell<u64>,
}

impl MultiServer {
    /// Creates a pool of `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(handle: SimHandle, servers: usize) -> Self {
        assert!(servers > 0, "MultiServer needs at least one server");
        let mut heap = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            heap.push(Reverse(SimTime::ZERO));
        }
        MultiServer {
            handle,
            free_at: RefCell::new(heap),
            busy: Cell::new(SimSpan::ZERO),
            completed: Cell::new(0),
        }
    }

    /// Enqueues a request needing `demand` of service; completes when one
    /// of the servers has finished it (FIFO dispatch to earliest-free).
    pub fn serve(&self, demand: SimSpan) -> Sleep {
        let now = self.handle.now();
        let mut heap = self.free_at.borrow_mut();
        let Reverse(earliest) = heap.pop().expect("heap size is fixed");
        let start = earliest.max(now);
        let finish = start + demand;
        heap.push(Reverse(finish));
        self.busy.set(self.busy.get() + demand);
        self.completed.set(self.completed.get() + 1);
        self.handle.sleep_until(finish)
    }

    /// Total service time delivered so far (summed over servers).
    pub fn busy_time(&self) -> SimSpan {
        self.busy.get()
    }

    /// Number of requests accepted so far.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn fifo_preserves_submission_order() {
        let mut sim = Simulation::new(0);
        let server = Rc::new(FifoServer::new(sim.handle()));
        let order = Rc::new(RefCell::new(Vec::new()));
        // Submit in order 0,1,2 with different demands; completion order
        // must match submission order regardless of demand.
        for (i, d) in [(0u32, 300u64), (1, 100), (2, 200)] {
            let s = Rc::clone(&server);
            let ord = Rc::clone(&order);
            let h = sim.handle();
            sim.spawn(async move {
                s.serve(SimSpan::nanos(d)).await;
                ord.borrow_mut().push((i, h.now().as_nanos()));
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![(0, 300), (1, 400), (2, 600)]);
        assert_eq!(server.busy_time().as_nanos(), 600);
    }

    #[test]
    fn fifo_idles_between_bursts() {
        let mut sim = Simulation::new(0);
        let server = Rc::new(FifoServer::new(sim.handle()));
        let s = Rc::clone(&server);
        let h = sim.handle();
        sim.spawn(async move {
            s.serve(SimSpan::nanos(50)).await;
            h.sleep(SimSpan::nanos(500)).await;
            // Server was idle; service starts immediately.
            let t0 = h.now();
            s.serve(SimSpan::nanos(50)).await;
            assert_eq!((h.now() - t0).as_nanos(), 50);
        });
        sim.run();
        assert_eq!(server.busy_time().as_nanos(), 100);
        assert_eq!(server.completed(), 2);
    }

    #[test]
    fn fifo_queue_wait_accumulates() {
        let mut sim = Simulation::new(0);
        let server = Rc::new(FifoServer::new(sim.handle()));
        for _ in 0..3 {
            let s = Rc::clone(&server);
            sim.spawn(async move {
                s.serve(SimSpan::nanos(100)).await;
            });
        }
        sim.run();
        // Waits: 0 + 100 + 200.
        assert_eq!(server.total_queue_wait().as_nanos(), 300);
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut sim = Simulation::new(0);
        let server = Rc::new(FifoServer::new(sim.handle()));
        let s = Rc::clone(&server);
        sim.spawn(async move {
            s.serve(SimSpan::nanos(10)).await;
        });
        sim.run();
        server.reset_stats();
        assert_eq!(server.completed(), 0);
        assert_eq!(server.busy_time(), SimSpan::ZERO);
        assert_eq!(server.next_free().as_nanos(), 10);
    }

    #[test]
    fn multi_server_runs_in_parallel() {
        let mut sim = Simulation::new(0);
        let pool = Rc::new(MultiServer::new(sim.handle(), 2));
        let done = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let p = Rc::clone(&pool);
            let d = Rc::clone(&done);
            let h = sim.handle();
            sim.spawn(async move {
                p.serve(SimSpan::nanos(100)).await;
                d.borrow_mut().push((i, h.now().as_nanos()));
            });
        }
        sim.run();
        // Two servers: pairs finish at 100 and 200.
        assert_eq!(*done.borrow(), vec![(0, 100), (1, 100), (2, 200), (3, 200)]);
        assert_eq!(pool.busy_time().as_nanos(), 400);
        assert_eq!(pool.completed(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn multi_server_rejects_zero() {
        let sim = Simulation::new(0);
        let _ = MultiServer::new(sim.handle(), 0);
    }
}
