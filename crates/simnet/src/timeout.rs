//! Deadline wrapper for futures.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::{SimHandle, Sleep};
use crate::time::SimSpan;

/// Runs `fut` for at most `span` of virtual time.
///
/// Resolves to `Some(output)` if the future completes first, `None` if
/// the deadline fires first. The inner future is dropped either way.
///
/// # Examples
///
/// ```
/// use rfp_simnet::{timeout, Signal, SimSpan, Simulation};
///
/// let mut sim = Simulation::new(0);
/// let h = sim.handle();
/// let sig = Signal::new();
/// sim.spawn(async move {
///     let out = timeout(&h, SimSpan::micros(10), sig.wait()).await;
///     assert!(out.is_none()); // nobody fires the signal
///     assert_eq!(h.now().as_nanos(), 10_000);
/// });
/// sim.run();
/// ```
pub fn timeout<F: Future + Unpin>(handle: &SimHandle, span: SimSpan, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        deadline: handle.sleep(span),
    }
}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    fut: F,
    deadline: Sleep,
}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Option<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Poll::Ready(v) = Pin::new(&mut this.fut).poll(cx) {
            return Poll::Ready(Some(v));
        }
        if Pin::new(&mut this.deadline).poll(cx).is_ready() {
            return Poll::Ready(None);
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Signal, SimSpan, Simulation};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn completes_before_deadline() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let sig = Signal::new();
        let sig2 = sig.clone();
        let got = Rc::new(Cell::new(false));
        let g = Rc::clone(&got);
        sim.spawn(async move {
            let out = timeout(&h, SimSpan::micros(100), sig.wait()).await;
            g.set(out.is_some());
            assert_eq!(h.now().as_nanos(), 5_000);
        });
        let h2 = sim.handle();
        sim.spawn(async move {
            h2.sleep(SimSpan::micros(5)).await;
            sig2.fire();
        });
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn fires_deadline_when_future_stalls() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let sig = Signal::new(); // never fired
        let timed_out = Rc::new(Cell::new(false));
        let t = Rc::clone(&timed_out);
        sim.spawn(async move {
            let out = timeout(&h, SimSpan::micros(3), sig.wait()).await;
            t.set(out.is_none());
        });
        sim.run();
        assert!(timed_out.get());
        assert_eq!(sim.now().as_nanos(), 3_000);
    }
}
