//! The flight recorder: a bounded ring of cause-chained events.
//!
//! Where a [`TraceLog`](crate::TraceLog) keeps free-form milestones and
//! the [`MetricsRegistry`](crate::MetricsRegistry) keeps aggregates, a
//! [`FlightRecorder`] keeps *structured* operational events — each tied
//! to a connection and request sequence number, and optionally to the
//! event that caused it — so a failure's causal history
//! (retry → backoff → QP re-establish, torn fetch → refetch, shed
//! verdict → resubmission) can be replayed after the fact.
//!
//! Recording is synchronous bookkeeping: it schedules nothing and
//! charges no simulated CPU, so an attached recorder never perturbs
//! timing — a run with the recorder on is event-identical on the wire
//! to the same run with it off.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;
use crate::trace::Severity;

/// One recorded flight event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone event id (also the global insertion order).
    pub id: u64,
    /// When it happened.
    pub at: SimTime,
    /// The connection it belongs to, if any (chaos controllers and
    /// NIC-level events may not have one).
    pub conn: Option<u32>,
    /// The request sequence number it belongs to (0 = none).
    pub seq: u64,
    /// How loud it is.
    pub severity: Severity,
    /// Stable event kind, e.g. `"recovery.resubmits"`.
    pub kind: &'static str,
    /// Free-form details.
    pub detail: String,
    /// Id of the event that caused this one, if recorded as a chain
    /// link.
    pub cause: Option<u64>,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] #{} {} {}",
            self.at, self.id, self.severity, self.kind
        )?;
        if let Some(conn) = self.conn {
            write!(f, " conn={conn}")?;
        }
        if self.seq != 0 {
            write!(f, " seq={}", self.seq)?;
        }
        if let Some(cause) = self.cause {
            write!(f, " cause=#{cause}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

struct Inner {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    next_id: u64,
    recorded: u64,
    dropped: u64,
    /// Cumulative per-kind counts, surviving ring eviction.
    kind_counts: BTreeMap<&'static str, u64>,
}

/// A bounded, shareable ring of [`FlightEvent`]s.
///
/// Clones share the ring (like [`TraceLog`](crate::TraceLog)).
///
/// # Examples
///
/// ```
/// use rfp_simnet::{FlightRecorder, Severity, SimTime};
///
/// let rec = FlightRecorder::new(64);
/// let t = SimTime::from_nanos(100);
/// let root = rec.record(t, Some(3), 7, Severity::Warn, "recovery.deadlines", "expired");
/// rec.record_caused(t, Some(3), 7, Severity::Warn, "recovery.resubmits", "retrying", Some(root));
/// assert_eq!(rec.chain(rec.last_id().unwrap()).len(), 2);
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("FlightRecorder")
            .field("len", &inner.events.len())
            .field("capacity", &inner.capacity)
            .field("recorded", &inner.recorded)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        FlightRecorder {
            inner: Rc::new(RefCell::new(Inner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                next_id: 1,
                recorded: 0,
                dropped: 0,
                kind_counts: BTreeMap::new(),
            })),
        }
    }

    /// Records an event with no cause link; returns its id.
    pub fn record(
        &self,
        at: SimTime,
        conn: Option<u32>,
        seq: u64,
        severity: Severity,
        kind: &'static str,
        detail: impl Into<String>,
    ) -> u64 {
        self.record_caused(at, conn, seq, severity, kind, detail, None)
    }

    /// Records an event chained to `cause`; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn record_caused(
        &self,
        at: SimTime,
        conn: Option<u32>,
        seq: u64,
        severity: Severity,
        kind: &'static str,
        detail: impl Into<String>,
        cause: Option<u64>,
    ) -> u64 {
        let mut inner = self.inner.borrow_mut();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.recorded += 1;
        *inner.kind_counts.entry(kind).or_insert(0) += 1;
        inner.events.push_back(FlightEvent {
            id,
            at,
            conn,
            seq,
            severity,
            kind,
            detail: detail.into(),
            cause,
        });
        id
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Id of the most recently recorded event, if any was ever recorded.
    pub fn last_id(&self) -> Option<u64> {
        let inner = self.inner.borrow();
        (inner.next_id > 1).then_some(inner.next_id - 1)
    }

    /// Cumulative count of events of `kind` (survives ring eviction).
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.inner
            .borrow()
            .kind_counts
            .get(kind)
            .copied()
            .unwrap_or(0)
    }

    /// Cumulative per-kind counts, in kind order.
    pub fn kind_counts(&self) -> BTreeMap<&'static str, u64> {
        self.inner.borrow().kind_counts.clone()
    }

    /// A snapshot of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Retained events of one connection and sequence number — the
    /// request's replayable history — oldest first. `seq = 0` matches
    /// the connection's requestless events too.
    pub fn events_for(&self, conn: u32, seq: u64) -> Vec<FlightEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.conn == Some(conn) && (seq == 0 || e.seq == seq))
            .cloned()
            .collect()
    }

    /// Retained events within `[from, to]`, oldest first.
    pub fn events_in(&self, from: SimTime, to: SimTime) -> Vec<FlightEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.at >= from && e.at <= to)
            .cloned()
            .collect()
    }

    /// Walks the cause chain ending at event `id`, root first. Links
    /// pointing at evicted events terminate the walk; an unknown `id`
    /// yields an empty chain.
    pub fn chain(&self, id: u64) -> Vec<FlightEvent> {
        let inner = self.inner.borrow();
        let by_id = |id: u64| -> Option<&FlightEvent> {
            // Ids are assigned in ring order, so binary search works.
            inner
                .events
                .binary_search_by_key(&id, |e| e.id)
                .ok()
                .map(|i| &inner.events[i])
        };
        let mut chain = Vec::new();
        let mut cur = by_id(id);
        while let Some(e) = cur {
            chain.push(e.clone());
            cur = e.cause.and_then(by_id);
        }
        chain.reverse();
        chain
    }

    /// Clears retained events (keeps cumulative counters).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }

    /// Zeroes the cumulative counters without touching retained events.
    pub fn reset_counters(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.recorded = 0;
        inner.dropped = 0;
        inner.kind_counts.clear();
    }

    /// Writes every retained event as one line each.
    pub fn dump(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        for e in self.inner.borrow().events.iter() {
            writeln!(w, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn records_with_monotone_ids() {
        let rec = FlightRecorder::new(8);
        let a = rec.record(t(1), Some(0), 1, Severity::Info, "a", "first");
        let b = rec.record(t(2), Some(0), 1, Severity::Warn, "b", "second");
        assert_eq!((a, b), (1, 2));
        assert_eq!(rec.last_id(), Some(2));
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, "a");
        assert_eq!(snap[1].severity, Severity::Warn);
    }

    #[test]
    fn ring_bound_evicts_oldest_but_kind_counts_survive() {
        let rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.record(t(i), None, 0, Severity::Info, "x", format!("e{i}"));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.kind_count("x"), 5);
        assert_eq!(rec.snapshot()[0].detail, "e3");
    }

    #[test]
    fn chain_walks_cause_links_root_first() {
        let rec = FlightRecorder::new(16);
        let root = rec.record(t(10), Some(1), 9, Severity::Warn, "fail", "deadline");
        let mid = rec.record_caused(
            t(20),
            Some(1),
            9,
            Severity::Warn,
            "retry",
            "resubmit",
            Some(root),
        );
        let tip = rec.record_caused(
            t(30),
            Some(1),
            9,
            Severity::Warn,
            "reconnect",
            "qp",
            Some(mid),
        );
        let chain = rec.chain(tip);
        let kinds: Vec<&str> = chain.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["fail", "retry", "reconnect"]);
        assert!(rec.chain(999).is_empty());
    }

    #[test]
    fn chain_stops_at_evicted_cause() {
        let rec = FlightRecorder::new(2);
        let root = rec.record(t(1), None, 0, Severity::Info, "root", "");
        let mid = rec.record_caused(t(2), None, 0, Severity::Info, "mid", "", Some(root));
        let tip = rec.record_caused(t(3), None, 0, Severity::Info, "tip", "", Some(mid));
        // Root was evicted by the third record.
        let kinds: Vec<&str> = rec.chain(tip).iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["mid", "tip"]);
    }

    #[test]
    fn events_for_filters_conn_and_seq() {
        let rec = FlightRecorder::new(16);
        rec.record(t(1), Some(0), 5, Severity::Info, "a", "");
        rec.record(t(2), Some(1), 5, Severity::Info, "b", "");
        rec.record(t(3), Some(0), 6, Severity::Info, "c", "");
        assert_eq!(rec.events_for(0, 5).len(), 1);
        assert_eq!(rec.events_for(0, 0).len(), 2);
        assert!(rec.events_for(2, 0).is_empty());
    }

    #[test]
    fn events_in_window() {
        let rec = FlightRecorder::new(16);
        for i in 0..5u64 {
            rec.record(t(i * 10), None, 0, Severity::Info, "x", "");
        }
        assert_eq!(rec.events_in(t(10), t(30)).len(), 3);
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::new(4);
        let other = rec.clone();
        other.record(t(1), None, 0, Severity::Info, "shared", "");
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn dump_renders_lines() {
        let rec = FlightRecorder::new(4);
        let root = rec.record(t(1_000), Some(2), 7, Severity::Error, "fetch.torn", "torn");
        rec.record_caused(
            t(2_000),
            Some(2),
            7,
            Severity::Info,
            "refetch",
            "",
            Some(root),
        );
        let mut out = Vec::new();
        rec.dump(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("fetch.torn"), "{text}");
        assert!(text.contains("conn=2"), "{text}");
        assert!(text.contains("cause=#1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }
}
