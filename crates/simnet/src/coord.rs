//! Higher-level coordination primitives for simulated processes:
//! counting semaphores, reusable barriers, and wait-groups. All are
//! single-threaded, deterministic, and FIFO-fair, like the rest of the
//! crate.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A counting semaphore with strict FIFO admission.
///
/// Releases hand permits *directly* to the oldest live waiter (a
/// per-waiter grant cell) instead of returning them to a shared pool
/// that woken and newly-arriving acquirers re-race for. The earlier
/// pool-and-re-race scheme admitted whichever queued waiter happened to
/// poll first — and left the waiter whose wake was stolen parked
/// without a registered waker. Directed handoff makes admission order
/// equal arrival order, which bounds the tail of `acquire` waits under
/// oversubscription (see `RfpPool`'s `acquire_wait` histogram).
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

struct SemState {
    /// Free permits not earmarked for any waiter.
    permits: usize,
    /// Live (not cancelled, not yet granted) queued waiters.
    waiting: usize,
    waiters: VecDeque<Rc<WaiterCell>>,
}

/// One queued acquirer. A release flips `granted` and wakes the stored
/// waker; the waiter completes on its next poll. Dropping a pending
/// `Acquire` flips `cancelled` so stale queue entries are skipped.
struct WaiterCell {
    waker: RefCell<Option<Waker>>,
    granted: Cell<bool>,
    cancelled: Cell<bool>,
}

impl SemState {
    /// Hands free permits to the oldest live waiters, in order.
    fn grant(&mut self) {
        while self.permits > 0 {
            let Some(cell) = self.waiters.pop_front() else {
                break;
            };
            if cell.cancelled.get() {
                continue;
            }
            self.permits -= 1;
            self.waiting -= 1;
            cell.granted.set(true);
            let waker = cell.waker.borrow_mut().take();
            if let Some(w) = waker {
                w.wake();
            }
        }
    }
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiting: 0,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Acquires one permit, suspending until one is available; returns
    /// an RAII guard releasing it on drop. Admission is strictly FIFO:
    /// a new acquirer never overtakes an already-queued one.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            state: Rc::clone(&self.state),
            cell: None,
            done: false,
        }
    }

    /// Tries to take a permit without waiting. Fails while waiters are
    /// queued even if a permit is momentarily free — barging past the
    /// queue would undo the FIFO guarantee.
    pub fn try_acquire(&self) -> Option<SemaphoreGuard> {
        let mut st = self.state.borrow_mut();
        if st.permits > 0 && st.waiting == 0 {
            st.permits -= 1;
            Some(SemaphoreGuard {
                state: Rc::clone(&self.state),
            })
        } else {
            None
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    state: Rc<RefCell<SemState>>,
    cell: Option<Rc<WaiterCell>>,
    done: bool,
}

impl Future for Acquire {
    type Output = SemaphoreGuard;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemaphoreGuard> {
        let state = Rc::clone(&self.state);
        let mut st = state.borrow_mut();
        if let Some(cell) = &self.cell {
            if cell.granted.get() {
                // A release earmarked a permit for *this* waiter.
                drop(st);
                self.done = true;
                return Poll::Ready(SemaphoreGuard {
                    state: Rc::clone(&self.state),
                });
            }
            *cell.waker.borrow_mut() = Some(cx.waker().clone());
            return Poll::Pending;
        }
        if st.permits > 0 && st.waiting == 0 {
            st.permits -= 1;
            drop(st);
            self.done = true;
            return Poll::Ready(SemaphoreGuard {
                state: Rc::clone(&self.state),
            });
        }
        let cell = Rc::new(WaiterCell {
            waker: RefCell::new(Some(cx.waker().clone())),
            granted: Cell::new(false),
            cancelled: Cell::new(false),
        });
        st.waiters.push_back(Rc::clone(&cell));
        st.waiting += 1;
        self.cell = Some(cell);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let Some(cell) = &self.cell else {
            return;
        };
        let mut st = self.state.borrow_mut();
        if cell.granted.get() {
            // Granted but never claimed (future dropped between wake
            // and poll): the permit goes back to the next in line.
            st.permits += 1;
            st.grant();
        } else {
            cell.cancelled.set(true);
            st.waiting -= 1;
        }
    }
}

/// RAII permit of a [`Semaphore`].
pub struct SemaphoreGuard {
    state: Rc<RefCell<SemState>>,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.permits += 1;
        st.grant();
    }
}

/// A reusable barrier: every generation releases once `parties`
/// processes have arrived.
#[derive(Clone)]
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<Waker>,
}

impl Barrier {
    /// Creates a barrier for `parties` processes.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Arrives at the barrier; resolves once all parties of this
    /// generation have arrived. Returns `true` for the last arriver
    /// (the "leader").
    pub fn arrive(&self) -> BarrierWait {
        let mut st = self.state.borrow_mut();
        st.arrived += 1;
        let generation = st.generation;
        let leader = st.arrived == st.parties;
        if leader {
            st.arrived = 0;
            st.generation += 1;
            for w in st.waiters.drain(..) {
                w.wake();
            }
        }
        BarrierWait {
            state: Rc::clone(&self.state),
            generation,
            leader,
        }
    }
}

/// Future returned by [`Barrier::arrive`].
pub struct BarrierWait {
    state: Rc<RefCell<BarrierState>>,
    generation: u64,
    leader: bool,
}

impl Future for BarrierWait {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let mut st = self.state.borrow_mut();
        if st.generation > self.generation {
            Poll::Ready(self.leader)
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Tracks a dynamic set of outstanding tasks; waiters resume when the
/// count returns to zero.
#[derive(Clone, Default)]
pub struct WaitGroup {
    state: Rc<RefCell<WgState>>,
}

#[derive(Default)]
struct WgState {
    count: usize,
    waiters: Vec<Waker>,
}

impl WaitGroup {
    /// Creates an empty wait-group.
    pub fn new() -> Self {
        WaitGroup::default()
    }

    /// Registers one outstanding task; drop the token to mark it done.
    pub fn add(&self) -> WaitGroupToken {
        self.state.borrow_mut().count += 1;
        WaitGroupToken {
            state: Rc::clone(&self.state),
        }
    }

    /// Outstanding tasks.
    pub fn count(&self) -> usize {
        self.state.borrow().count
    }

    /// Resolves once no tasks are outstanding.
    pub fn wait(&self) -> WaitGroupWait {
        WaitGroupWait {
            state: Rc::clone(&self.state),
        }
    }
}

/// RAII token for one outstanding task.
pub struct WaitGroupToken {
    state: Rc<RefCell<WgState>>,
}

impl Drop for WaitGroupToken {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.count -= 1;
        if st.count == 0 {
            for w in st.waiters.drain(..) {
                w.wake();
            }
        }
    }
}

/// Future returned by [`WaitGroup::wait`].
pub struct WaitGroupWait {
    state: Rc<RefCell<WgState>>,
}

impl Future for WaitGroupWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.borrow_mut();
        if st.count == 0 {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimSpan, Simulation};
    use std::cell::Cell;

    #[test]
    fn semaphore_caps_concurrency() {
        let mut sim = Simulation::new(0);
        let sem = Semaphore::new(2);
        let inside = Rc::new(Cell::new(0usize));
        let peak = Rc::new(Cell::new(0usize));
        for _ in 0..6 {
            let s = sem.clone();
            let i = Rc::clone(&inside);
            let p = Rc::clone(&peak);
            let h = sim.handle();
            sim.spawn(async move {
                let _g = s.acquire().await;
                i.set(i.get() + 1);
                p.set(p.get().max(i.get()));
                h.sleep(SimSpan::nanos(100)).await;
                i.set(i.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 2, "at most two holders");
        // 6 tasks × 100ns with 2 permits = 300ns total.
        assert_eq!(sim.now().as_nanos(), 300);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = Semaphore::new(1);
        let g = sem.try_acquire().expect("one permit");
        assert!(sem.try_acquire().is_none());
        drop(g);
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn semaphore_admits_in_arrival_order() {
        let mut sim = Simulation::new(0);
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u64 {
            let s = sem.clone();
            let o = Rc::clone(&order);
            let h = sim.handle();
            sim.spawn(async move {
                // Stagger arrivals so the queue order is unambiguous.
                h.sleep(SimSpan::nanos(i)).await;
                let _g = s.acquire().await;
                o.borrow_mut().push(i);
                h.sleep(SimSpan::nanos(100)).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn semaphore_try_acquire_does_not_barge_past_waiters() {
        let mut sim = Simulation::new(0);
        let sem = Semaphore::new(1);
        let waiter_got_it = Rc::new(Cell::new(false));
        {
            let s = sem.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let _g = s.acquire().await;
                h.sleep(SimSpan::nanos(100)).await;
            });
        }
        {
            let s = sem.clone();
            let w = Rc::clone(&waiter_got_it);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(10)).await;
                let _g = s.acquire().await;
                w.set(true);
            });
        }
        {
            let s = sem.clone();
            let w = Rc::clone(&waiter_got_it);
            let h = sim.handle();
            sim.spawn(async move {
                // At t=50 the permit is held and a waiter is queued; at
                // t=150 the release has been handed to the queued
                // waiter — try_acquire must never jump that queue.
                h.sleep(SimSpan::nanos(50)).await;
                assert!(s.try_acquire().is_none());
                h.sleep(SimSpan::nanos(100)).await;
                assert!(w.get(), "queued waiter admitted first");
            });
        }
        sim.run();
        assert!(waiter_got_it.get());
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn semaphore_cancelled_waiter_releases_its_place() {
        let mut sim = Simulation::new(0);
        let sem = Semaphore::new(1);
        let got = Rc::new(Cell::new(0u32));
        {
            let s = sem.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let _g = s.acquire().await;
                h.sleep(SimSpan::nanos(100)).await;
            });
        }
        {
            // Queues at t=10, gives up (drops the Acquire) at t=50,
            // before the holder releases at t=100.
            let s = sem.clone();
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(10)).await;
                let mut fut = Box::pin(s.acquire());
                // One poll queues the waiter; the drop below cancels it.
                std::future::poll_fn(|cx| {
                    let _ = fut.as_mut().poll(cx);
                    Poll::Ready(())
                })
                .await;
                h.sleep(SimSpan::nanos(40)).await;
                drop(fut);
            });
        }
        {
            let s = sem.clone();
            let g = Rc::clone(&got);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(20)).await;
                let _g = s.acquire().await;
                g.set(h.now().as_nanos() as u32);
            });
        }
        sim.run();
        // The cancelled waiter ahead in the queue must not absorb the
        // release: the third task is admitted at t=100.
        assert_eq!(got.get(), 100);
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn barrier_releases_all_at_once() {
        let mut sim = Simulation::new(0);
        let barrier = Barrier::new(3);
        let released_at = Rc::new(RefCell::new(Vec::new()));
        let leaders = Rc::new(Cell::new(0u32));
        for i in 0..3u64 {
            let b = barrier.clone();
            let r = Rc::clone(&released_at);
            let l = Rc::clone(&leaders);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(100 * (i + 1))).await;
                if b.arrive().await {
                    l.set(l.get() + 1);
                }
                r.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        // Everyone resumes at the last arrival (t=300).
        assert_eq!(*released_at.borrow(), vec![300, 300, 300]);
        assert_eq!(leaders.get(), 1, "exactly one leader per generation");
    }

    #[test]
    fn barrier_is_reusable() {
        let mut sim = Simulation::new(0);
        let barrier = Barrier::new(2);
        let rounds_done = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let b = barrier.clone();
            let r = Rc::clone(&rounds_done);
            let h = sim.handle();
            sim.spawn(async move {
                for _ in 0..3 {
                    h.sleep(SimSpan::nanos(10)).await;
                    b.arrive().await;
                }
                r.set(r.get() + 1);
            });
        }
        sim.run();
        assert_eq!(rounds_done.get(), 2);
    }

    #[test]
    fn waitgroup_waits_for_all_tokens() {
        let mut sim = Simulation::new(0);
        let wg = WaitGroup::new();
        let finished_at = Rc::new(Cell::new(0u64));
        for i in 1..=3u64 {
            let token = wg.add();
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(i * 100)).await;
                drop(token);
            });
        }
        let w = wg.clone();
        let f = Rc::clone(&finished_at);
        let h = sim.handle();
        sim.spawn(async move {
            w.wait().await;
            f.set(h.now().as_nanos());
        });
        sim.run();
        assert_eq!(finished_at.get(), 300);
        assert_eq!(wg.count(), 0);
    }

    #[test]
    fn waitgroup_with_no_tasks_is_immediate() {
        let mut sim = Simulation::new(0);
        let wg = WaitGroup::new();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            wg.wait().await;
            d.set(true);
        });
        sim.run();
        assert!(done.get());
        assert_eq!(sim.now().as_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn barrier_rejects_zero_parties() {
        let _ = Barrier::new(0);
    }
}
