//! Higher-level coordination primitives for simulated processes:
//! counting semaphores, reusable barriers, and wait-groups. All are
//! single-threaded, deterministic, and FIFO-fair, like the rest of the
//! crate.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A counting semaphore with FIFO admission.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Waker>,
    /// Wakes handed out but not yet claimed by a re-poll; prevents a
    /// released permit from being double-granted.
    granted: usize,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
                granted: 0,
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Acquires one permit, suspending until one is available; returns
    /// an RAII guard releasing it on drop.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            state: Rc::clone(&self.state),
            queued: false,
        }
    }

    /// Tries to take a permit without waiting.
    pub fn try_acquire(&self) -> Option<SemaphoreGuard> {
        let mut st = self.state.borrow_mut();
        if st.permits > st.granted {
            st.permits -= 1;
            Some(SemaphoreGuard {
                state: Rc::clone(&self.state),
            })
        } else {
            None
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    state: Rc<RefCell<SemState>>,
    queued: bool,
}

impl Future for Acquire {
    type Output = SemaphoreGuard;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemaphoreGuard> {
        let state = Rc::clone(&self.state);
        let mut st = state.borrow_mut();
        if self.queued && st.granted > 0 {
            // A release earmarked a permit for a woken waiter — claim it.
            st.granted -= 1;
            st.permits -= 1;
            drop(st);
            return Poll::Ready(SemaphoreGuard {
                state: Rc::clone(&self.state),
            });
        }
        if !self.queued && st.permits > st.granted {
            st.permits -= 1;
            drop(st);
            return Poll::Ready(SemaphoreGuard {
                state: Rc::clone(&self.state),
            });
        }
        if !self.queued {
            st.waiters.push_back(cx.waker().clone());
            self.queued = true;
        }
        Poll::Pending
    }
}

/// RAII permit of a [`Semaphore`].
pub struct SemaphoreGuard {
    state: Rc<RefCell<SemState>>,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.permits += 1;
        if let Some(w) = st.waiters.pop_front() {
            st.granted += 1;
            w.wake();
        }
    }
}

/// A reusable barrier: every generation releases once `parties`
/// processes have arrived.
#[derive(Clone)]
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<Waker>,
}

impl Barrier {
    /// Creates a barrier for `parties` processes.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Arrives at the barrier; resolves once all parties of this
    /// generation have arrived. Returns `true` for the last arriver
    /// (the "leader").
    pub fn arrive(&self) -> BarrierWait {
        let mut st = self.state.borrow_mut();
        st.arrived += 1;
        let generation = st.generation;
        let leader = st.arrived == st.parties;
        if leader {
            st.arrived = 0;
            st.generation += 1;
            for w in st.waiters.drain(..) {
                w.wake();
            }
        }
        BarrierWait {
            state: Rc::clone(&self.state),
            generation,
            leader,
        }
    }
}

/// Future returned by [`Barrier::arrive`].
pub struct BarrierWait {
    state: Rc<RefCell<BarrierState>>,
    generation: u64,
    leader: bool,
}

impl Future for BarrierWait {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let mut st = self.state.borrow_mut();
        if st.generation > self.generation {
            Poll::Ready(self.leader)
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Tracks a dynamic set of outstanding tasks; waiters resume when the
/// count returns to zero.
#[derive(Clone, Default)]
pub struct WaitGroup {
    state: Rc<RefCell<WgState>>,
}

#[derive(Default)]
struct WgState {
    count: usize,
    waiters: Vec<Waker>,
}

impl WaitGroup {
    /// Creates an empty wait-group.
    pub fn new() -> Self {
        WaitGroup::default()
    }

    /// Registers one outstanding task; drop the token to mark it done.
    pub fn add(&self) -> WaitGroupToken {
        self.state.borrow_mut().count += 1;
        WaitGroupToken {
            state: Rc::clone(&self.state),
        }
    }

    /// Outstanding tasks.
    pub fn count(&self) -> usize {
        self.state.borrow().count
    }

    /// Resolves once no tasks are outstanding.
    pub fn wait(&self) -> WaitGroupWait {
        WaitGroupWait {
            state: Rc::clone(&self.state),
        }
    }
}

/// RAII token for one outstanding task.
pub struct WaitGroupToken {
    state: Rc<RefCell<WgState>>,
}

impl Drop for WaitGroupToken {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.count -= 1;
        if st.count == 0 {
            for w in st.waiters.drain(..) {
                w.wake();
            }
        }
    }
}

/// Future returned by [`WaitGroup::wait`].
pub struct WaitGroupWait {
    state: Rc<RefCell<WgState>>,
}

impl Future for WaitGroupWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.borrow_mut();
        if st.count == 0 {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimSpan, Simulation};
    use std::cell::Cell;

    #[test]
    fn semaphore_caps_concurrency() {
        let mut sim = Simulation::new(0);
        let sem = Semaphore::new(2);
        let inside = Rc::new(Cell::new(0usize));
        let peak = Rc::new(Cell::new(0usize));
        for _ in 0..6 {
            let s = sem.clone();
            let i = Rc::clone(&inside);
            let p = Rc::clone(&peak);
            let h = sim.handle();
            sim.spawn(async move {
                let _g = s.acquire().await;
                i.set(i.get() + 1);
                p.set(p.get().max(i.get()));
                h.sleep(SimSpan::nanos(100)).await;
                i.set(i.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 2, "at most two holders");
        // 6 tasks × 100ns with 2 permits = 300ns total.
        assert_eq!(sim.now().as_nanos(), 300);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = Semaphore::new(1);
        let g = sem.try_acquire().expect("one permit");
        assert!(sem.try_acquire().is_none());
        drop(g);
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn barrier_releases_all_at_once() {
        let mut sim = Simulation::new(0);
        let barrier = Barrier::new(3);
        let released_at = Rc::new(RefCell::new(Vec::new()));
        let leaders = Rc::new(Cell::new(0u32));
        for i in 0..3u64 {
            let b = barrier.clone();
            let r = Rc::clone(&released_at);
            let l = Rc::clone(&leaders);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(100 * (i + 1))).await;
                if b.arrive().await {
                    l.set(l.get() + 1);
                }
                r.borrow_mut().push(h.now().as_nanos());
            });
        }
        sim.run();
        // Everyone resumes at the last arrival (t=300).
        assert_eq!(*released_at.borrow(), vec![300, 300, 300]);
        assert_eq!(leaders.get(), 1, "exactly one leader per generation");
    }

    #[test]
    fn barrier_is_reusable() {
        let mut sim = Simulation::new(0);
        let barrier = Barrier::new(2);
        let rounds_done = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let b = barrier.clone();
            let r = Rc::clone(&rounds_done);
            let h = sim.handle();
            sim.spawn(async move {
                for _ in 0..3 {
                    h.sleep(SimSpan::nanos(10)).await;
                    b.arrive().await;
                }
                r.set(r.get() + 1);
            });
        }
        sim.run();
        assert_eq!(rounds_done.get(), 2);
    }

    #[test]
    fn waitgroup_waits_for_all_tokens() {
        let mut sim = Simulation::new(0);
        let wg = WaitGroup::new();
        let finished_at = Rc::new(Cell::new(0u64));
        for i in 1..=3u64 {
            let token = wg.add();
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimSpan::nanos(i * 100)).await;
                drop(token);
            });
        }
        let w = wg.clone();
        let f = Rc::clone(&finished_at);
        let h = sim.handle();
        sim.spawn(async move {
            w.wait().await;
            f.set(h.now().as_nanos());
        });
        sim.run();
        assert_eq!(finished_at.get(), 300);
        assert_eq!(wg.count(), 0);
    }

    #[test]
    fn waitgroup_with_no_tasks_is_immediate() {
        let mut sim = Simulation::new(0);
        let wg = WaitGroup::new();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            wg.wait().await;
            d.set(true);
        });
        sim.run();
        assert!(done.get());
        assert_eq!(sim.now().as_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn barrier_rejects_zero_parties() {
        let _ = Barrier::new(0);
    }
}
