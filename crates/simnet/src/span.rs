//! Per-request lifecycle spans.
//!
//! A [`RequestTrace`] records the instants a request passes named
//! milestones (issue → posted → dequeued → processed → completed…).
//! Phases are the intervals between consecutive marks, named after the
//! mark that *ends* them — so the phase durations of a trace always sum
//! exactly, in sim-nanoseconds, to its end-to-end latency.
//!
//! A [`SpanRecorder`] keeps a bounded ring of finished traces and can
//! export them in the Chrome trace-event JSON format (load the file in
//! `chrome://tracing` or Perfetto; one row per track).
//!
//! # Examples
//!
//! ```
//! use rfp_simnet::{RequestTrace, SimTime};
//!
//! let t = |ns| SimTime::from_nanos(ns);
//! let mut trace = RequestTrace::begin(1, 0, t(100), "issue");
//! trace.mark(t(250), "write_done");
//! trace.mark(t(400), "completed");
//! let total: u64 = trace.phases().iter().map(|p| p.duration.as_nanos()).sum();
//! assert_eq!(total, trace.end_to_end().as_nanos());
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::rc::Rc;

use crate::metrics::json_string;
use crate::time::{SimSpan, SimTime};

/// One interval of a request's lifetime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// The milestone that ends this phase.
    pub name: &'static str,
    /// When the phase started.
    pub start: SimTime,
    /// How long it lasted.
    pub duration: SimSpan,
}

/// The recorded lifecycle of one request.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Caller-chosen request identity (e.g. RFP sequence number).
    pub id: u64,
    /// Display row, e.g. the issuing client's index.
    pub track: u32,
    marks: Vec<(SimTime, &'static str)>,
}

impl RequestTrace {
    /// Starts a trace for request `id` on display row `track`, with its
    /// first milestone `label` at instant `at`.
    pub fn begin(id: u64, track: u32, at: SimTime, label: &'static str) -> Self {
        RequestTrace {
            id,
            track,
            marks: vec![(at, label)],
        }
    }

    /// Records the next milestone.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous mark — simulated requests
    /// move forward in time.
    pub fn mark(&mut self, at: SimTime, label: &'static str) {
        let (last, _) = *self.marks.last().expect("trace always has marks");
        assert!(at >= last, "span mark moves backwards: {at} < {last}");
        self.marks.push((at, label));
    }

    /// Records a milestone that may be observed out of order relative
    /// to marks made elsewhere (e.g. a server dequeue that lands before
    /// the client's ACK-driven WRITE completion): inserts in timestamp
    /// order, after existing marks with the same instant.
    pub fn mark_unordered(&mut self, at: SimTime, label: &'static str) {
        let pos = self.marks.partition_point(|&(t, _)| t <= at);
        self.marks.insert(pos, (at, label));
    }

    /// The recorded milestones, oldest first.
    pub fn marks(&self) -> &[(SimTime, &'static str)] {
        &self.marks
    }

    /// When the request was issued.
    pub fn started_at(&self) -> SimTime {
        self.marks[0].0
    }

    /// Time from first to last mark. Zero for a trace with one mark.
    pub fn end_to_end(&self) -> SimSpan {
        let first = self.marks[0].0;
        let last = self.marks[self.marks.len() - 1].0;
        last.since(first)
    }

    /// The intervals between consecutive marks. Their durations sum
    /// exactly to [`end_to_end`](RequestTrace::end_to_end) — each is the
    /// difference of adjacent timestamps, so the sum telescopes.
    pub fn phases(&self) -> Vec<Phase> {
        self.marks
            .windows(2)
            .map(|w| Phase {
                name: w[1].1,
                start: w[0].0,
                duration: w[1].0.since(w[0].0),
            })
            .collect()
    }
}

struct Inner {
    spans: VecDeque<RequestTrace>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

/// A bounded, shareable ring of finished [`RequestTrace`]s.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Rc<RefCell<Inner>>,
}

impl SpanRecorder {
    /// Creates a recorder keeping the most recent `capacity` traces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span capacity must be positive");
        SpanRecorder {
            inner: Rc::new(RefCell::new(Inner {
                spans: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                recorded: 0,
                dropped: 0,
            })),
        }
    }

    /// Stores a finished trace, evicting the oldest when full.
    pub fn record(&self, trace: RequestTrace) {
        let mut inner = self.inner.borrow_mut();
        if inner.spans.len() == inner.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(trace);
        inner.recorded += 1;
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// Traces evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// A copy of the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.inner.borrow().spans.iter().cloned().collect()
    }

    /// Discards retained traces and zeroes the cumulative counters.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.spans.clear();
        inner.recorded = 0;
        inner.dropped = 0;
    }

    /// Writes the retained traces as a Chrome trace-event JSON array of
    /// complete (`"ph": "X"`) events — one event per phase, with `ts`
    /// and `dur` in microseconds (fractions keep nanosecond precision),
    /// `tid` the trace's track, and the request id in `args`.
    pub fn write_chrome_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        self.write_chrome_filtered(w, |_| true)
    }

    /// Like [`write_chrome_trace`](SpanRecorder::write_chrome_trace),
    /// but keeps only traces overlapping `[from, to]` — the shape a
    /// dump-on-anomaly bundle wants: just the offending window.
    pub fn write_chrome_trace_window(
        &self,
        w: &mut dyn Write,
        from: SimTime,
        to: SimTime,
    ) -> io::Result<()> {
        self.write_chrome_filtered(w, |tr| {
            let start = tr.started_at();
            let end = SimTime::from_nanos(start.as_nanos() + tr.end_to_end().as_nanos());
            start <= to && end >= from
        })
    }

    fn write_chrome_filtered(
        &self,
        w: &mut dyn Write,
        keep: impl Fn(&RequestTrace) -> bool,
    ) -> io::Result<()> {
        let inner = self.inner.borrow();
        writeln!(w, "[")?;
        let mut first = true;
        for trace in inner.spans.iter().filter(|tr| keep(tr)) {
            for phase in trace.phases() {
                if !first {
                    writeln!(w, ",")?;
                }
                first = false;
                write!(
                    w,
                    "{{\"name\": {}, \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \
                     \"ts\": {}, \"dur\": {}, \"args\": {{\"req\": {}}}}}",
                    json_string(phase.name),
                    trace.track,
                    micros(phase.start.as_nanos()),
                    micros(phase.duration.as_nanos()),
                    trace.id,
                )?;
            }
        }
        if !first {
            writeln!(w)?;
        }
        writeln!(w, "]")
    }
}

/// Nanoseconds rendered as a decimal microsecond literal (exact, no
/// floating point — determinism matters more than brevity).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_trace() -> RequestTrace {
        let mut tr = RequestTrace::begin(7, 2, t(1_000), "issue");
        tr.mark(t(1_400), "write_done");
        tr.mark(t(1_400), "dequeued"); // zero-length phase is legal
        tr.mark(t(2_100), "processed");
        tr.mark(t(2_500), "completed");
        tr
    }

    #[test]
    fn phases_telescope_to_end_to_end() {
        let tr = sample_trace();
        let phases = tr.phases();
        assert_eq!(phases.len(), 4);
        assert_eq!(phases[0].name, "write_done");
        assert_eq!(phases[1].duration, SimSpan::ZERO);
        let sum: u64 = phases.iter().map(|p| p.duration.as_nanos()).sum();
        assert_eq!(sum, tr.end_to_end().as_nanos());
        assert_eq!(sum, 1_500);
    }

    #[test]
    fn unordered_marks_keep_timestamps_sorted() {
        let mut tr = RequestTrace::begin(0, 0, t(100), "issue");
        tr.mark(t(900), "completed");
        tr.mark_unordered(t(400), "server_dequeued");
        tr.mark_unordered(t(600), "response_posted");
        let times: Vec<u64> = tr.marks().iter().map(|m| m.0.as_nanos()).collect();
        assert_eq!(times, vec![100, 400, 600, 900]);
        let sum: u64 = tr.phases().iter().map(|p| p.duration.as_nanos()).sum();
        assert_eq!(sum, tr.end_to_end().as_nanos());
    }

    #[test]
    #[should_panic(expected = "moves backwards")]
    fn backwards_mark_rejected() {
        let mut tr = RequestTrace::begin(0, 0, t(500), "issue");
        tr.mark(t(400), "oops");
    }

    #[test]
    fn recorder_ring_bounds() {
        let rec = SpanRecorder::new(2);
        for i in 0..3 {
            rec.record(RequestTrace::begin(i, 0, t(i * 10), "issue"));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.snapshot()[0].id, 1);
        rec.reset();
        assert!(rec.is_empty());
        assert_eq!((rec.recorded(), rec.dropped()), (0, 0));
    }

    #[test]
    fn chrome_trace_shape_and_determinism() {
        let render = || {
            let rec = SpanRecorder::new(8);
            rec.record(sample_trace());
            let mut out = Vec::new();
            rec.write_chrome_trace(&mut out).unwrap();
            String::from_utf8(out).unwrap()
        };
        let a = render();
        assert_eq!(a, render());
        assert!(a.starts_with("[\n"), "{a}");
        assert!(a.trim_end().ends_with(']'), "{a}");
        assert!(a.contains("\"name\": \"write_done\""), "{a}");
        assert!(a.contains("\"ph\": \"X\""), "{a}");
        assert!(a.contains("\"ts\": 1.000"), "{a}");
        assert!(a.contains("\"dur\": 0.400"), "{a}");
        assert!(a.contains("\"tid\": 2"), "{a}");
        assert!(a.contains("\"req\": 7"), "{a}");
        // Four phases -> four events.
        assert_eq!(a.matches("\"ph\": \"X\"").count(), 4);
    }

    #[test]
    fn windowed_chrome_trace_filters_by_overlap() {
        let rec = SpanRecorder::new(8);
        rec.record(sample_trace()); // spans 1_000..2_500 ns, id 7
        let mut late = RequestTrace::begin(9, 0, t(10_000), "issue");
        late.mark(t(11_000), "completed");
        rec.record(late);
        let render = |from, to| {
            let mut out = Vec::new();
            rec.write_chrome_trace_window(&mut out, t(from), t(to))
                .unwrap();
            String::from_utf8(out).unwrap()
        };
        // Window covering only the first trace.
        let a = render(0, 5_000);
        assert!(a.contains("\"req\": 7"), "{a}");
        assert!(!a.contains("\"req\": 9"), "{a}");
        // Overlap at the edge counts.
        let b = render(2_500, 3_000);
        assert!(b.contains("\"req\": 7"), "{b}");
        // Disjoint window keeps nothing but stays valid JSON.
        assert_eq!(render(5_000, 6_000), "[\n]\n");
    }

    #[test]
    fn empty_recorder_writes_valid_json() {
        let rec = SpanRecorder::new(1);
        let mut out = Vec::new();
        rec.write_chrome_trace(&mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "[\n]\n");
    }
}
