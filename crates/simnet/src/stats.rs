//! Measurement helpers: counters, latency histograms, busy-time clocks.

use std::cell::{Cell, RefCell};

use crate::time::{SimSpan, SimTime};

/// A monotonically increasing event counter.
#[derive(Default)]
pub struct Counter {
    count: Cell<u64>,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` — a pegged counter is a
    /// visible anomaly, a wrapped one silently reports garbage.
    pub fn add(&self, n: u64) {
        self.count.set(self.count.get().saturating_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.count.get()
    }

    /// Resets to zero (discarding warm-up).
    pub fn reset(&self) {
        self.count.set(0);
    }
}

/// A sample-recording histogram for latency-style measurements.
///
/// Stores raw samples (nanoseconds); experiments in this workspace record
/// at most a few million samples per run, so exact percentiles/CDFs are
/// affordable and simpler than bucketing.
///
/// Samples live in two runs: a sorted prefix and an unsorted tail of
/// recent inserts. Queries sort only the tail and merge it in, so a
/// record/query/record pattern (time-series sampling does this every
/// tick) costs O(tail log tail + n) per query instead of re-sorting all
/// n samples each time.
#[derive(Default)]
pub struct Histogram {
    sorted: RefCell<Vec<u64>>,
    tail: RefCell<Vec<u64>>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&self, span: SimSpan) {
        self.tail.borrow_mut().push(span.as_nanos());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.sorted.borrow().len() + self.tail.borrow().len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all samples (e.g. after warm-up).
    pub fn reset(&self) {
        self.sorted.borrow_mut().clear();
        self.tail.borrow_mut().clear();
    }

    /// Folds the unsorted tail into the sorted run (one linear merge of
    /// two sorted sequences).
    fn ensure_sorted(&self) {
        let mut tail = self.tail.borrow_mut();
        if tail.is_empty() {
            return;
        }
        tail.sort_unstable();
        let mut sorted = self.sorted.borrow_mut();
        let mut merged = Vec::with_capacity(sorted.len() + tail.len());
        let (mut i, mut j) = (0, 0);
        while i < sorted.len() && j < tail.len() {
            if sorted[i] <= tail[j] {
                merged.push(sorted[i]);
                i += 1;
            } else {
                merged.push(tail[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&sorted[i..]);
        merged.extend_from_slice(&tail[j..]);
        *sorted = merged;
        tail.clear();
    }

    /// Arithmetic mean, or `None` when empty. Order-insensitive, so the
    /// tail is summed in place without merging.
    pub fn mean(&self) -> Option<SimSpan> {
        let sorted = self.sorted.borrow();
        let tail = self.tail.borrow();
        let n = sorted.len() + tail.len();
        if n == 0 {
            return None;
        }
        let sum: u128 = sorted.iter().chain(tail.iter()).map(|&v| v as u128).sum();
        Some(SimSpan::nanos((sum / n as u128) as u64))
    }

    /// The `p`-th percentile (0.0..=100.0) by nearest-rank, or `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<SimSpan> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        self.ensure_sorted();
        let s = self.sorted.borrow();
        if s.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * s.len() as f64).ceil() as usize;
        let idx = rank.max(1).min(s.len()) - 1;
        Some(SimSpan::nanos(s[idx]))
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<SimSpan> {
        self.ensure_sorted();
        self.sorted.borrow().last().map(|&v| SimSpan::nanos(v))
    }

    /// Fraction of samples at or below `bound` (0.0 when empty) — the
    /// goodput accounting of the overload ablation: completions slower
    /// than the deadline are throughput but not goodput.
    pub fn frac_at_most(&self, bound: SimSpan) -> f64 {
        self.ensure_sorted();
        let s = self.sorted.borrow();
        if s.is_empty() {
            return 0.0;
        }
        let n = s.partition_point(|&v| v <= bound.as_nanos());
        n as f64 / s.len() as f64
    }

    /// `points` evenly spaced (latency, cumulative-probability) pairs —
    /// the series plotted in the paper's CDF figures (Figs 13 and 20).
    pub fn cdf(&self, points: usize) -> Vec<(SimSpan, f64)> {
        self.ensure_sorted();
        let s = self.sorted.borrow();
        if s.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = s.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).max(1).min(n) - 1;
                (SimSpan::nanos(s[idx]), frac)
            })
            .collect()
    }
}

/// Tracks how much of a simulated thread's lifetime it spent busy.
///
/// Feeds Figure 15 (client CPU utilisation under RFP vs server-reply):
/// busy-polling remote fetches accrue busy time, blocking waits do not.
pub struct BusyClock {
    busy: Cell<SimSpan>,
    epoch: Cell<SimTime>,
}

impl BusyClock {
    /// Creates a clock whose measurement window starts at `now`.
    pub fn new(now: SimTime) -> Self {
        BusyClock {
            busy: Cell::new(SimSpan::ZERO),
            epoch: Cell::new(now),
        }
    }

    /// Accrues `span` of busy time.
    pub fn add_busy(&self, span: SimSpan) {
        self.busy.set(self.busy.get() + span);
    }

    /// Total busy time since the epoch.
    pub fn busy(&self) -> SimSpan {
        self.busy.get()
    }

    /// Busy fraction of the window ending at `now` (0.0..=1.0).
    pub fn utilization(&self, now: SimTime) -> f64 {
        let window = now.since(self.epoch.get());
        if window.is_zero() {
            return 0.0;
        }
        (self.busy.get().as_nanos() as f64 / window.as_nanos() as f64).min(1.0)
    }

    /// Restarts the measurement window at `now` (discarding warm-up).
    pub fn reset(&self, now: SimTime) {
        self.busy.set(SimSpan::ZERO);
        self.epoch.set(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_merges_tail_across_interleaved_queries() {
        let h = Histogram::new();
        // Build up several sorted-run/tail generations and check every
        // query sees the full sample set in order.
        let mut all = Vec::new();
        for round in 0..5u64 {
            for k in 0..20u64 {
                let v = (k * 37 + round * 11) % 100 + 1;
                h.record(SimSpan::nanos(v));
                all.push(v);
            }
            let mut expect = all.clone();
            expect.sort_unstable();
            assert_eq!(h.len(), all.len());
            assert_eq!(h.max().unwrap().as_nanos(), *expect.last().unwrap());
            let mid = expect[expect.len().div_ceil(2) - 1];
            assert_eq!(h.percentile(50.0).unwrap().as_nanos(), mid);
        }
    }

    #[test]
    fn histogram_frac_at_most() {
        let h = Histogram::new();
        assert_eq!(h.frac_at_most(SimSpan::nanos(10)), 0.0);
        for v in [10, 20, 30, 40] {
            h.record(SimSpan::nanos(v));
        }
        assert_eq!(h.frac_at_most(SimSpan::nanos(5)), 0.0);
        assert_eq!(h.frac_at_most(SimSpan::nanos(10)), 0.25);
        assert_eq!(h.frac_at_most(SimSpan::nanos(25)), 0.5);
        assert_eq!(h.frac_at_most(SimSpan::nanos(40)), 1.0);
        // Unmerged tail samples count too.
        h.record(SimSpan::nanos(1));
        assert_eq!(h.frac_at_most(SimSpan::nanos(5)), 0.2);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let h = Histogram::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(SimSpan::nanos(v));
        }
        assert_eq!(h.percentile(50.0).unwrap().as_nanos(), 50);
        assert_eq!(h.percentile(90.0).unwrap().as_nanos(), 90);
        assert_eq!(h.percentile(100.0).unwrap().as_nanos(), 100);
        assert_eq!(h.percentile(0.0).unwrap().as_nanos(), 10);
        assert_eq!(h.mean().unwrap().as_nanos(), 55);
        assert_eq!(h.max().unwrap().as_nanos(), 100);
    }

    #[test]
    fn histogram_unsorted_input() {
        let h = Histogram::new();
        for v in [90, 10, 50] {
            h.record(SimSpan::nanos(v));
        }
        assert_eq!(h.percentile(50.0).unwrap().as_nanos(), 50);
        // Recording after a query resorts lazily.
        h.record(SimSpan::nanos(1));
        assert_eq!(h.percentile(0.0).unwrap().as_nanos(), 1);
    }

    #[test]
    fn histogram_empty_queries() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert!(h.mean().is_none());
        assert!(h.percentile(50.0).is_none());
        assert!(h.cdf(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn histogram_rejects_bad_percentile() {
        let h = Histogram::new();
        h.record(SimSpan::nanos(1));
        let _ = h.percentile(101.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_max() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(SimSpan::nanos(v));
        }
        let cdf = h.cdf(10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(cdf.last().unwrap().0.as_nanos(), 1000);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_clock_fractions() {
        let t0 = SimTime::from_nanos(1000);
        let clock = BusyClock::new(t0);
        clock.add_busy(SimSpan::nanos(250));
        let now = SimTime::from_nanos(2000);
        assert!((clock.utilization(now) - 0.25).abs() < 1e-12);
        clock.reset(now);
        assert_eq!(clock.busy(), SimSpan::ZERO);
        assert_eq!(clock.utilization(now), 0.0);
    }
}
