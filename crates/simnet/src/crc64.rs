//! CRC-64 (the XZ/GO-ECMA variant: reflected, polynomial
//! 0x42F0E1EBA9EA3693, init and xorout all-ones).
//!
//! One implementation shared by every layer that checksums bytes:
//! Pilaf's self-verifying data structures use CRC64 to let clients
//! detect get-put races on one-sided reads (§1, §2.3 of the paper's
//! related work), and the RFP core wire path stamps the same checksum
//! into its extended response header so remote fetches detect torn DMA
//! and in-flight corruption. Table-driven, one table, byte-at-a-time —
//! plenty for simulation workloads.

/// Reflected form of the ECMA-182 polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u64; 256] = build_table();

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-64 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc64 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u64) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Finalises and returns the checksum.
    pub fn finish(self) -> u64 {
        !self.state
    }
}

/// One-shot CRC-64 of `bytes`.
///
/// # Examples
///
/// ```
/// assert_eq!(rfp_simnet::crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
/// ```
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(bytes);
    c.finish()
}

/// One-shot CRC-64 of the concatenation of two slices (saves callers a
/// copy when checksumming `key ‖ value`).
pub fn crc64_pair(a: &[u8], b: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(a);
    c.update(b);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC-64/XZ check vector.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"remote fetching paradigm";
        let mut c = Crc64::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc64(data));
        assert_eq!(crc64_pair(&data[..7], &data[7..]), crc64(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0x5Au8; 64];
        let clean = crc64(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc64(&data), clean, "missed flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn detects_torn_write() {
        // The exact failure Pilaf guards against: half-old, half-new.
        let old = [1u8; 32];
        let new = [2u8; 32];
        let sum_new = crc64(&new);
        let mut torn = new;
        torn[16..].copy_from_slice(&old[16..]);
        assert_ne!(crc64(&torn), sum_new);
    }
}
