//! Lease churn under faults: logical clients evict and re-lease each
//! other's connections while the wire loses packets and the server
//! warm-crashes mid-run.
//!
//! The invariants are the mux-era versions of this crate's classics:
//!
//! - **no lost acked writes** — an acknowledged PUT survives lease
//!   eviction, loss bursts, and the warm restart;
//! - **no cross-tenant payload leak** — a fetched value never carries
//!   another tenant's stamp, even though tenants constantly reuse each
//!   other's slot rings (the integrity layer's generation stamps catch
//!   stale-slot images before they surface);
//! - **deterministic recovery** — the same seed reproduces the same
//!   outcome counters, faults and all.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use rfp_chaos::{install, FaultPlan, InjectorSinks, Restart};
use rfp_core::{
    connect, serve_loop_tenant, shard_conns, FailureCause, IntegrityConfig, MuxConfig,
    OverloadConfig, RecoveryConfig, RfpConfig, RfpMux, TenantId,
};
use rfp_kvstore::systems::apply_to_partition;
use rfp_kvstore::{KvRequest, KvResponse, Partition};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{derive_seed, SimSpan, SimTime, Simulation};

const CLIENT_MACHINES: usize = 2;
const CONNS_PER_MACHINE: usize = 2;
const TASKS_PER_MACHINE: usize = 6;
const TENANTS: u32 = 3;
const KEYS_PER_TASK: usize = 4;
const POLLER_GROUPS: usize = 2;
const HORIZON: SimSpan = SimSpan::millis(14);

/// Everything the run observably produced.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    completed: u64,
    acked_puts: u64,
    failed: u64,
    rejected: u64,
    lost_acked: u64,
    leaks: u64,
    restarts: u64,
    leases: u64,
    evictions: u64,
    now_ns: u64,
}

fn run_lease_churn(seed: u64) -> Outcome {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(
        &mut sim,
        ClusterProfile::paper_testbed(),
        1 + CLIENT_MACHINES,
    );
    let server_m = cluster.machine(0);

    // One shared partition: the mux may land any tenant on any
    // connection, so every poller group serves every key.
    let part = Rc::new(RefCell::new(Partition::new(256)));

    let base_cfg = RfpConfig {
        enable_mode_switch: false,
        overload: OverloadConfig {
            enabled: true,
            // A wider deadline than the overload default: loss-burst
            // retransmits should exercise recovery, not mass shedding.
            deadline: SimSpan::micros(200),
            ..OverloadConfig::default()
        },
        integrity: IntegrityConfig {
            enabled: true,
            ..IntegrityConfig::default()
        },
        ..RfpConfig::default()
    };

    // Physical connections: one QP pair per client machine, shared.
    let mut server_conns = Vec::new();
    let mut muxes = Vec::new();
    for m in 0..CLIENT_MACHINES {
        let client_m = cluster.machine(1 + m);
        let (qp_c2s, qp_s2c) = (cluster.qp(1 + m, 0), cluster.qp(0, 1 + m));
        let mut clients = Vec::new();
        for k in 0..CONNS_PER_MACHINE {
            let idx = m * CONNS_PER_MACHINE + k;
            let cfg = RfpConfig {
                conn_id: idx as u32,
                overload: OverloadConfig {
                    seed: derive_seed(seed, 0x0C10 + idx as u64),
                    ..base_cfg.overload.clone()
                },
                ..base_cfg.clone()
            };
            let (cl, sc) = connect(
                &client_m,
                &server_m,
                Rc::clone(&qp_c2s),
                Rc::clone(&qp_s2c),
                cfg,
            );
            cl.set_reconnect(cluster.qp_factory(1 + m, 0));
            clients.push(Rc::new(cl));
            server_conns.push(Rc::new(sc));
        }
        muxes.push(RfpMux::new(clients, MuxConfig::default()));
    }

    // Outcome counters shared by every task.
    let completed = Rc::new(Cell::new(0u64));
    let acked_puts = Rc::new(Cell::new(0u64));
    let failed = Rc::new(Cell::new(0u64));
    let rejected = Rc::new(Cell::new(0u64));
    let lost_acked = Rc::new(Cell::new(0u64));
    let leaks = Rc::new(Cell::new(0u64));

    for (m, mux) in muxes.iter().enumerate() {
        for t in 0..TASKS_PER_MACHINE {
            let i = m * TASKS_PER_MACHINE + t;
            let tenant = i as u32 % TENANTS;
            let lc = mux.logical_client(TenantId(tenant));
            let thread = cluster.machine(1 + m).thread(format!("churn{i}"));
            let recovery = RecoveryConfig {
                seed: derive_seed(seed, 0xC0DE + i as u64),
                ..RecoveryConfig::default()
            };
            let mut rng = {
                use rand::SeedableRng;
                rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 1 + i as u64))
            };
            let (completed, acked_puts, failed, rejected, lost_acked, leaks) = (
                Rc::clone(&completed),
                Rc::clone(&acked_puts),
                Rc::clone(&failed),
                Rc::clone(&rejected),
                Rc::clone(&lost_acked),
                Rc::clone(&leaks),
            );
            sim.spawn(async move {
                use rand::Rng;
                // key → version of the last acknowledged PUT. Keys are
                // disjoint per task, so the ledger is local.
                let mut acked: HashMap<Vec<u8>, u64> = HashMap::new();
                let mut version = 0u64;
                loop {
                    let k = rng.gen_range(0..KEYS_PER_TASK);
                    let key = format!("L{i}.k{k}").into_bytes();
                    let is_put = rng.gen::<f64>() < 0.5;
                    let outcome = if is_put {
                        version += 1;
                        // The value carries the writer's tenant stamp:
                        // fetching someone else's bytes is observable.
                        let mut value = [0u8; 12];
                        value[..4].copy_from_slice(&tenant.to_le_bytes());
                        value[4..].copy_from_slice(&version.to_le_bytes());
                        let req = KvRequest::Put {
                            key: &key,
                            value: &value,
                        }
                        .encode();
                        lc.call_with_recovery(&thread, &req, &recovery)
                            .await
                            .map(|out| (out, Some(version)))
                    } else {
                        let req = KvRequest::Get { key: &key }.encode();
                        lc.call_with_recovery(&thread, &req, &recovery)
                            .await
                            .map(|out| (out, None))
                    };
                    match outcome {
                        Ok((out, put_version)) => {
                            completed.set(completed.get() + 1);
                            let resp = KvResponse::decode(&out.data).expect("server response");
                            match (put_version, resp) {
                                (Some(v), KvResponse::Stored) => {
                                    acked_puts.set(acked_puts.get() + 1);
                                    acked.insert(key.clone(), v);
                                }
                                (None, KvResponse::Found(value)) => {
                                    let vt = u32::from_le_bytes(
                                        value[..4].try_into().expect("12-byte value"),
                                    );
                                    if vt != tenant {
                                        leaks.set(leaks.get() + 1);
                                    }
                                    let vv = u64::from_le_bytes(
                                        value[4..].try_into().expect("12-byte value"),
                                    );
                                    if acked.get(&key).is_some_and(|&a| vv < a) {
                                        lost_acked.set(lost_acked.get() + 1);
                                    }
                                }
                                (None, KvResponse::NotFound) => {
                                    if acked.contains_key(&key) {
                                        lost_acked.set(lost_acked.get() + 1);
                                    }
                                }
                                (_, other) => panic!("unexpected response {other:?}"),
                            }
                        }
                        Err(e) => {
                            failed.set(failed.get() + 1);
                            if matches!(e.last, FailureCause::Rejected(_)) {
                                rejected.set(rejected.get() + 1);
                            }
                        }
                    }
                }
            });
        }
    }

    // Sharded tenant-aware poller groups over the shared partition.
    for (g, group) in shard_conns(&server_conns, POLLER_GROUPS)
        .into_iter()
        .enumerate()
    {
        let thread = server_m.thread(format!("pg{g}"));
        let partition = Rc::clone(&part);
        let handler = move |req: &[u8]| {
            let parsed = KvRequest::decode(req).expect("client sent well-formed request");
            let (resp, work) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
            (resp.encode(), work)
        };
        sim.spawn(serve_loop_tenant(
            thread,
            group,
            handler,
            SimSpan::nanos(100),
        ));
    }

    // The fault schedule: a loss burst on the server link, a warm
    // server crash, and a second burst on a client machine while the
    // fleet is re-leasing.
    let restarts = Rc::new(Cell::new(0u64));
    let plan = FaultPlan::new(seed)
        .loss_burst(SimTime::from_nanos(2_000_000), SimSpan::millis(1), 0, 0.25)
        .crash(
            SimTime::from_nanos(5_000_000),
            SimSpan::micros(300),
            0,
            true,
        )
        .loss_burst(SimTime::from_nanos(8_000_000), SimSpan::millis(1), 1, 0.25);
    let hook_conns = server_conns.clone();
    let hook_restarts = Rc::clone(&restarts);
    install(
        &mut sim,
        &cluster,
        &plan,
        InjectorSinks {
            on_restart: Some(Rc::new(move |restart: &Restart| {
                assert!(restart.warm, "this scenario schedules a warm crash");
                hook_restarts.set(hook_restarts.get() + 1);
                for conn in &hook_conns {
                    conn.recover_after_restart();
                }
            })),
            ..InjectorSinks::default()
        },
    );

    sim.run_for(HORIZON);
    Outcome {
        completed: completed.get(),
        acked_puts: acked_puts.get(),
        failed: failed.get(),
        rejected: rejected.get(),
        lost_acked: lost_acked.get(),
        leaks: leaks.get(),
        restarts: restarts.get(),
        leases: muxes.iter().map(|m| m.leases()).sum(),
        evictions: muxes.iter().map(|m| m.evictions()).sum(),
        now_ns: sim.now().as_nanos(),
    }
}

#[test]
fn lease_churn_under_faults_loses_nothing() {
    let out = run_lease_churn(1337);
    assert_eq!(out.lost_acked, 0, "acked write lost: {out:?}");
    assert_eq!(out.leaks, 0, "cross-tenant payload leak: {out:?}");
    assert_eq!(out.restarts, 1, "the warm crash must fire: {out:?}");
    assert!(out.completed > 500, "rig must make progress: {out:?}");
    assert!(out.acked_puts > 100, "rig must commit writes: {out:?}");
    // The whole point: leases moved constantly while faults fired.
    assert!(out.evictions > 100, "rig must churn leases: {out:?}");
    assert!(
        out.leases > out.evictions,
        "every eviction implies a regrant"
    );
}

#[test]
fn lease_churn_is_deterministic_per_seed() {
    let a = run_lease_churn(99);
    let b = run_lease_churn(99);
    assert_eq!(a, b, "same seed must reproduce the same recovery");
    assert_eq!(a.lost_acked, 0);
    assert_eq!(a.leaks, 0);
}
