//! Crash/restart recovery invariants on the chaos rig.
//!
//! The contract under test (ISSUE satellite): across a **warm** server
//! restart no acknowledged PUT may be lost, and after a **cold** restart
//! clients must see fresh errors (`NotFound`) rather than stale
//! pre-crash data.

use rfp_chaos::{spawn_chaos_kv, ChaosConfig, FaultPlan};
use rfp_simnet::{SimSpan, SimTime, Simulation};

fn crash_plan(warm: bool) -> FaultPlan {
    FaultPlan::new(11).crash(
        SimTime::from_nanos(2_000_000),
        SimSpan::micros(300),
        0,
        warm,
    )
}

#[test]
fn warm_restart_loses_no_acked_put() {
    let mut sim = Simulation::new(11);
    let cfg = ChaosConfig::default();
    let plan = crash_plan(true);
    let rig = spawn_chaos_kv(&mut sim, &cfg, Some(&plan));

    // Run past the crash window; snapshot progress right before it.
    sim.run_for(SimSpan::millis(2));
    let before = rig.state.completed.get();
    assert!(
        rig.state.acked_puts.get() > 0,
        "rig must ack PUTs before the crash"
    );
    sim.run_for(SimSpan::millis(6));

    assert_eq!(rig.state.restarts.get(), 1, "exactly one restart cycle");
    assert_eq!(
        rig.state.lost_acked.get(),
        0,
        "an acked PUT vanished across a warm restart"
    );
    assert_eq!(rig.state.stale_reads.get(), 0);
    assert!(
        rig.state.completed.get() > before,
        "clients must make progress after the restart"
    );
    // Every client recovered, within a bounded span: downtime (300µs)
    // plus backoff and resubmission, far under the full run window.
    let worst = rig
        .max_recovery_time()
        .expect("at least one recovered call was timed");
    assert!(
        worst < SimSpan::millis(3),
        "recovery took {worst:?}, expected well under 3ms"
    );
    // The injector accounted the fault it delivered.
    assert_eq!(
        rig.registry.snapshot().scalar("fault.crashes_warm"),
        Some(1.0)
    );
}

#[test]
fn cold_restart_surfaces_errors_not_stale_data() {
    let mut sim = Simulation::new(11);
    let cfg = ChaosConfig::default();
    let plan = crash_plan(false);
    let rig = spawn_chaos_kv(&mut sim, &cfg, Some(&plan));

    sim.run_for(SimSpan::millis(2));
    let not_found_before = rig.state.not_found.get();
    assert!(rig.state.acked_puts.get() > 0);
    sim.run_for(SimSpan::millis(6));

    assert_eq!(rig.state.restarts.get(), 1);
    // Data written before the wipe is legitimately gone: the ledgers
    // were reset, so the misses below are *not* lost-acked violations…
    assert_eq!(rig.state.lost_acked.get(), 0);
    // …but they must exist: the wiped keys read back as NotFound.
    assert!(
        rig.state.not_found.get() > not_found_before,
        "cold restart must surface NotFound for wiped keys"
    );
    // And no GET may surface a pre-wipe version.
    assert_eq!(
        rig.state.stale_reads.get(),
        0,
        "a pre-crash value surfaced after the cold wipe"
    );
    assert_eq!(
        rig.registry.snapshot().scalar("fault.crashes_cold"),
        Some(1.0)
    );
}

#[test]
fn qp_error_recovers_via_reconnect() {
    let mut sim = Simulation::new(11);
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::new(11).qp_error(SimTime::from_nanos(2_000_000), 0);
    let rig = spawn_chaos_kv(&mut sim, &cfg, Some(&plan));

    sim.run_for(SimSpan::millis(2));
    let before = rig.state.completed.get();
    sim.run_for(SimSpan::millis(4));

    let snap = rig.registry.snapshot();
    assert_eq!(snap.scalar("fault.qp_errors"), Some(1.0));
    assert!(
        snap.scalar("recovery.reconnects").unwrap_or(0.0) >= 1.0,
        "every client touching the errored QPs must re-establish"
    );
    assert!(rig.state.completed.get() > before);
    assert_eq!(rig.state.lost_acked.get(), 0);
    assert_eq!(
        rig.state.failed_calls.get(),
        0,
        "a single QP error must be absorbed within the retry budget"
    );
}
