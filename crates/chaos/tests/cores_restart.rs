//! Crash/restart invariants under multi-core serving with stealing.
//!
//! The single-server restart tests (`restart.rs`) prove the recovery
//! invariants with independent serve loops. This file re-proves them in
//! the configuration the reactor refactor added: four cores sharing one
//! [`Reactor`](rfp_core::Reactor) with work stealing on, so requests
//! migrate between cores while the fault plan crashes the machine out
//! from under all of them at once. The invariants must not care which
//! core happened to be holding a request when the crash landed:
//!
//! * warm restart: no acknowledged PUT may be lost, reads stay
//!   linearizable (never an older version than the last acked PUT);
//! * the rig must make progress again after the restart on every core.

use rfp_chaos::{spawn_chaos_kv, ChaosConfig, FaultPlan};
use rfp_simnet::{SimSpan, SimTime, Simulation};

fn cores_cfg() -> ChaosConfig {
    ChaosConfig {
        server_threads: 4,
        reactor_steal: true,
        client_machines: 6,
        keys_per_client: 16,
        ..ChaosConfig::default()
    }
}

#[test]
fn warm_restart_under_stealing_loses_no_acked_put() {
    let mut sim = Simulation::new(23);
    let cfg = cores_cfg();
    let plan = FaultPlan::new(23).crash(
        SimTime::from_nanos(2_000_000),
        SimSpan::micros(300),
        0,
        true,
    );
    let rig = spawn_chaos_kv(&mut sim, &cfg, Some(&plan));

    sim.run_for(SimSpan::millis(2));
    let before = rig.state.completed.get();
    assert!(
        rig.state.acked_puts.get() > 0,
        "rig must ack PUTs before the crash"
    );
    sim.run_for(SimSpan::millis(6));

    assert_eq!(rig.state.restarts.get(), 1, "exactly one restart cycle");
    assert_eq!(
        rig.state.lost_acked.get(),
        0,
        "an acked PUT vanished across a warm restart under stealing"
    );
    assert_eq!(
        rig.state.stale_reads.get(),
        0,
        "a GET surfaced a version older than the last acked PUT"
    );
    assert!(
        rig.state.completed.get() > before,
        "clients must make progress after the restart"
    );
    let reactor = rig.reactor.as_ref().expect("reactor_steal rig");
    // Every core resumed serving after the crash window.
    for core in 0..4 {
        assert!(
            reactor.served(core) > 0,
            "core {core} served nothing across the run"
        );
    }
    assert_eq!(
        rig.registry.snapshot().scalar("fault.crashes_warm"),
        Some(1.0)
    );
}

#[test]
fn stealing_rig_actually_steals_and_stays_linearizable() {
    // Fault-free control: same rig, no plan. Proves (a) the steal path
    // is genuinely exercised by this workload, so the crash test above
    // is covering crash-during-migration and not vacuously passing, and
    // (b) stealing alone never breaks the read-your-acked-writes
    // invariants.
    let mut sim = Simulation::new(23);
    let cfg = cores_cfg();
    let rig = spawn_chaos_kv(&mut sim, &cfg, None);
    sim.run_for(SimSpan::millis(8));

    let reactor = rig.reactor.as_ref().expect("reactor_steal rig");
    let steals: u64 = (0..4).map(|i| reactor.steals(i)).sum();
    assert!(
        steals > 0,
        "the cores chaos workload must exercise the steal path"
    );
    assert_eq!(rig.state.lost_acked.get(), 0);
    assert_eq!(rig.state.stale_reads.get(), 0);
    assert_eq!(rig.state.failed_calls.get(), 0);
    assert!(rig.state.acked_puts.get() > 0);
}
