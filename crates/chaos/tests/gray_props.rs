//! Property pins of the gray-failure subsystem (ISSUE satellites).
//!
//! Two families:
//!
//! * **Hedging is safe under every chaos fault family** — crash, loss
//!   burst, straggler, QP error, slow link, flaky link, slow server:
//!   with routing + hedging + budgets all on, no hedge or retry ever
//!   applies a write twice (the primary's apply ledger stays within
//!   the issued-PUT ceiling while the server process lives, and every
//!   acked PUT was applied), no acked write is lost, no read runs
//!   backwards, and the full history linearizes. A hedge response
//!   crossing a seq or generation boundary would surface as exactly
//!   one of those violations: the losing leg's late response fails the
//!   next call's seq acceptance, and an epoch-fenced response is never
//!   accepted at all.
//!
//! * **Disabled knobs are byte-identical** — a `GrayConfig` with every
//!   tunable populated but `enabled: false` (plus `call_hedged` on the
//!   read path, which must degrade to plain `call`) produces metrics
//!   CSV and trace output identical, byte for byte, to the stock
//!   pre-gray router — with and without a fail-slow fault firing
//!   mid-run. This pins the design rule that the disabled subsystem is
//!   plain field loads: no RNG draw, no instrument, no wire change.

use proptest::prelude::*;

use rfp_chaos::{spawn_grayfail_kv, FaultPlan, GrayChaosConfig};
use rfp_core::{FailoverConfig, GrayConfig, RetryBudgetConfig, ScorerConfig};
use rfp_simnet::{SimSpan, SimTime, Simulation};
use rfp_workload::check_history;

/// Faults strike early enough to overlap the short proptest workload
/// (~300 ops/client at a few µs per op).
const FAULT_AT: SimTime = SimTime::from_nanos(100_000);
const FAULT_SPAN: SimSpan = SimSpan::millis(1);
const WINDOW: SimSpan = SimSpan::millis(4);

/// Every chaos fault family, aimed at `machine` (0 = primary,
/// 1 = backup — the hedge target).
fn family_plan(family: usize, seed: u64, machine: usize) -> FaultPlan {
    let p = FaultPlan::new(seed);
    match family {
        0 => p.crash(FAULT_AT, SimSpan::micros(200), machine, true),
        1 => p.loss_burst(FAULT_AT, FAULT_SPAN, machine, 0.5),
        2 => p.straggler(FAULT_AT, FAULT_SPAN, machine, 8.0),
        3 => p.qp_error(FAULT_AT, machine),
        4 => p.slow_link(FAULT_AT, FAULT_SPAN, machine, 20_000),
        5 => p.flaky_link(FAULT_AT, FAULT_SPAN, machine, 0.9),
        6 => p.slow_server(FAULT_AT, FAULT_SPAN, machine, 16.0),
        _ => unreachable!(),
    }
}

fn small_cfg(seed: u64, gray: GrayConfig, hedged_reads: bool) -> GrayChaosConfig {
    GrayChaosConfig {
        clients: 2,
        keys_per_client: 4,
        ops_per_client: 300,
        hedged_reads,
        failover: FailoverConfig {
            gray,
            ..GrayChaosConfig::default().failover
        },
        seed,
        ..GrayChaosConfig::default()
    }
}

/// Runs the rig and returns `(metrics CSV, trace dump)`.
fn run_fingerprint(cfg: &GrayChaosConfig, plan: Option<&FaultPlan>) -> (Vec<u8>, Vec<u8>) {
    let mut sim = Simulation::new(cfg.seed);
    let rig = spawn_grayfail_kv(&mut sim, cfg, plan);
    sim.run_for(WINDOW);
    let mut csv = Vec::new();
    rig.registry
        .snapshot()
        .write_csv(&mut csv)
        .expect("write csv to vec");
    let mut trace = Vec::new();
    rig.trace.dump(&mut trace).expect("dump trace to vec");
    assert!(
        rig.state.completed.get() > 0,
        "fingerprint run must do real work"
    );
    (csv, trace)
}

proptest! {
    /// Safety under every chaos fault family (256 cases spread the
    /// seven families over both machines): the write path may fail
    /// calls (a crashed primary with no promotion refuses progress
    /// for its downtime) but can never corrupt the register semantics
    /// hedging relies on.
    #[test]
    fn hedging_is_safe_under_every_fault_family(
        seed in 0u64..10_000,
        family in 0usize..7,
        machine in 0usize..2,
    ) {
        let cfg = small_cfg(seed, GrayConfig::all_on(), true);
        let plan = family_plan(family, seed, machine);
        let mut sim = Simulation::new(seed);
        let rig = spawn_grayfail_kv(&mut sim, &cfg, Some(&plan));
        sim.run_for(WINDOW);
        let st = &rig.state;
        prop_assert_eq!(
            st.lost_acked.get(), 0,
            "family {} machine {}: lost an acked write", family, machine
        );
        prop_assert_eq!(
            st.stale_reads.get(), 0,
            "family {} machine {}: a read ran backwards", family, machine
        );
        let applied = rig.primary_role.applied_mutations.get();
        // The strict apply ledger pins hedge/retry dedup: while the
        // server process lives, no issued PUT may execute twice. A
        // crash can legitimately re-execute the one request caught
        // between apply and respond (at-least-once across restart —
        // the response-buffer seq only dedups *answered* requests;
        // exactly-once across crash is the epoch-fenced failover
        // protocol's job). The linearizability check below still pins
        // crash-family safety: re-executing the same write is
        // value-idempotent.
        if family != 0 {
            prop_assert!(
                applied <= st.issued_puts.get(),
                "family {family}: duplicate-applied mutation ({applied} applied, {} issued)",
                st.issued_puts.get()
            );
        }
        prop_assert!(
            applied >= st.acked_puts.get(),
            "family {family}: acked more than applied"
        );
        prop_assert!(
            check_history(&st.history()).is_ok(),
            "family {family} machine {machine}: history failed linearizability"
        );
    }

    /// 256-case pin: populated-but-disabled knobs (and the hedged read
    /// entry point) change nothing, byte for byte, fault or no fault.
    #[test]
    fn gray_disabled_is_byte_identical(
        seed in 0u64..100_000,
        max_tokens in 1.0f64..64.0,
        probe_every in 1u32..512,
        hedge_factor in 0.5f64..4.0,
        latency_factor in 1.5f64..8.0,
        gray_seed in 0u64..u64::MAX,
        faulted in any::<bool>(),
    ) {
        let stock = small_cfg(seed, GrayConfig::default(), false);
        let knobs = small_cfg(
            seed,
            GrayConfig {
                enabled: false,
                scored_routing: true,
                hedging: true,
                scorer: ScorerConfig {
                    latency_factor,
                    ..ScorerConfig::default()
                },
                probe_every,
                hedge_p99_factor: hedge_factor,
                budget: RetryBudgetConfig {
                    enabled: true,
                    max_tokens,
                    ..RetryBudgetConfig::default()
                },
                seed: gray_seed,
                ..GrayConfig::default()
            },
            // call_hedged on the read path must degrade to plain call.
            true,
        );
        let plan = faulted.then(|| {
            let span = SimSpan::micros(300);
            FaultPlan::new(seed)
                .slow_link(FAULT_AT, span, 0, 25_000)
                .flaky_link(FAULT_AT + SimSpan::micros(400), span, 0, 0.8)
                .slow_server(FAULT_AT + SimSpan::micros(800), span, 0, 8.0)
        });
        let a = run_fingerprint(&stock, plan.as_ref());
        let b = run_fingerprint(&knobs, plan.as_ref());
        prop_assert_eq!(&a.0, &b.0, "metrics CSV diverged");
        prop_assert_eq!(&a.1, &b.1, "trace diverged");
    }
}

/// A demoted replica recovers: when the fault window closes, recovery
/// probes observe the healed median and the router restores the
/// replica (the `routing.restore` chain fires, cause-linked like the
/// demotion).
#[test]
fn demoted_replica_is_restored_after_the_fault_heals() {
    let seed = 7;
    let mut gray = GrayConfig::all_on();
    gray.probe_every = 8; // fast recovery detection for the test
    let cfg = GrayChaosConfig {
        clients: 2,
        // 2_000 ops over 32 keys stays under the linearizability
        // checker's 128-op-per-key search cap.
        keys_per_client: 32,
        ops_per_client: 2_000,
        hedged_reads: true,
        failover: FailoverConfig {
            gray,
            ..GrayChaosConfig::default().failover
        },
        seed,
        ..GrayChaosConfig::default()
    };
    // The fault heals at 3ms, well before the 2_000-op workload
    // drains, so plenty of post-heal traffic reaches the probes.
    let plan = FaultPlan::new(seed).slow_link(
        SimTime::from_nanos(1_000_000),
        SimSpan::millis(2),
        0,
        30_000,
    );
    let mut sim = Simulation::new(seed);
    let rig = spawn_grayfail_kv(&mut sim, &cfg, Some(&plan));
    sim.run_for(SimSpan::millis(20));
    assert!(
        rig.registry.counter("routing.demote").get() >= 1,
        "the fault window must demote the primary"
    );
    assert!(
        rig.registry.counter("routing.restore").get() >= 1,
        "probes must restore the healed primary"
    );
    assert!(
        rig.routers.iter().all(|r| !r.is_demoted(0)),
        "primary still demoted long after the fault healed"
    );
    assert_eq!(rig.state.lost_acked.get(), 0);
    assert!(check_history(&rig.state.history()).is_ok());
}
