//! Flight-recorder coverage of injected faults (ISSUE satellite).
//!
//! Properties:
//!
//! * every fault window that fires inside the run anchors at least one
//!   matching `chaos.*` root event in the flight recorder, and crash
//!   windows additionally provoke `recovery.*` reaction chains;
//! * a fault-free run leaves the flight ring empty and the anomaly
//!   scanner silent — zero false positives, the doctor's baseline;
//! * the recorder dump and the anomaly list are bit-for-bit
//!   reproducible run to run at a fixed seed.

use proptest::prelude::*;

use rfp_chaos::{spawn_chaos_kv, ChaosConfig, FaultPlan};
use rfp_simnet::{AnomalyConfig, AnomalyDetector, Severity, SimSpan, SimTime, Simulation};

const FAULT_AT: SimTime = SimTime::from_nanos(150_000);
const FAULT_SPAN: SimSpan = SimSpan::micros(100);
const WINDOW: SimSpan = SimSpan::micros(600);

/// Small rig, fast runs.
fn small_cfg(seed: u64) -> ChaosConfig {
    ChaosConfig {
        client_machines: 2,
        server_threads: 1,
        keys_per_client: 4,
        seed,
        ..ChaosConfig::default()
    }
}

/// Runs the rig under `plan` and returns `(recorder dump, anomaly list)`.
fn run_observed(seed: u64, plan: Option<&FaultPlan>) -> (Vec<u8>, String, rfp_chaos::ChaosKv) {
    let mut sim = Simulation::new(seed);
    let rig = spawn_chaos_kv(&mut sim, &small_cfg(seed), plan);
    sim.run_for(WINDOW);
    let mut dump = Vec::new();
    rig.recorder.dump(&mut dump).expect("dump recorder to vec");
    let detector = AnomalyDetector::new(AnomalyConfig::default());
    let anomalies = format!(
        "{:?}",
        detector.scan(&rig.health.report(sim.handle().now()))
    );
    (dump, anomalies, rig)
}

/// One representative plan per fault class, all firing mid-window.
fn plan_for(class: usize, seed: u64) -> (FaultPlan, &'static str) {
    let plan = FaultPlan::new(seed);
    match class {
        0 => (
            plan.loss_burst(FAULT_AT, FAULT_SPAN, 0, 0.4),
            "chaos.loss_burst",
        ),
        1 => (
            plan.straggler(FAULT_AT, FAULT_SPAN, 0, 4.0),
            "chaos.straggler",
        ),
        2 => (
            plan.link_degrade(FAULT_AT, FAULT_SPAN, 4.0),
            "chaos.link_degrade",
        ),
        3 => (plan.qp_error(FAULT_AT, 0), "chaos.qp_error"),
        _ => (
            plan.crash(FAULT_AT, SimSpan::micros(150), 0, true),
            "chaos.crash",
        ),
    }
}

proptest! {
    /// Every fired fault window anchors a matching root event, and the
    /// root lands inside (at the opening edge of) the fault window.
    #[test]
    fn fired_fault_windows_anchor_cause_chains(
        seed in 0u64..200,
        class in 0usize..5,
    ) {
        let (plan, kind) = plan_for(class, seed);
        let (_, _, rig) = run_observed(seed, Some(&plan));
        prop_assert!(
            rig.recorder.kind_count(kind) >= 1,
            "no {} root event: {:?}",
            kind,
            rig.recorder.kind_counts()
        );
        let roots: Vec<_> = rig
            .recorder
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect();
        for root in &roots {
            prop_assert_eq!(root.at, FAULT_AT, "root not at the fault instant");
        }
        // A crash is the one class whose client-side reaction is
        // guaranteed inside the window: the recovery machinery must
        // have appended reaction events after the root.
        if kind == "chaos.crash" {
            let reacted = rig
                .recorder
                .kind_counts()
                .iter()
                .any(|(k, _)| k.starts_with("recovery."));
            prop_assert!(
                reacted,
                "crash provoked no recovery.* reaction: {:?}",
                rig.recorder.kind_counts()
            );
        }
    }

    /// Fault-free runs are anomaly-free and leave the flight ring
    /// empty: the doctor's zero-false-positive baseline.
    #[test]
    fn fault_free_run_is_silent(seed in 0u64..200) {
        let (_, anomalies, rig) = run_observed(seed, None);
        prop_assert_eq!(anomalies, "[]");
        let noisy: Vec<_> = rig
            .recorder
            .snapshot()
            .into_iter()
            .filter(|e| e.severity >= Severity::Warn)
            .collect();
        prop_assert!(noisy.is_empty(), "clean run raised {noisy:?}");
        prop_assert_eq!(rig.recorder.len(), 0, "clean run filled the flight ring");
    }

    /// Same seed, same plan ⇒ bit-identical recorder dump and anomaly
    /// list (the doctor's determinism contract).
    #[test]
    fn recorder_and_anomalies_are_deterministic(
        seed in 0u64..100,
        class in 0usize..5,
    ) {
        let (plan, _) = plan_for(class, seed);
        let a = run_observed(seed, Some(&plan));
        let b = run_observed(seed, Some(&plan));
        prop_assert_eq!(a.0, b.0, "recorder dump diverged");
        prop_assert_eq!(a.1, b.1, "anomaly list diverged");
    }
}
