//! Failover rig end-to-end: crash and partition scenarios preserve the
//! replication invariants and leave linearizable histories.

use rfp_chaos::{spawn_failover_kv, FailoverChaosConfig, FaultPlan};
use rfp_simnet::{SimSpan, SimTime, Simulation};
use rfp_workload::check_history;

const FAULT_AT: SimTime = SimTime::from_nanos(40_000);
const DETECT: SimSpan = SimSpan::micros(60);

fn cfg(seed: u64) -> FailoverChaosConfig {
    FailoverChaosConfig {
        seed,
        ..FailoverChaosConfig::default()
    }
}

#[test]
fn healthy_run_finishes_with_clean_invariants() {
    let mut sim = Simulation::new(41);
    let rig = spawn_failover_kv(&mut sim, &cfg(41), None, None);
    sim.run_for(SimSpan::millis(30));
    let cfg = cfg(41);
    assert_eq!(rig.state.done_clients.get(), cfg.clients);
    assert_eq!(rig.state.failed_calls.get(), 0);
    assert_eq!(rig.state.lost_acked.get(), 0);
    assert_eq!(rig.state.stale_reads.get(), 0);
    assert_eq!(rig.total_failovers(), 0);
    // Sync replication: everything acked is already on the backup.
    assert_eq!(
        rig.primary_role.shipped_entries.get(),
        rig.backup_role.applied.get()
    );
    assert!(rig.state.max_ops_per_key() <= 128, "history over capacity");
    check_history(&rig.state.history()).expect("healthy history must linearize");
}

#[test]
fn primary_crash_fails_over_without_losing_acked_writes() {
    let mut sim = Simulation::new(42);
    // Crash the primary permanently (downtime past the run window).
    let plan = FaultPlan::new(42).crash(FAULT_AT, SimSpan::millis(100), 0, true);
    let rig = spawn_failover_kv(&mut sim, &cfg(42), Some(&plan), Some(FAULT_AT + DETECT));
    sim.run_for(SimSpan::millis(40));
    let cfg = cfg(42);
    assert_eq!(rig.state.done_clients.get(), cfg.clients);
    assert_eq!(rig.state.lost_acked.get(), 0, "acked write lost");
    assert_eq!(rig.state.stale_reads.get(), 0, "stale read after failover");
    assert!(rig.total_failovers() >= 1, "nobody failed over");
    assert!(rig.state.promoted_at.get().is_some());
    let t = rig.max_failover_time().expect("failover was timed");
    assert!(t <= SimSpan::millis(5), "failover took {t:?}, budget 5ms");
    check_history(&rig.state.history()).expect("crash history must linearize");
}

#[test]
fn partition_without_promotion_costs_availability_not_consistency() {
    let mut sim = Simulation::new(43);
    // Cut both directions between client machine 2 and the primary for
    // a while; the backup stays standby (the primary is not dead).
    let span = SimSpan::micros(400);
    let plan = FaultPlan::new(43)
        .partition(FAULT_AT, span, 2, 0)
        .partition(FAULT_AT, span, 0, 2);
    let rig = spawn_failover_kv(&mut sim, &cfg(43), Some(&plan), None);
    sim.run_for(SimSpan::millis(40));
    let cfg = cfg(43);
    assert_eq!(rig.state.done_clients.get(), cfg.clients);
    assert_eq!(rig.state.lost_acked.get(), 0, "acked write lost");
    assert_eq!(
        rig.state.stale_reads.get(),
        0,
        "stale read during partition"
    );
    // Consistency holds even though calls may have failed and the
    // router may have probed the (unpromoted) backup.
    check_history(&rig.state.history()).expect("partition history must linearize");
}

#[test]
fn crash_runs_are_deterministic_per_seed() {
    let run = || {
        let mut sim = Simulation::new(44);
        let plan = FaultPlan::new(44).crash(FAULT_AT, SimSpan::millis(100), 0, true);
        let rig = spawn_failover_kv(&mut sim, &cfg(44), Some(&plan), Some(FAULT_AT + DETECT));
        sim.run_for(SimSpan::millis(40));
        (
            rig.state.completed.get(),
            rig.state.acked_puts.get(),
            rig.state.failed_calls.get(),
            rig.total_failovers(),
            rig.state.history().len(),
        )
    };
    assert_eq!(run(), run());
}
