//! Chaos-driven slot-isolation property for the pipelined client: under
//! torn-DMA and bit-flip fault windows — and across a warm server crash
//! — no pipelined call ever surfaces another slot's payload or a corrupt
//! one. Every batch's results must be byte-exact echoes of its requests,
//! whatever interleaving, refetching, or resubmission the faults force.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;

use rfp_chaos::{install, FaultPlan, InjectorSinks, Restart};
use rfp_core::{connect, serve_loop, IntegrityConfig, RfpClient, RfpConfig, RfpServerConn};
use rfp_rnic::{Cluster, ClusterProfile, ThreadCtx};
use rfp_simnet::{SimSpan, SimTime, Simulation};

struct Rig {
    sim: Simulation,
    cluster: Cluster,
    client: Rc<RfpClient>,
    client_thread: Rc<ThreadCtx>,
    conn: Rc<RfpServerConn>,
}

/// One client machine (0), one server machine (1), a `window`-slot
/// connection with the integrity layer on, and an echo serve loop.
fn rig(seed: u64, window: usize) -> Rig {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        window,
        enable_mode_switch: false,
        integrity: IntegrityConfig {
            enabled: true,
            ..IntegrityConfig::default()
        },
        ..RfpConfig::default()
    };
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let conn = Rc::new(conn);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::clone(&conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    Rig {
        sim,
        cluster,
        client: Rc::new(client),
        client_thread: cm.thread("client"),
        conn,
    }
}

/// Spawns the driving task: back-to-back pipelined batches of
/// per-request distinctive payloads, each batch's echoes checked
/// byte-exactly on completion. Returns the completed-batch counter.
fn spawn_batches(rig: &mut Rig, batch: usize) -> Rc<Cell<u64>> {
    let completed = Rc::new(Cell::new(0u64));
    let (done, client, ct) = (
        Rc::clone(&completed),
        Rc::clone(&rig.client),
        Rc::clone(&rig.client_thread),
    );
    rig.sim.spawn(async move {
        for round in 0u64.. {
            let reqs: Vec<Vec<u8>> = (0..batch)
                .map(|i| {
                    let len = 8 + ((round as usize + i * 37) % 200);
                    (0..len)
                        .map(|j| (round as u8) ^ (i as u8).wrapping_mul(17) ^ (j as u8))
                        .collect()
                })
                .collect();
            let outs = client.call_pipelined(&ct, &reqs).await;
            for (req, out) in reqs.iter().zip(&outs) {
                assert_eq!(
                    &out.data, req,
                    "round {round}: a slot surfaced foreign or corrupt bytes"
                );
            }
            done.set(done.get() + 1);
        }
    });
    completed
}

proptest! {
    /// Random torn-DMA and bit-flip windows on the server: every
    /// pipelined call still returns exactly its own echo (corrupt
    /// fetches are discarded and refetched, never surfaced; slots never
    /// cross), and the rig keeps making progress.
    #[test]
    fn pipelined_slots_stay_isolated_under_corruption(
        seed in 0u64..500,
        window_log2 in 1u32..5,
        p_torn in 0.05f64..0.35,
        p_flip in 0.05f64..0.35,
        torn_at_us in 5u64..80,
        flip_at_us in 5u64..80,
        width_us in 50u64..400,
    ) {
        let window = 1usize << window_log2;
        let mut r = rig(seed, window);
        let plan = FaultPlan::new(seed)
            .torn_dma(
                SimTime::from_nanos(torn_at_us * 1_000),
                SimSpan::micros(width_us),
                1,
                p_torn,
            )
            .bit_flip(
                SimTime::from_nanos(flip_at_us * 1_000),
                SimSpan::micros(width_us),
                1,
                p_flip,
            );
        install(&mut r.sim, &r.cluster, &plan, InjectorSinks::default());
        let completed = spawn_batches(&mut r, 2 * window);
        r.sim.run_for(SimSpan::micros(600));
        prop_assert!(completed.get() > 0, "no batch completed under faults");
    }
}

/// Deterministic companion: a warm server crash mid-stream (memory
/// survives, per-slot dedup state rebuilt by the restart hook). The
/// in-flight batch rides the errored completions out, resubmits, and
/// still surfaces byte-exact echoes; batches keep completing after the
/// restart.
#[test]
fn pipelined_batches_survive_a_warm_server_crash() {
    let seed = 21;
    let mut r = rig(seed, 8);
    let conn = Rc::clone(&r.conn);
    let sinks = InjectorSinks {
        on_restart: Some(Rc::new(move |_r: &Restart| conn.recover_after_restart())),
        ..InjectorSinks::default()
    };
    let plan =
        FaultPlan::new(seed).crash(SimTime::from_nanos(40_000), SimSpan::micros(80), 1, true);
    install(&mut r.sim, &r.cluster, &plan, InjectorSinks { ..sinks });
    let completed = spawn_batches(&mut r, 16);
    r.sim.run_for(SimSpan::micros(40));
    let before_crash = completed.get();
    r.sim.run_for(SimSpan::micros(960));
    let after = completed.get();
    assert!(
        after > before_crash,
        "no batch completed across the crash window: {before_crash} -> {after}"
    );
}
