//! Zero-cost-when-idle: an injector with nothing to do must be
//! *indistinguishable* — not just statistically, byte for byte.
//!
//! Property (ISSUE satellite): a run with an empty or never-firing
//! `FaultPlan` produces metrics CSV and trace output identical to a run
//! with no injector installed at all. This pins the design rule that
//! fault hooks are plain state reads and every `fault.*`/`recovery.*`
//! instrument is created lazily at event-fire time.

use proptest::prelude::*;

use rfp_chaos::{spawn_chaos_kv, ChaosConfig, FaultPlan};
use rfp_simnet::{SimSpan, SimTime, Simulation};

/// Runs the rig for `window` and returns `(metrics CSV, trace dump)`.
fn run_fingerprint(seed: u64, window: SimSpan, plan: Option<&FaultPlan>) -> (Vec<u8>, Vec<u8>) {
    let mut sim = Simulation::new(seed);
    let cfg = ChaosConfig {
        client_machines: 2,
        server_threads: 1,
        keys_per_client: 4,
        seed,
        ..ChaosConfig::default()
    };
    let rig = spawn_chaos_kv(&mut sim, &cfg, plan);
    sim.run_for(window);
    let mut csv = Vec::new();
    rig.registry
        .snapshot()
        .write_csv(&mut csv)
        .expect("write csv to vec");
    let mut trace = Vec::new();
    rig.trace.dump(&mut trace).expect("dump trace to vec");
    assert!(
        rig.state.completed.get() > 0,
        "fingerprint run must do real work"
    );
    (csv, trace)
}

proptest! {
    #[test]
    fn empty_plan_is_byte_identical_to_no_injector(seed in 0u64..1_000) {
        let window = SimSpan::micros(400);
        let bare = run_fingerprint(seed, window, None);
        let idle = run_fingerprint(seed, window, Some(&FaultPlan::new(seed)));
        prop_assert_eq!(&bare.0, &idle.0, "metrics CSV diverged");
        prop_assert_eq!(&bare.1, &idle.1, "trace diverged");
    }

    #[test]
    fn never_firing_plan_is_byte_identical_to_no_injector(
        seed in 0u64..1_000,
        // Events strictly beyond the run window: scheduled, spawned,
        // never fired.
        offset_us in 1_000u64..50_000,
    ) {
        let window = SimSpan::micros(400);
        let at = SimTime::from_nanos(window.as_nanos() + offset_us * 1_000);
        let plan = FaultPlan::new(seed)
            .loss_burst(at, SimSpan::micros(50), 1, 0.3)
            .link_degrade(at, SimSpan::micros(50), 4.0)
            .straggler(at, SimSpan::micros(50), 0, 3.0)
            .qp_error(at, 0)
            .crash(at, SimSpan::micros(100), 0, false)
            .partition(at, SimSpan::micros(50), 1, 0);
        let bare = run_fingerprint(seed, window, None);
        let armed = run_fingerprint(seed, window, Some(&plan));
        prop_assert_eq!(&bare.0, &armed.0, "metrics CSV diverged");
        prop_assert_eq!(&bare.1, &armed.1, "trace diverged");
    }
}
