//! Chaos-driven integrity property: under scheduled torn-DMA and
//! bit-flip fault windows, no `Ok` call ever surfaces a payload
//! differing from what the server wrote.
//!
//! The rig's ledgers make corruption observable without instrumentation
//! in the store itself: a corrupt GET value either fails to parse (the
//! client loop panics), parses to a version older than the acknowledged
//! one (`lost_acked`), or predates the epoch floor (`stale_reads`). A
//! corrupt PUT acknowledgement would desynchronise the ledger the same
//! way on the next GET.

use proptest::prelude::*;

use rfp_chaos::{spawn_chaos_kv, ChaosConfig, FaultPlan};
use rfp_core::IntegrityConfig;
use rfp_simnet::{SimSpan, SimTime, Simulation};

fn integrity_rig_cfg(seed: u64) -> ChaosConfig {
    ChaosConfig {
        client_machines: 2,
        server_threads: 1,
        keys_per_client: 4,
        integrity: IntegrityConfig {
            enabled: true,
            ..IntegrityConfig::default()
        },
        seed,
        ..ChaosConfig::default()
    }
}

proptest! {
    /// Random fault windows, random probabilities: the invariant
    /// counters stay at zero and the rig keeps making progress.
    #[test]
    fn no_ok_call_surfaces_corrupt_data(
        seed in 0u64..1_000,
        p_torn in 0.01f64..0.3,
        p_flip in 0.01f64..0.3,
        torn_at_us in 20u64..200,
        flip_at_us in 20u64..200,
        width_us in 50u64..400,
    ) {
        let mut sim = Simulation::new(seed);
        let cfg = integrity_rig_cfg(seed);
        let plan = FaultPlan::new(seed)
            .torn_dma(
                SimTime::from_nanos(torn_at_us * 1_000),
                SimSpan::micros(width_us),
                0,
                p_torn,
            )
            .bit_flip(
                SimTime::from_nanos(flip_at_us * 1_000),
                SimSpan::micros(width_us),
                0,
                p_flip,
            );
        let rig = spawn_chaos_kv(&mut sim, &cfg, Some(&plan));
        sim.run_for(SimSpan::micros(600));
        prop_assert!(rig.state.completed.get() > 0, "rig made no progress");
        prop_assert_eq!(rig.state.lost_acked.get(), 0, "acked write lost");
        prop_assert_eq!(rig.state.stale_reads.get(), 0, "stale data surfaced");
    }
}

/// Deterministic companion pinning that the chaos plumbing actually
/// reaches the fault knobs: a heavy window must manufacture corrupt
/// fetches (visible in the lazy `fetch.*` counters) while both
/// invariants still hold.
#[test]
fn heavy_windows_fire_and_are_absorbed() {
    let seed = 77;
    let mut sim = Simulation::new(seed);
    let cfg = integrity_rig_cfg(seed);
    let plan = FaultPlan::new(seed)
        .torn_dma(SimTime::from_nanos(50_000), SimSpan::millis(2), 0, 0.3)
        .bit_flip(SimTime::from_nanos(50_000), SimSpan::millis(2), 0, 0.3);
    let rig = spawn_chaos_kv(&mut sim, &cfg, Some(&plan));
    sim.run_for(SimSpan::millis(3));

    assert!(rig.state.completed.get() > 0);
    assert_eq!(rig.state.lost_acked.get(), 0);
    assert_eq!(rig.state.stale_reads.get(), 0);
    let names = rig.registry.names();
    assert!(
        names.iter().any(|n| n == "fault.torn_dma"),
        "torn-DMA window never fired"
    );
    assert!(
        names.iter().any(|n| n == "fault.bit_flips"),
        "bit-flip window never fired"
    );
    assert!(
        names.iter().any(|n| n == "fetch.integrity_retries")
            && rig.registry.counter("fetch.integrity_retries").get() > 0,
        "no corrupt fetch was ever discarded under 30% fault windows"
    );
}
