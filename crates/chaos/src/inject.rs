//! Delivery of a [`FaultPlan`] into a running simulation.
//!
//! [`install`] spawns one controller task per scheduled event. Each
//! controller sleeps (idle — injection consumes no simulated CPU) until
//! its instant, flips the corresponding fault state in `rfp-rnic`
//! ([`MachineFaults`](rfp_rnic::MachineFaults) /
//! [`FabricFaults`](rfp_rnic::FabricFaults)), and reverts it when the
//! window closes. Crash events additionally drive the restart protocol:
//! cold restarts wipe every registered memory region, and an optional
//! restart hook lets the application layer rebuild its process state
//! (e.g. [`RfpServerConn::recover_after_restart`]
//! (rfp_core::RfpServerConn::recover_after_restart)) before the machine
//! comes back.
//!
//! All `fault.*` instruments and trace entries are created lazily at
//! fire time, so a plan whose events never fire inside the run window —
//! or an empty plan — leaves metrics and trace output byte-identical to
//! a run with no injector at all.

use std::rc::Rc;

use rfp_rnic::Cluster;
use rfp_simnet::{FlightRecorder, MetricsRegistry, Severity, SimTime, Simulation, TraceLog};

use crate::plan::{FaultKind, FaultPlan};

/// Details of one completed crash/restart cycle, passed to the restart
/// hook at the restart instant (while the machine is still marked
/// crashed, after a cold wipe has already zeroed registered memory).
#[derive(Clone, Copy, Debug)]
pub struct Restart {
    /// The machine that crashed.
    pub machine: usize,
    /// Whether registered memory survived.
    pub warm: bool,
    /// When the crash struck.
    pub crashed_at: SimTime,
    /// When the restart completes (the hook runs at this instant).
    pub restored_at: SimTime,
}

/// A hook invoked at each restart instant (see
/// [`InjectorSinks::on_restart`]).
pub type RestartHook = Rc<dyn Fn(&Restart)>;

/// Telemetry sinks and application hooks for an injector.
#[derive(Clone, Default)]
pub struct InjectorSinks {
    /// Receives `fault.*` counters (created lazily at fire time).
    pub registry: Option<MetricsRegistry>,
    /// Receives `chaos.fault` entries (one per state change).
    pub trace: Option<TraceLog>,
    /// Runs at each restart instant, before the machine is unmarked.
    pub on_restart: Option<RestartHook>,
    /// Receives one `chaos.*` root event per injected fault window —
    /// the cause-chain anchor a dump-on-anomaly bundle points back to.
    pub recorder: Option<FlightRecorder>,
}

impl std::fmt::Debug for InjectorSinks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InjectorSinks")
            .field("registry", &self.registry.is_some())
            .field("trace", &self.trace.is_some())
            .field("on_restart", &self.on_restart.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl InjectorSinks {
    fn count(&self, name: &str) {
        if let Some(reg) = &self.registry {
            reg.counter(name).incr();
        }
    }

    fn note(&self, at: SimTime, message: String) {
        if let Some(trace) = &self.trace {
            trace.record(at, "chaos.fault", message);
        }
    }

    fn flight(&self, at: SimTime, kind: &'static str, detail: String) {
        if let Some(rec) = &self.recorder {
            rec.record(at, None, 0, Severity::Warn, kind, detail);
        }
    }
}

/// Spawns the plan's controller tasks into `sim`.
///
/// Overlapping windows of the *same* fault kind on the same target are
/// not composed — the later revert wins — so plans should keep same-kind
/// windows disjoint (the builders in [`FaultPlan`] make that easy to
/// arrange).
///
/// # Panics
///
/// Panics if an event targets a machine index outside the cluster.
pub fn install(sim: &mut Simulation, cluster: &Cluster, plan: &FaultPlan, sinks: InjectorSinks) {
    for event in plan.events() {
        if let FaultKind::LossBurst { machine, .. }
        | FaultKind::Straggler { machine, .. }
        | FaultKind::QpError { machine }
        | FaultKind::Crash { machine, .. }
        | FaultKind::TornDma { machine, .. }
        | FaultKind::BitFlip { machine, .. }
        | FaultKind::SlowLink { machine, .. }
        | FaultKind::FlakyLink { machine, .. }
        | FaultKind::SlowServer { machine, .. } = &event.kind
        {
            assert!(
                *machine < cluster.len(),
                "fault targets machine {machine} outside the {}-machine cluster",
                cluster.len()
            );
        }
        if let FaultKind::Partition { from, to } = &event.kind {
            assert!(
                *from < cluster.len() && *to < cluster.len(),
                "partition {from} -> {to} exceeds the {}-machine cluster",
                cluster.len()
            );
            assert_ne!(from, to, "a machine cannot be partitioned from itself");
        }
    }

    for event in plan.events().iter().cloned() {
        let handle = cluster.handle().clone();
        let fabric = Rc::clone(cluster.fabric());
        let target = match &event.kind {
            FaultKind::LossBurst { machine, .. }
            | FaultKind::Straggler { machine, .. }
            | FaultKind::QpError { machine }
            | FaultKind::Crash { machine, .. }
            | FaultKind::TornDma { machine, .. }
            | FaultKind::BitFlip { machine, .. }
            | FaultKind::SlowLink { machine, .. }
            | FaultKind::FlakyLink { machine, .. }
            | FaultKind::SlowServer { machine, .. } => Some(cluster.machine(*machine)),
            FaultKind::Partition { from, .. } => Some(cluster.machine(*from)),
            FaultKind::LinkDegrade { .. } => None,
        };
        let sinks = sinks.clone();
        sim.spawn(async move {
            let now = handle.now();
            if event.at > now {
                handle.sleep(event.at.since(now)).await;
            }
            let at = handle.now();
            match event.kind {
                FaultKind::LossBurst { machine, loss } => {
                    let m = target.expect("loss burst has a target");
                    m.faults().set_extra_loss(loss);
                    sinks.count("fault.loss_bursts");
                    sinks.flight(
                        at,
                        "chaos.loss_burst",
                        format!("machine {machine}: loss burst {loss:.3}"),
                    );
                    sinks.note(at, format!("machine {machine}: loss burst {loss:.3}"));
                    handle.sleep(event.duration).await;
                    m.faults().set_extra_loss(0.0);
                    sinks.note(handle.now(), format!("machine {machine}: loss burst over"));
                }
                FaultKind::LinkDegrade { factor } => {
                    fabric.set_link_factor(factor);
                    sinks.count("fault.link_degrades");
                    sinks.flight(
                        at,
                        "chaos.link_degrade",
                        format!("fabric: link degraded {factor:.2}x"),
                    );
                    sinks.note(at, format!("fabric: link degraded {factor:.2}x"));
                    handle.sleep(event.duration).await;
                    fabric.set_link_factor(1.0);
                    sinks.note(handle.now(), "fabric: link restored".to_string());
                }
                FaultKind::Straggler { machine, factor } => {
                    let m = target.expect("straggler has a target");
                    m.faults().set_cpu_factor(factor);
                    sinks.count("fault.stragglers");
                    sinks.flight(
                        at,
                        "chaos.straggler",
                        format!("machine {machine}: straggling {factor:.2}x"),
                    );
                    sinks.note(at, format!("machine {machine}: straggling {factor:.2}x"));
                    handle.sleep(event.duration).await;
                    m.faults().set_cpu_factor(1.0);
                    sinks.note(handle.now(), format!("machine {machine}: straggler over"));
                }
                FaultKind::TornDma { machine, p } => {
                    let m = target.expect("torn dma has a target");
                    m.faults().set_torn_dma(p);
                    sinks.count("fault.torn_dma");
                    sinks.flight(
                        at,
                        "chaos.torn_dma",
                        format!("machine {machine}: torn-DMA window p={p:.3}"),
                    );
                    sinks.note(at, format!("machine {machine}: torn-DMA window p={p:.3}"));
                    handle.sleep(event.duration).await;
                    m.faults().set_torn_dma(0.0);
                    sinks.note(handle.now(), format!("machine {machine}: torn-DMA over"));
                }
                FaultKind::BitFlip { machine, p } => {
                    let m = target.expect("bit flip has a target");
                    m.faults().set_bitflip(p);
                    sinks.count("fault.bit_flips");
                    sinks.flight(
                        at,
                        "chaos.bit_flip",
                        format!("machine {machine}: bit-flip window p={p:.3}"),
                    );
                    sinks.note(at, format!("machine {machine}: bit-flip window p={p:.3}"));
                    handle.sleep(event.duration).await;
                    m.faults().set_bitflip(0.0);
                    sinks.note(handle.now(), format!("machine {machine}: bit-flip over"));
                }
                FaultKind::SlowLink { machine, lag_ns } => {
                    let m = target.expect("slow link has a target");
                    m.faults().set_wire_lag(lag_ns);
                    sinks.count("fault.slow_links");
                    sinks.flight(
                        at,
                        "chaos.slow_link",
                        format!("machine {machine}: slow link +{lag_ns}ns/leg"),
                    );
                    sinks.note(at, format!("machine {machine}: slow link +{lag_ns}ns/leg"));
                    handle.sleep(event.duration).await;
                    m.faults().set_wire_lag(0);
                    sinks.note(handle.now(), format!("machine {machine}: slow link over"));
                }
                FaultKind::FlakyLink { machine, loss } => {
                    let m = target.expect("flaky link has a target");
                    m.faults().set_extra_loss(loss);
                    sinks.count("fault.flaky_links");
                    sinks.flight(
                        at,
                        "chaos.flaky_link",
                        format!("machine {machine}: flaky link loss {loss:.3}"),
                    );
                    sinks.note(at, format!("machine {machine}: flaky link loss {loss:.3}"));
                    handle.sleep(event.duration).await;
                    m.faults().set_extra_loss(0.0);
                    sinks.note(handle.now(), format!("machine {machine}: flaky link over"));
                }
                FaultKind::SlowServer { machine, factor } => {
                    let m = target.expect("slow server has a target");
                    m.faults().set_cpu_factor(factor);
                    sinks.count("fault.slow_servers");
                    sinks.flight(
                        at,
                        "chaos.slow_server",
                        format!("machine {machine}: serve loop slowed {factor:.2}x"),
                    );
                    sinks.note(
                        at,
                        format!("machine {machine}: serve loop slowed {factor:.2}x"),
                    );
                    handle.sleep(event.duration).await;
                    m.faults().set_cpu_factor(1.0);
                    sinks.note(handle.now(), format!("machine {machine}: slow server over"));
                }
                FaultKind::Partition { from, to } => {
                    let m = target.expect("partition has a source");
                    m.faults().block_to(to);
                    sinks.count("fault.partition");
                    sinks.flight(
                        at,
                        "chaos.partition",
                        format!("partition: {from} -> {to} cut (one direction)"),
                    );
                    sinks.note(at, format!("partition: {from} -> {to} cut"));
                    handle.sleep(event.duration).await;
                    m.faults().unblock_to(to);
                    sinks.note(handle.now(), format!("partition: {from} -> {to} healed"));
                }
                FaultKind::QpError { machine } => {
                    let m = target.expect("qp error has a target");
                    m.faults().bump_qp_epoch();
                    sinks.count("fault.qp_errors");
                    sinks.flight(
                        at,
                        "chaos.qp_error",
                        format!("machine {machine}: QPs transitioned to error"),
                    );
                    sinks.note(at, format!("machine {machine}: QPs transitioned to error"));
                }
                FaultKind::Crash { machine, warm } => {
                    let m = target.expect("crash has a target");
                    m.faults().set_crashed(true);
                    sinks.count(if warm {
                        "fault.crashes_warm"
                    } else {
                        "fault.crashes_cold"
                    });
                    sinks.note(
                        at,
                        format!(
                            "machine {machine}: crashed ({})",
                            if warm { "warm" } else { "cold" }
                        ),
                    );
                    sinks.flight(
                        at,
                        "chaos.crash",
                        format!(
                            "machine {machine}: crashed ({})",
                            if warm { "warm" } else { "cold" }
                        ),
                    );
                    handle.sleep(event.duration).await;
                    if !warm {
                        // Registered memory did not survive: the machine
                        // comes back with zeroed regions.
                        m.wipe_memory();
                    }
                    let restart = Restart {
                        machine,
                        warm,
                        crashed_at: at,
                        restored_at: handle.now(),
                    };
                    if let Some(hook) = &sinks.on_restart {
                        hook(&restart);
                    }
                    m.faults().set_crashed(false);
                    sinks.note(
                        restart.restored_at,
                        format!(
                            "machine {machine}: restarted ({})",
                            if warm { "warm" } else { "cold" }
                        ),
                    );
                }
            }
        });
    }
}
