//! Deterministic fault injection for the RFP simulator.
//!
//! The paper evaluates RFP on a healthy cluster; this crate supplies the
//! adversarial half of the story. A [`FaultPlan`] schedules faults at
//! simulated instants — NIC loss bursts, fabric-wide link degradation,
//! straggler cores, QP error transitions, and server crashes with warm
//! or cold restarts — and [`install`] (or the bundled
//! [`spawn_chaos_kv`] rig) delivers them into a running simulation.
//! Because the simulator is single-threaded over a virtual clock, every
//! run is exactly reproducible from `(plan, seed)`: a recovery bug found
//! under chaos replays under a debugger, fault for fault.
//!
//! The rig in [`harness`] drives a Jakiro-style KV store through
//! [`RfpClient::call_with_recovery`](rfp_core::RfpClient::call_with_recovery)
//! and checks the recovery invariants online (no acked write lost, no
//! stale data after a cold wipe) — see `cargo run -p rfp-bench --bin
//! chaos` for the scenario sweep.

mod failover;
mod grayfail;
mod harness;
mod inject;
mod plan;

pub use failover::{
    spawn_failover_kv, FailoverChaosConfig, FailoverKv, FailoverState, PROMOTED_EPOCH,
};
pub use grayfail::{spawn_grayfail_kv, GrayChaosConfig, GrayKv, GrayState};
pub use harness::{spawn_chaos_kv, ChaosConfig, ChaosKv, ChaosState};
pub use inject::{install, InjectorSinks, Restart, RestartHook};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
