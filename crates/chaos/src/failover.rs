//! A replicated key-value rig built for failover experiments.
//!
//! [`spawn_failover_kv`] assembles the primary/backup pair from
//! `rfp-kvstore`'s [`replica`](rfp_kvstore::replica) module — machine 0
//! is the primary, machine 1 the standby backup fed by the primary's
//! replication log, machines `2..` run clients — and routes every
//! client call through an [`rfp_core::ReplicaClient`], so a dead or
//! fenced primary re-homes the client onto the backup automatically.
//!
//! The rig records three layers of evidence per run:
//!
//! * **online invariant counters** — a GET that observes a version
//!   older than an already-acknowledged PUT of the same key books
//!   `lost_acked`; one that runs *backwards* relative to a version some
//!   earlier-completed read already observed books `stale_reads`
//!   (the deposed-primary signature). Both compare against snapshots
//!   taken at call *start*, so a read racing a concurrent write is
//!   never a false positive;
//! * **a full operation history** — every call becomes a
//!   [`HistEntry`]; calls that exhausted their budget stay *pending*
//!   (they may or may not have taken effect), exactly what
//!   [`rfp_workload::check_history`] is built to adjudicate;
//! * **failover timing** — the span from the first fault instant to
//!   each client's next completed call, in the `failover.time`
//!   histogram.
//!
//! Every PUT value is `client << 32 | version` with a per-client
//! monotone version, so write values are globally unique (the checker's
//! convention) and each key has exactly one writer while *reads* roam
//! the whole keyspace — cross-client reads are what make the surviving
//! histories worth checking.
//!
//! Promotion is the experiment's failure detector: the caller schedules
//! it (`promote_at`) only for scenarios where the primary really is
//! dead. Partition scenarios deliberately leave the backup unpromoted —
//! clients bounce off the standby and come back once the link heals;
//! that costs availability, never consistency.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_core::{
    connect, FailoverConfig, IntegrityConfig, OverloadConfig, ReplicaClient, RfpClient, RfpConfig,
    RfpServerConn,
};
use rfp_kvstore::replica::{
    backup_serve_loop, primary_serve_loop, BackupRole, PrimaryRole, ReplicationConfig,
};
use rfp_kvstore::{KvRequest, KvResponse, Partition};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{
    derive_seed, FlightRecorder, HealthHub, MetricsRegistry, SimSpan, SimTime, Simulation,
    SpanRecorder, TraceLog,
};
use rfp_workload::{HistEntry, RegOp};

use crate::harness::rig_rfp_cfg;
use crate::inject::{install, InjectorSinks, Restart};
use crate::plan::FaultPlan;

/// The epoch a promoted backup fences at (the rig promotes at most
/// once per run).
pub const PROMOTED_EPOCH: u16 = 1;

/// Sizing and tuning of the failover rig.
#[derive(Clone, Debug)]
pub struct FailoverChaosConfig {
    /// Client machines (one client thread each), on machines `2..`.
    pub clients: usize,
    /// Keys *written* per client (reads roam every client's keys).
    pub keys_per_client: usize,
    /// Operations each client issues before stopping. Bounded so the
    /// per-key histories stay inside the checker's search capacity.
    pub ops_per_client: usize,
    /// Fraction of operations that are PUTs.
    pub put_ratio: f64,
    /// Primary-side replication tuning (the default turns it on; a
    /// replication-off rig is the tax baseline, not a failover study).
    pub replication: ReplicationConfig,
    /// Client-side failover policy (retry budget per replica, maximum
    /// re-homings per call).
    pub failover: FailoverConfig,
    /// Cluster timing profile.
    pub profile: ClusterProfile,
    /// Master seed for workloads and recovery jitter.
    pub seed: u64,
}

impl Default for FailoverChaosConfig {
    fn default() -> Self {
        FailoverChaosConfig {
            clients: 3,
            keys_per_client: 4,
            ops_per_client: 60,
            put_ratio: 0.5,
            replication: ReplicationConfig {
                enabled: true,
                ..ReplicationConfig::default()
            },
            // A short per-replica retry budget: the router should stop
            // flogging a dead primary and re-home within a bounded
            // handful of attempts, not ride out the full single-server
            // recovery schedule first.
            failover: FailoverConfig {
                recovery: rfp_core::RecoveryConfig {
                    retry: rfp_simnet::RetryPolicy::exponential(
                        4,
                        SimSpan::micros(10),
                        SimSpan::micros(200),
                        0.2,
                    ),
                    ..rfp_core::RecoveryConfig::default()
                },
                max_failovers: 4,
            },
            profile: ClusterProfile::paper_testbed(),
            seed: 11,
        }
    }
}

/// Shared outcome state, updated online by every client loop.
pub struct FailoverState {
    /// Completed calls (all kinds).
    pub completed: Cell<u64>,
    /// Acknowledged PUTs.
    pub acked_puts: Cell<u64>,
    /// Calls that exhausted the router's whole failover budget.
    pub failed_calls: Cell<u64>,
    /// Acked-write losses: a GET observed `NotFound` or an older
    /// version for a key whose newer PUT was acked before the GET began.
    pub lost_acked: Cell<u64>,
    /// Stale reads: a GET observed a version older than one some
    /// earlier-*completed* read had already seen at the GET's start.
    pub stale_reads: Cell<u64>,
    /// GETs answered `NotFound`.
    pub not_found: Cell<u64>,
    /// Clients that finished their op budget.
    pub done_clients: Cell<usize>,
    /// When the backup was promoted, if it was.
    pub promoted_at: Cell<Option<SimTime>>,
    /// key id → value of the last acked PUT (single writer per key and
    /// per-client-monotone versions make the max the latest).
    acked: RefCell<HashMap<u64, u64>>,
    /// key id → newest value any completed read has observed.
    observed: RefCell<HashMap<u64, u64>>,
    /// Full operation history, in completion/abandonment order.
    history: RefCell<Vec<HistEntry>>,
    /// Per-client crash instant awaiting the first completed call.
    recovering: Vec<Cell<Option<SimTime>>>,
}

impl FailoverState {
    /// The recorded history (for [`rfp_workload::check_history`]).
    pub fn history(&self) -> Vec<HistEntry> {
        self.history.borrow().clone()
    }

    /// Largest number of operations landed on any single key.
    pub fn max_ops_per_key(&self) -> usize {
        let mut per_key: HashMap<u64, usize> = HashMap::new();
        for e in self.history.borrow().iter() {
            *per_key.entry(e.key).or_default() += 1;
        }
        per_key.values().copied().max().unwrap_or(0)
    }
}

/// A running failover rig.
pub struct FailoverKv {
    /// The simulated cluster (0 = primary, 1 = backup, `2..` clients).
    pub cluster: Cluster,
    /// Unified instruments (`rfp.client.*`, `fault.*`, `recovery.*`,
    /// `failover.time`).
    pub registry: MetricsRegistry,
    /// Shared trace.
    pub trace: TraceLog,
    /// Request-lifecycle spans.
    pub spans: SpanRecorder,
    /// Flight recorder: `chaos.*` fault roots and the clients'
    /// `recovery.*` reaction chains (`recovery.failover` among them).
    pub recorder: FlightRecorder,
    /// Rolling per-connection health (keyed `client * 2 + replica`).
    pub health: HealthHub,
    /// Shared outcome state.
    pub state: Rc<FailoverState>,
    /// One router per client, in machine order.
    pub routers: Vec<Rc<ReplicaClient>>,
    /// Primary-side replication bookkeeping.
    pub primary_role: Rc<PrimaryRole>,
    /// Backup-side replication bookkeeping.
    pub backup_role: Rc<BackupRole>,
    /// The primary's store.
    pub primary_part: Rc<RefCell<Partition>>,
    /// The backup's store.
    pub backup_part: Rc<RefCell<Partition>>,
}

impl FailoverKv {
    /// Total replica re-homings across all clients.
    pub fn total_failovers(&self) -> u64 {
        self.routers.iter().map(|r| r.failovers()).sum()
    }

    /// Maximum observed client failover time, if any fault was timed.
    pub fn max_failover_time(&self) -> Option<SimSpan> {
        if !self.registry.names().iter().any(|n| n == "failover.time") {
            return None;
        }
        self.registry.histogram("failover.time").max()
    }
}

/// Spawns the rig; pass a [`FaultPlan`] to install its injector and
/// `promote_at` to schedule the failure detector's promotion of the
/// backup (crash scenarios only — a partitioned primary is not dead).
pub fn spawn_failover_kv(
    sim: &mut Simulation,
    cfg: &FailoverChaosConfig,
    plan: Option<&FaultPlan>,
    promote_at: Option<SimTime>,
) -> FailoverKv {
    assert!(cfg.clients > 0, "rig needs at least one client");
    assert!(cfg.keys_per_client > 0, "rig needs at least one key");
    let cluster = Cluster::new(sim, cfg.profile.clone(), 2 + cfg.clients);
    let (primary_m, backup_m) = (cluster.machine(0), cluster.machine(1));
    let registry = MetricsRegistry::new();
    cluster.attach_metrics(&registry);
    let trace = TraceLog::new(64 * 1024);
    let spans = SpanRecorder::new(1024);
    let recorder = FlightRecorder::new(64 * 1024);
    let health = HealthHub::default();
    cluster.attach_recorder(&recorder);

    let partition_cap = (cfg.clients * cfg.keys_per_client * 2).max(64);
    let primary_part = Rc::new(RefCell::new(Partition::new(partition_cap)));
    let backup_part = Rc::new(RefCell::new(Partition::new(partition_cap)));
    let primary_role = Rc::new(PrimaryRole::default());
    let backup_role = Rc::new(BackupRole::default());

    let state = Rc::new(FailoverState {
        completed: Cell::new(0),
        acked_puts: Cell::new(0),
        failed_calls: Cell::new(0),
        lost_acked: Cell::new(0),
        stale_reads: Cell::new(0),
        not_found: Cell::new(0),
        done_clients: Cell::new(0),
        promoted_at: Cell::new(None),
        acked: RefCell::new(HashMap::new()),
        observed: RefCell::new(HashMap::new()),
        history: RefCell::new(Vec::new()),
        recovering: (0..cfg.clients).map(|_| Cell::new(None)).collect(),
    });

    // The dedicated replication link, primary -> backup. Plain RFP: the
    // log channel is deliberately outside the client-facing epoch fence
    // (see the `replica` module docs).
    let (ship, repl_conn) = connect(
        &primary_m,
        &backup_m,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig {
            enable_mode_switch: false,
            ..RfpConfig::default()
        },
    );
    ship.set_reconnect(cluster.qp_factory(0, 1));

    let mut primary_conns: Vec<Rc<RfpServerConn>> = Vec::new();
    let mut backup_conns: Vec<Rc<RfpServerConn>> = Vec::new();
    let mut routers: Vec<Rc<ReplicaClient>> = Vec::new();
    let overload = OverloadConfig::default();
    let integrity = IntegrityConfig::default();

    for c in 0..cfg.clients {
        let client_m = cluster.machine(2 + c);
        let thread = client_m.thread(format!("failover-c{c}"));
        let mut replicas: Vec<Rc<RfpClient>> = Vec::new();
        for (replica, server_m) in [(0usize, &primary_m), (1usize, &backup_m)] {
            let (cl, sc) = connect(
                &client_m,
                server_m,
                cluster.qp(2 + c, replica),
                cluster.qp(replica, 2 + c),
                rig_rfp_cfg(
                    &registry,
                    &spans,
                    &trace,
                    &recorder,
                    &health,
                    &overload,
                    &integrity,
                    c * 2 + replica,
                ),
            );
            cl.set_reconnect(cluster.qp_factory(2 + c, replica));
            let sc = Rc::new(sc);
            if replica == 0 {
                primary_conns.push(sc);
            } else {
                backup_conns.push(sc);
            }
            replicas.push(Rc::new(cl));
        }
        let router = Rc::new(ReplicaClient::new(
            replicas,
            FailoverConfig {
                recovery: rfp_core::RecoveryConfig {
                    seed: derive_seed(cfg.seed, 0xFA11 + c as u64),
                    ..cfg.failover.recovery.clone()
                },
                ..cfg.failover.clone()
            },
        ));
        routers.push(Rc::clone(&router));

        let st = Rc::clone(&state);
        let reg = registry.clone();
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 1 + c as u64));
        let keys = cfg.keys_per_client;
        let total_keys = cfg.clients * cfg.keys_per_client;
        let ops = cfg.ops_per_client;
        let put_ratio = cfg.put_ratio;
        sim.spawn(async move {
            let mut version = 0u64;
            for _ in 0..ops {
                let is_put = rng.gen::<f64>() < put_ratio;
                // Writers own a disjoint key range; readers roam.
                let key_id = if is_put {
                    (c * keys + rng.gen_range(0..keys)) as u64
                } else {
                    rng.gen_range(0..total_keys) as u64
                };
                let key = format!("k{key_id}").into_bytes();
                let (req, value) = if is_put {
                    version += 1;
                    let value = ((c as u64) << 32) | version;
                    (
                        KvRequest::Put {
                            key: &key,
                            value: &value.to_le_bytes(),
                        }
                        .encode(),
                        Some(value),
                    )
                } else {
                    (KvRequest::Get { key: &key }.encode(), None)
                };
                // Invariant baselines snapshotted at call start: only
                // what was already settled *before* this op began can
                // convict the response.
                let acked_floor = st.acked.borrow().get(&key_id).copied();
                let observed_floor = st.observed.borrow().get(&key_id).copied();
                let start = thread.now().as_nanos();
                match router.call(&thread, &req).await {
                    Ok(out) => {
                        let end = thread.now().as_nanos();
                        st.completed.set(st.completed.get() + 1);
                        if let Some(crashed_at) = st.recovering[c].take() {
                            reg.histogram("failover.time")
                                .record(thread.now().since(crashed_at));
                        }
                        let resp = KvResponse::decode(&out.data).expect("server response");
                        let op = match (value, resp) {
                            (Some(v), KvResponse::Stored) => {
                                st.acked_puts.set(st.acked_puts.get() + 1);
                                st.acked.borrow_mut().insert(key_id, v);
                                RegOp::Write(v)
                            }
                            (None, KvResponse::Found(bytes)) => {
                                let raw: [u8; 8] =
                                    bytes.as_slice().try_into().expect("8-byte value");
                                let v = u64::from_le_bytes(raw);
                                if acked_floor.is_some_and(|floor| v < floor) {
                                    st.lost_acked.set(st.lost_acked.get() + 1);
                                }
                                if observed_floor.is_some_and(|floor| v < floor) {
                                    st.stale_reads.set(st.stale_reads.get() + 1);
                                }
                                let mut obs = st.observed.borrow_mut();
                                let slot = obs.entry(key_id).or_insert(v);
                                *slot = (*slot).max(v);
                                RegOp::Read(Some(v))
                            }
                            (None, KvResponse::NotFound) => {
                                st.not_found.set(st.not_found.get() + 1);
                                if acked_floor.is_some() {
                                    st.lost_acked.set(st.lost_acked.get() + 1);
                                }
                                RegOp::Read(None)
                            }
                            (_, other) => panic!("unexpected response {other:?}"),
                        };
                        st.history.borrow_mut().push(HistEntry {
                            key: key_id,
                            client: c as u32,
                            start,
                            end: Some(end),
                            op,
                        });
                    }
                    Err(_) => {
                        st.failed_calls.set(st.failed_calls.get() + 1);
                        // A write that exhausted its budget may still
                        // have taken effect: record it pending. A
                        // failed read observed nothing — drop it.
                        if let Some(v) = value {
                            st.history.borrow_mut().push(HistEntry {
                                key: key_id,
                                client: c as u32,
                                start,
                                end: None,
                                op: RegOp::Write(v),
                            });
                        }
                    }
                }
            }
            st.done_clients.set(st.done_clients.get() + 1);
        });
    }

    // The primary and its standby.
    sim.spawn(primary_serve_loop(
        primary_m.thread("failover-primary"),
        primary_conns.clone(),
        Rc::clone(&primary_part),
        Rc::new(ship),
        cfg.replication.clone(),
        Rc::clone(&primary_role),
        SimSpan::nanos(100),
    ));
    sim.spawn(backup_serve_loop(
        backup_m.thread("failover-backup"),
        Rc::new(repl_conn),
        backup_conns.clone(),
        Rc::clone(&backup_part),
        Rc::clone(&backup_role),
        SimSpan::nanos(100),
    ));

    // The failure detector: promote the backup into the next epoch at a
    // fixed (deterministic) instant after the crash.
    if let Some(at) = promote_at {
        let handle = cluster.handle().clone();
        let role = Rc::clone(&backup_role);
        let conns = backup_conns;
        let st = Rc::clone(&state);
        let tr = trace.clone();
        sim.spawn(async move {
            let now = handle.now();
            if at > now {
                handle.sleep(at.since(now)).await;
            }
            role.promote(&conns, PROMOTED_EPOCH);
            st.promoted_at.set(Some(handle.now()));
            tr.record(
                handle.now(),
                "chaos.fault",
                format!("backup promoted to epoch {PROMOTED_EPOCH}"),
            );
        });
    }

    // Mark every client as "recovering" at the first fault instant so
    // the failover.time histogram measures fault -> first completed
    // call. Injector goes in last, as in the chaos harness.
    if let Some(plan) = plan {
        if let Some(first_at) = plan.events().iter().map(|e| e.at).min() {
            let handle = cluster.handle().clone();
            let st = Rc::clone(&state);
            sim.spawn(async move {
                let now = handle.now();
                if first_at > now {
                    handle.sleep(first_at.since(now)).await;
                }
                let at = handle.now();
                for cell in &st.recovering {
                    cell.set(Some(at));
                }
            });
        }
        let hook_conns = primary_conns;
        install(
            sim,
            &cluster,
            plan,
            InjectorSinks {
                registry: Some(registry.clone()),
                trace: Some(trace.clone()),
                on_restart: Some(Rc::new(move |restart: &Restart| {
                    // A restarted ex-primary rebuilds its connection
                    // process state — but it is *deposed*: it comes
                    // back at its old epoch and the fence keeps it
                    // from serving promoted-era clients.
                    if restart.machine == 0 {
                        for conn in &hook_conns {
                            conn.recover_after_restart();
                        }
                    }
                })),
                recorder: Some(recorder.clone()),
            },
        );
    }

    FailoverKv {
        cluster,
        registry,
        trace,
        spans,
        recorder,
        health,
        state,
        routers,
        primary_role,
        backup_role,
        primary_part,
        backup_part,
    }
}
