//! A Jakiro-style key-value rig built for fault experiments.
//!
//! [`spawn_chaos_kv`] assembles the same shape as the paper's Jakiro —
//! one server machine running EREW-partitioned server threads, client
//! machines issuing routed requests over RFP — but with the fault-
//! tolerant client path: every call goes through
//! [`RfpClient::call_with_recovery`] with a QP-reconnect factory
//! installed, and every client keeps a **ledger** of acknowledged PUTs
//! so the harness can prove (or disprove) the recovery invariants:
//!
//! * **no acked write lost** — a GET must never observe a version older
//!   than the last acknowledged PUT of that key, and never `NotFound`
//!   for a key with an acknowledged PUT;
//! * **no stale data after a cold restart** — once registered memory is
//!   wiped, any pre-crash version surfacing again is corruption, not
//!   recovery.
//!
//! Keys are disjoint per client and values carry a per-client monotone
//! version number, so both invariants are checkable online without
//! coordination. Recovery time is measured per client as the span from
//! the crash instant to that client's first completed call afterwards
//! (`recovery.time` histogram).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_core::{
    connect, serve_loop, CoreSpec, FailureCause, IntegrityConfig, OverloadConfig, Reactor,
    ReactorConfig, ReactorPolicy, RecoveryConfig, RfpConfig, RfpServerConn, RfpTelemetry,
};
use rfp_kvstore::systems::apply_to_partition;
use rfp_kvstore::{partition_of, KvRequest, KvResponse, Partition};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{
    derive_seed, FlightRecorder, HealthHub, MetricsRegistry, SimSpan, SimTime, Simulation,
    SpanRecorder, TraceLog,
};

use crate::inject::{install, InjectorSinks, Restart};
use crate::plan::FaultPlan;

/// Sizing and tuning of the chaos rig.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Client machines (one client thread each).
    pub client_machines: usize,
    /// Server threads on machine 0, each owning one store partition.
    pub server_threads: usize,
    /// Distinct keys per client (disjoint across clients).
    pub keys_per_client: usize,
    /// Fraction of operations that are PUTs.
    pub put_ratio: f64,
    /// Client recovery policy (deadline, backoff, reconnect cost).
    pub recovery: RecoveryConfig,
    /// Server overload control (admission, shedding, credits). Off by
    /// default; when on, every recovery call is deadline-stamped and the
    /// server sheds or busy-rejects instead of queueing without bound.
    pub overload: OverloadConfig,
    /// End-to-end fetch integrity (CRC + generation + canary). Off by
    /// default; when on, every fetched response is verified and corrupt
    /// images are refetched instead of surfaced — required for rigs that
    /// schedule torn-DMA or bit-flip fault windows.
    pub integrity: IntegrityConfig,
    /// Cluster timing profile.
    pub profile: ClusterProfile,
    /// Master seed for workloads and recovery jitter.
    pub seed: u64,
    /// Run the server threads as one multi-core [`Reactor`] with work
    /// stealing instead of independent serve loops. Off by default (the
    /// independent loops are the configuration the determinism pins
    /// cover); the cores chaos tests turn it on to prove the recovery
    /// invariants hold while requests migrate between cores.
    pub reactor_steal: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            client_machines: 3,
            server_threads: 2,
            keys_per_client: 8,
            put_ratio: 0.5,
            recovery: RecoveryConfig::default(),
            overload: OverloadConfig::default(),
            integrity: IntegrityConfig::default(),
            profile: ClusterProfile::paper_testbed(),
            seed: 7,
            reactor_steal: false,
        }
    }
}

/// Per-client recovery bookkeeping.
struct Ledger {
    /// key → version of the last *acknowledged* PUT.
    acked: RefCell<HashMap<Vec<u8>, u64>>,
    /// Versions below this predate the last cold wipe: observing one is
    /// stale data, not recovery.
    epoch_floor: Cell<u64>,
    /// Last version issued by this client (monotone across restarts).
    next_version: Cell<u64>,
    /// Crash instant still awaiting this client's first completed call.
    recovering: Cell<Option<SimTime>>,
}

/// Shared outcome counters, updated online by every client loop.
pub struct ChaosState {
    /// Completed calls (all kinds).
    pub completed: Cell<u64>,
    /// Acknowledged PUTs.
    pub acked_puts: Cell<u64>,
    /// Calls that exhausted their recovery budget.
    pub failed_calls: Cell<u64>,
    /// Calls whose final failure was an overload rejection
    /// (`Busy`/`Shed`) rather than a fault — a subset of
    /// [`failed_calls`](ChaosState::failed_calls).
    pub rejected_calls: Cell<u64>,
    /// Acked-write losses observed: a GET returned `NotFound` or an
    /// older version for a key with an acknowledged newer PUT.
    pub lost_acked: Cell<u64>,
    /// Stale reads observed: a GET surfaced a version from before a
    /// cold wipe.
    pub stale_reads: Cell<u64>,
    /// GETs answered `NotFound` (legitimate after a cold restart).
    pub not_found: Cell<u64>,
    /// Crash/restart cycles delivered to the rig.
    pub restarts: Cell<u64>,
    ledgers: Vec<Rc<Ledger>>,
    partitions: Vec<Rc<RefCell<Partition>>>,
    partition_cap: usize,
    server_conns: RefCell<Vec<Rc<RfpServerConn>>>,
}

impl ChaosState {
    /// Applies the restart protocol for a server restart: rebuild each
    /// connection's process state from whatever survived in its buffers,
    /// and on a cold restart also reset the application store and the
    /// clients' expectations (the data is legitimately gone).
    fn on_server_restart(&self, restart: &Restart) {
        self.restarts.set(self.restarts.get() + 1);
        if !restart.warm {
            // The store lived in registered memory: wiped with it.
            for p in &self.partitions {
                *p.borrow_mut() = Partition::new(self.partition_cap);
            }
            for ledger in &self.ledgers {
                ledger.acked.borrow_mut().clear();
                // Versions strictly below the last issued one predate
                // the wipe. The last issued version itself is admitted:
                // it may belong to the in-flight PUT, which the client
                // legitimately resubmits (and re-commits) post-wipe.
                ledger.epoch_floor.set(ledger.next_version.get());
            }
        }
        for conn in self.server_conns.borrow().iter() {
            conn.recover_after_restart();
        }
        for ledger in &self.ledgers {
            // Only the earliest unrecovered crash is timed.
            if ledger.recovering.get().is_none() {
                ledger.recovering.set(Some(restart.crashed_at));
            }
        }
    }
}

/// A running chaos rig.
pub struct ChaosKv {
    /// The simulated cluster (machine 0 is the server).
    pub cluster: Cluster,
    /// Unified instruments: `nic.*`, `rfp.client.*`, and — only once
    /// faults actually fire — `fault.*` / `recovery.*`.
    pub registry: MetricsRegistry,
    /// Shared trace (`chaos.fault`, `rfp.recovery`, …).
    pub trace: TraceLog,
    /// Request-lifecycle spans of the RFP connections.
    pub spans: SpanRecorder,
    /// Always-on flight recorder: `chaos.*` fault roots, `nic.*` wire
    /// events, and the clients' `recovery.*` / `overload.*` /
    /// `integrity.*` reaction chains.
    pub recorder: FlightRecorder,
    /// Rolling per-connection health (one [`ConnHealth`]
    /// (rfp_simnet::ConnHealth) per client connection, keyed
    /// `client * server_threads + server_thread`).
    pub health: HealthHub,
    /// Shared outcome counters.
    pub state: Rc<ChaosState>,
    /// The multi-core serve reactor, present only when
    /// [`ChaosConfig::reactor_steal`] is on (per-core steal counters,
    /// skew report).
    pub reactor: Option<Reactor>,
}

impl ChaosKv {
    /// Maximum observed client recovery time, if any crash was timed.
    pub fn max_recovery_time(&self) -> Option<SimSpan> {
        // Existence check first: reading through `histogram()` would
        // *create* the instrument on a fault-free run.
        if !self.registry.names().iter().any(|n| n == "recovery.time") {
            return None;
        }
        self.registry.histogram("recovery.time").max()
    }
}

/// The RFP tuning the rig runs with: remote fetch only (the recovery
/// path does not interact with the hybrid switch), wired to the rig's
/// shared trace and registry.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rig_rfp_cfg(
    registry: &MetricsRegistry,
    spans: &SpanRecorder,
    trace: &TraceLog,
    recorder: &FlightRecorder,
    health: &HealthHub,
    overload: &OverloadConfig,
    integrity: &IntegrityConfig,
    idx: usize,
) -> RfpConfig {
    RfpConfig {
        enable_mode_switch: false,
        overload: OverloadConfig {
            // Decorrelate the per-connection backoff jitter streams.
            seed: derive_seed(overload.seed, idx as u64),
            ..overload.clone()
        },
        integrity: integrity.clone(),
        trace: Some(trace.clone()),
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: spans.clone(),
            prefix: format!("rfp.client.{idx}"),
            track: idx as u32,
        }),
        recorder: Some(recorder.clone()),
        health: Some(health.clone()),
        conn_id: idx as u32,
        ..RfpConfig::default()
    }
}

/// Spawns the rig; pass a [`FaultPlan`] to also install its injector.
///
/// Passing `None` and passing an empty (or never-firing) plan produce
/// byte-identical metrics and trace output — the property pinned by this
/// crate's determinism tests.
pub fn spawn_chaos_kv(
    sim: &mut Simulation,
    cfg: &ChaosConfig,
    plan: Option<&FaultPlan>,
) -> ChaosKv {
    assert!(cfg.client_machines > 0, "rig needs at least one client");
    assert!(
        cfg.server_threads > 0,
        "rig needs at least one server thread"
    );
    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let registry = MetricsRegistry::new();
    cluster.attach_metrics(&registry);
    let trace = TraceLog::new(64 * 1024);
    let spans = SpanRecorder::new(1024);
    let recorder = FlightRecorder::new(64 * 1024);
    let health = HealthHub::default();
    cluster.attach_recorder(&recorder);

    let partition_cap =
        (cfg.client_machines * cfg.keys_per_client * 2 / cfg.server_threads).max(64);
    let partitions: Vec<Rc<RefCell<Partition>>> = (0..cfg.server_threads)
        .map(|_| Rc::new(RefCell::new(Partition::new(partition_cap))))
        .collect();

    let state = Rc::new(ChaosState {
        completed: Cell::new(0),
        acked_puts: Cell::new(0),
        failed_calls: Cell::new(0),
        rejected_calls: Cell::new(0),
        lost_acked: Cell::new(0),
        stale_reads: Cell::new(0),
        not_found: Cell::new(0),
        restarts: Cell::new(0),
        ledgers: (0..cfg.client_machines)
            .map(|_| {
                Rc::new(Ledger {
                    acked: RefCell::new(HashMap::new()),
                    epoch_floor: Cell::new(0),
                    next_version: Cell::new(0),
                    recovering: Cell::new(None),
                })
            })
            .collect(),
        partitions: partitions.clone(),
        partition_cap,
        server_conns: RefCell::new(Vec::new()),
    });

    // Per server thread: the connections it polls.
    let mut server_conns: Vec<Vec<Rc<RfpServerConn>>> =
        (0..cfg.server_threads).map(|_| Vec::new()).collect();

    for c in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + c);
        let thread = client_m.thread(format!("chaos-c{c}"));
        // One connection per server thread: requests route to the
        // partition owner (EREW, as Jakiro does).
        let mut conns = Vec::with_capacity(cfg.server_threads);
        for (s, sconns) in server_conns.iter_mut().enumerate() {
            let (cl, sc) = connect(
                &client_m,
                &server_m,
                cluster.qp(1 + c, 0),
                cluster.qp(0, 1 + c),
                rig_rfp_cfg(
                    &registry,
                    &spans,
                    &trace,
                    &recorder,
                    &health,
                    &cfg.overload,
                    &cfg.integrity,
                    c * cfg.server_threads + s,
                ),
            );
            cl.set_reconnect(cluster.qp_factory(1 + c, 0));
            let sc = Rc::new(sc);
            state.server_conns.borrow_mut().push(Rc::clone(&sc));
            sconns.push(sc);
            conns.push(Rc::new(cl));
        }

        let ledger = Rc::clone(&state.ledgers[c]);
        let st = Rc::clone(&state);
        let reg = registry.clone();
        let recovery = RecoveryConfig {
            seed: derive_seed(cfg.seed, 0xC0DE + c as u64),
            ..cfg.recovery.clone()
        };
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 1 + c as u64));
        let keys = cfg.keys_per_client;
        let put_ratio = cfg.put_ratio;
        let nthreads = cfg.server_threads;
        sim.spawn(async move {
            loop {
                let k = rng.gen_range(0..keys);
                let key = format!("c{c}.k{k}").into_bytes();
                let is_put = rng.gen::<f64>() < put_ratio;
                let conn = &conns[partition_of(&key, nthreads)];
                let outcome = if is_put {
                    let version = ledger.next_version.get() + 1;
                    ledger.next_version.set(version);
                    let value = version.to_le_bytes();
                    let req = KvRequest::Put {
                        key: &key,
                        value: &value,
                    }
                    .encode();
                    conn.call_with_recovery(&thread, &req, &recovery)
                        .await
                        .map(|out| (out, Some(version)))
                } else {
                    let req = KvRequest::Get { key: &key }.encode();
                    conn.call_with_recovery(&thread, &req, &recovery)
                        .await
                        .map(|out| (out, None))
                };
                match outcome {
                    Ok((out, put_version)) => {
                        st.completed.set(st.completed.get() + 1);
                        if let Some(crashed_at) = ledger.recovering.take() {
                            reg.histogram("recovery.time")
                                .record(thread.now().since(crashed_at));
                        }
                        let resp = KvResponse::decode(&out.data).expect("server response");
                        match (put_version, resp) {
                            (Some(version), KvResponse::Stored) => {
                                st.acked_puts.set(st.acked_puts.get() + 1);
                                ledger.acked.borrow_mut().insert(key.clone(), version);
                            }
                            (None, KvResponse::Found(value)) => {
                                let bytes: [u8; 8] =
                                    value.as_slice().try_into().expect("8-byte version value");
                                let version = u64::from_le_bytes(bytes);
                                if version < ledger.epoch_floor.get() {
                                    st.stale_reads.set(st.stale_reads.get() + 1);
                                }
                                if let Some(&acked) = ledger.acked.borrow().get(&key) {
                                    if version < acked {
                                        st.lost_acked.set(st.lost_acked.get() + 1);
                                    }
                                }
                            }
                            (None, KvResponse::NotFound) => {
                                st.not_found.set(st.not_found.get() + 1);
                                if ledger.acked.borrow().contains_key(&key) {
                                    st.lost_acked.set(st.lost_acked.get() + 1);
                                }
                            }
                            (_, other) => panic!("unexpected response {other:?}"),
                        }
                    }
                    Err(e) => {
                        st.failed_calls.set(st.failed_calls.get() + 1);
                        if matches!(e.last, FailureCause::Rejected(_)) {
                            st.rejected_calls.set(st.rejected_calls.get() + 1);
                        }
                    }
                }
            }
        });
    }

    // The server threads: either independent serve loops (the classic
    // shape) or one multi-core reactor with work stealing across them.
    let reactor = if cfg.reactor_steal {
        let specs = server_conns
            .into_iter()
            .enumerate()
            .map(|(s, conns)| {
                let thread = server_m.thread(format!("chaos-s{s}"));
                let partition = Rc::clone(&partitions[s]);
                let handler = move |req: &[u8]| {
                    let parsed = KvRequest::decode(req).expect("client sent well-formed request");
                    let (resp, work) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
                    (resp.encode(), work)
                };
                CoreSpec {
                    thread,
                    conns,
                    handler: Box::new(handler),
                }
            })
            .collect();
        let policy = if cfg.overload.enabled {
            ReactorPolicy::Overload
        } else {
            ReactorPolicy::Plain
        };
        let reactor = Reactor::new(
            ReactorConfig {
                steal: true,
                registry: Some(registry.clone()),
                recorder: Some(recorder.clone()),
                ..ReactorConfig::default()
            },
            specs,
            SimSpan::nanos(100),
            policy,
        );
        for s in 0..cfg.server_threads {
            sim.spawn(reactor.run_core(s));
        }
        Some(reactor)
    } else {
        for (s, conns) in server_conns.into_iter().enumerate() {
            let thread = server_m.thread(format!("chaos-s{s}"));
            let partition = Rc::clone(&partitions[s]);
            let handler = move |req: &[u8]| {
                let parsed = KvRequest::decode(req).expect("client sent well-formed request");
                let (resp, work) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
                (resp.encode(), work)
            };
            sim.spawn(serve_loop(thread, conns, handler, SimSpan::nanos(100)));
        }
        None
    };

    // The injector goes in last so a plan that never fires leaves the
    // already-spawned workload tasks' scheduling untouched.
    if let Some(plan) = plan {
        let hook_state = Rc::clone(&state);
        install(
            sim,
            &cluster,
            plan,
            InjectorSinks {
                registry: Some(registry.clone()),
                trace: Some(trace.clone()),
                on_restart: Some(Rc::new(move |restart: &Restart| {
                    if restart.machine == 0 {
                        hook_state.on_server_restart(restart);
                    }
                })),
                recorder: Some(recorder.clone()),
            },
        );
    }

    ChaosKv {
        cluster,
        registry,
        trace,
        spans,
        recorder,
        health,
        state,
        reactor,
    }
}
