//! Fault plans: sim-time-scheduled, seeded fault schedules.
//!
//! A [`FaultPlan`] is pure data — a list of [`FaultEvent`]s pinned to
//! simulated instants. Determinism falls out of the simulator's design:
//! the same plan against the same seeded simulation replays the same
//! faults at the same virtual nanoseconds, so every recovery experiment
//! is exactly reproducible (and bisectable) from `(plan, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_simnet::{derive_seed, SimSpan, SimTime};

/// One class of injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Extra unreliable-transport loss probability on one machine's NIC
    /// for the event's duration (compounds with the profile's base
    /// loss); RC traffic instead pays probabilistic retransmission
    /// delays.
    LossBurst {
        /// Target machine index.
        machine: usize,
        /// Additional loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Fabric-wide propagation-delay multiplier for the duration
    /// (congestion, a flapping uplink).
    LinkDegrade {
        /// Propagation multiplier (`> 1` slows every link).
        factor: f64,
    },
    /// CPU-time multiplier on one machine's threads for the duration
    /// (a straggler core: thermal throttling, a noisy neighbour).
    Straggler {
        /// Target machine index.
        machine: usize,
        /// Busy-span multiplier (`> 1` slows the machine).
        factor: f64,
    },
    /// Instantaneously transitions every QP touching one machine to the
    /// error state (the verbs-level `IBV_QPS_ERR`); henceforth their
    /// verbs complete with `VerbError::QpError` until re-established.
    QpError {
        /// Target machine index.
        machine: usize,
    },
    /// Machine crash followed by a restart after the event's duration.
    /// Process state always dies; `warm` controls whether registered
    /// memory regions survive (warm) or come back zeroed (cold).
    Crash {
        /// Target machine index.
        machine: usize,
        /// Whether registered memory survives the restart.
        warm: bool,
    },
    /// Torn-DMA window on one machine: READs of its memory complete
    /// mid-write with probability `p`, returning a spliced old/new
    /// buffer (the non-atomic-DMA race the integrity layer detects).
    TornDma {
        /// Target machine index.
        machine: usize,
        /// Per-READ tear probability in `[0, 1]`.
        p: f64,
    },
    /// Memory bit-flip window on one machine: READs of its memory
    /// return an image with one flipped bit with probability `p`.
    BitFlip {
        /// Target machine index.
        machine: usize,
        /// Per-READ flip probability in `[0, 1]`.
        p: f64,
    },
    /// Fail-slow link on one machine: every wire leg touching it pays a
    /// jittered extra latency around `lag_ns` for the duration, with no
    /// error completion ever raised — the canonical gray failure a
    /// liveness-based failover cannot see.
    SlowLink {
        /// Target machine index.
        machine: usize,
        /// Mean added one-way latency in nanoseconds.
        lag_ns: u64,
    },
    /// Fail-slow lossy link on one machine: a *sub-recovery-threshold*
    /// loss rate (RC traffic pays retransmission delays, unreliable
    /// traffic drops) that degrades the tail without tripping any
    /// deadline-based failover. Mechanically a loss window like
    /// [`FaultKind::LossBurst`], but injected and accounted as its own
    /// gray class.
    FlakyLink {
        /// Target machine index.
        machine: usize,
        /// Additional loss probability in `[0, 1]` (keep it under the
        /// recovery threshold for a true gray failure).
        loss: f64,
    },
    /// Fail-slow server on one machine: serve-loop processing cost is
    /// multiplied for the duration (a core stuck at its lowest P-state,
    /// a runaway co-tenant). Mechanically a CPU-factor window like
    /// [`FaultKind::Straggler`], but injected and accounted as its own
    /// gray class.
    SlowServer {
        /// Target machine index.
        machine: usize,
        /// Serve-loop processing-cost multiplier (`> 1` slows).
        factor: f64,
    },
    /// Asymmetric network partition for the event's duration: traffic
    /// `from → to` is dropped while the reverse direction keeps
    /// flowing (a one-way link failure / bad switch rule). An op whose
    /// request leg is cut errors with no remote side effect; an op
    /// whose completion leg is cut may land its payload remotely and
    /// still error locally. Schedule both directions for a full cut.
    Partition {
        /// Machine whose outbound traffic is dropped.
        from: usize,
        /// Destination it can no longer reach.
        to: usize,
    },
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulated instant the fault strikes.
    pub at: SimTime,
    /// How long it lasts (crash: downtime before restart; `QpError`:
    /// ignored — the transition is instantaneous).
    pub duration: SimSpan,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed identifying this plan (stamped into telemetry; also the
    /// stream [`FaultPlan::random`] draws from).
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan. Injecting it is a no-op by construction — no
    /// controller tasks beyond the schedule itself, no instruments, no
    /// RNG draws — so runs with and without it are byte-identical.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Schedules an arbitrary event.
    pub fn push(mut self, at: SimTime, duration: SimSpan, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, duration, kind });
        self
    }

    /// Schedules a loss burst on `machine`.
    pub fn loss_burst(self, at: SimTime, duration: SimSpan, machine: usize, loss: f64) -> Self {
        self.push(at, duration, FaultKind::LossBurst { machine, loss })
    }

    /// Schedules a fabric-wide link degradation.
    pub fn link_degrade(self, at: SimTime, duration: SimSpan, factor: f64) -> Self {
        self.push(at, duration, FaultKind::LinkDegrade { factor })
    }

    /// Schedules a straggler window on `machine`.
    pub fn straggler(self, at: SimTime, duration: SimSpan, machine: usize, factor: f64) -> Self {
        self.push(at, duration, FaultKind::Straggler { machine, factor })
    }

    /// Schedules a QP-error transition on `machine`.
    pub fn qp_error(self, at: SimTime, machine: usize) -> Self {
        self.push(at, SimSpan::ZERO, FaultKind::QpError { machine })
    }

    /// Schedules a crash of `machine` restarting after `downtime`.
    pub fn crash(self, at: SimTime, downtime: SimSpan, machine: usize, warm: bool) -> Self {
        self.push(at, downtime, FaultKind::Crash { machine, warm })
    }

    /// Schedules a torn-DMA window on `machine`.
    pub fn torn_dma(self, at: SimTime, duration: SimSpan, machine: usize, p: f64) -> Self {
        self.push(at, duration, FaultKind::TornDma { machine, p })
    }

    /// Schedules a memory bit-flip window on `machine`.
    pub fn bit_flip(self, at: SimTime, duration: SimSpan, machine: usize, p: f64) -> Self {
        self.push(at, duration, FaultKind::BitFlip { machine, p })
    }

    /// Schedules a fail-slow link window on `machine`.
    pub fn slow_link(self, at: SimTime, duration: SimSpan, machine: usize, lag_ns: u64) -> Self {
        self.push(at, duration, FaultKind::SlowLink { machine, lag_ns })
    }

    /// Schedules a fail-slow flaky-link window on `machine`.
    pub fn flaky_link(self, at: SimTime, duration: SimSpan, machine: usize, loss: f64) -> Self {
        self.push(at, duration, FaultKind::FlakyLink { machine, loss })
    }

    /// Schedules a fail-slow server window on `machine`.
    pub fn slow_server(self, at: SimTime, duration: SimSpan, machine: usize, factor: f64) -> Self {
        self.push(at, duration, FaultKind::SlowServer { machine, factor })
    }

    /// Schedules an asymmetric partition dropping `from → to` traffic
    /// for `duration` (call twice, swapped, for a symmetric cut).
    pub fn partition(self, at: SimTime, duration: SimSpan, from: usize, to: usize) -> Self {
        self.push(at, duration, FaultKind::Partition { from, to })
    }

    /// Draws a mixed plan of `events` faults over `(start, horizon)`
    /// against machines `0..machines`, deterministically from the seed.
    /// Crashes always target machine 0 (the conventional server).
    pub fn random(
        seed: u64,
        events: usize,
        start: SimTime,
        horizon: SimTime,
        machines: usize,
    ) -> Self {
        assert!(machines > 0, "plan needs at least one target machine");
        assert!(horizon > start, "horizon must follow start");
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0xFA_0175));
        let window = horizon.since(start).as_nanos();
        let mut plan = FaultPlan::new(seed);
        for _ in 0..events {
            let at = start + SimSpan::nanos(rng.gen_range(0..window.max(1)));
            let duration = SimSpan::nanos(rng.gen_range((window / 20).max(1)..(window / 4).max(2)));
            let machine = rng.gen_range(0..machines);
            let kind = match rng.gen_range(0..5u32) {
                0 => FaultKind::LossBurst {
                    machine,
                    loss: rng.gen_range(0.05..0.5),
                },
                1 => FaultKind::LinkDegrade {
                    factor: rng.gen_range(2.0..10.0),
                },
                2 => FaultKind::Straggler {
                    machine,
                    factor: rng.gen_range(2.0..6.0),
                },
                3 => FaultKind::QpError { machine },
                _ => FaultKind::Crash {
                    machine: 0,
                    warm: rng.gen::<bool>(),
                },
            };
            plan.events.push(FaultEvent { at, duration, kind });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_events_in_order() {
        let plan = FaultPlan::new(7)
            .loss_burst(SimTime::from_nanos(10), SimSpan::micros(1), 1, 0.2)
            .qp_error(SimTime::from_nanos(20), 0)
            .crash(SimTime::from_nanos(30), SimSpan::micros(5), 0, true)
            .torn_dma(SimTime::from_nanos(40), SimSpan::micros(2), 0, 0.3)
            .bit_flip(SimTime::from_nanos(50), SimSpan::micros(2), 0, 0.1)
            .partition(SimTime::from_nanos(60), SimSpan::micros(3), 1, 0)
            .slow_link(SimTime::from_nanos(70), SimSpan::micros(4), 0, 25_000)
            .flaky_link(SimTime::from_nanos(80), SimSpan::micros(4), 1, 0.1)
            .slow_server(SimTime::from_nanos(90), SimSpan::micros(4), 0, 20.0);
        assert_eq!(plan.len(), 9);
        assert_eq!(plan.events()[1].duration, SimSpan::ZERO);
        assert!(matches!(
            plan.events()[2].kind,
            FaultKind::Crash { warm: true, .. }
        ));
        assert!(matches!(
            plan.events()[3].kind,
            FaultKind::TornDma { machine: 0, .. }
        ));
        assert!(matches!(
            plan.events()[4].kind,
            FaultKind::BitFlip { machine: 0, .. }
        ));
        assert!(matches!(
            plan.events()[5].kind,
            FaultKind::Partition { from: 1, to: 0 }
        ));
        assert!(matches!(
            plan.events()[6].kind,
            FaultKind::SlowLink {
                machine: 0,
                lag_ns: 25_000
            }
        ));
        assert!(matches!(
            plan.events()[7].kind,
            FaultKind::FlakyLink { machine: 1, .. }
        ));
        assert!(matches!(
            plan.events()[8].kind,
            FaultKind::SlowServer { machine: 0, .. }
        ));
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(
            9,
            6,
            SimTime::from_nanos(1_000),
            SimTime::from_nanos(2_000_000),
            3,
        );
        let b = FaultPlan::random(
            9,
            6,
            SimTime::from_nanos(1_000),
            SimTime::from_nanos(2_000_000),
            3,
        );
        assert_eq!(a, b);
        let c = FaultPlan::random(
            10,
            6,
            SimTime::from_nanos(1_000),
            SimTime::from_nanos(2_000_000),
            3,
        );
        assert_ne!(a, c);
    }
}
