//! A replicated key-value rig built for **gray-failure** experiments.
//!
//! [`spawn_grayfail_kv`] assembles the same primary/backup pair as the
//! failover rig — machine 0 the primary, machine 1 a standby backup
//! fed by the replication log, machines `2..` clients — but aims it at
//! fail-*slow* faults instead of fail-stop ones: slow links, flaky
//! sub-recovery-threshold links, CPU-throttled serve loops. Nothing in
//! those scenarios ever crashes, errors, or sheds, so the crash
//! failover path never fires; what the rig measures is whether the
//! gray-failure subsystem (scored routing, hedged reads, retry
//! budgets — [`rfp_core::GrayConfig`]) keeps the **read tail** bounded
//! while the fault is live.
//!
//! Differences from the failover rig, all deliberate:
//!
//! * **standby reads** — the backup serves GETs from its replicated
//!   partition while unpromoted and refuses mutations with `Busy`
//!   without executing them, so routed/hedged reads have somewhere
//!   safe to land ([`BackupRole::standby_reads`]);
//! * **single-writer, single-reader keys** — each client reads only
//!   its *own* keys. A cross-client read served by the standby could
//!   legitimately observe a write another client saw early on the
//!   primary before the log batch shipped (a real read-uncommitted
//!   anomaly of standby reads, not a bug to hunt here); own-key reads
//!   are immune because `Sync` ack applies a write at the backup
//!   before its issuer sees the ack;
//! * **phase-tagged read latencies** — every GET's `(start, latency)`
//!   lands in a vector so the bench can compute the read p99 over the
//!   mitigation-steady measurement phase, excluding warmup and the
//!   detection transient;
//! * **duplicate-apply ledger** — the primary counts mutations it
//!   actually applied and the standby counts mutations it refused;
//!   together with the checker history these prove hedging never
//!   double-applies a write.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_core::{
    connect, FailoverConfig, IntegrityConfig, OverloadConfig, ReplicaClient, RfpClient, RfpConfig,
    RfpServerConn,
};
use rfp_kvstore::replica::{
    backup_serve_loop, primary_serve_loop, BackupRole, PrimaryRole, ReplicationConfig,
};
use rfp_kvstore::{KvRequest, KvResponse, Partition};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{
    derive_seed, FlightRecorder, HealthHub, MetricsRegistry, SimSpan, SimTime, Simulation,
    SpanRecorder, TraceLog,
};
use rfp_workload::{HistEntry, RegOp};

use crate::harness::rig_rfp_cfg;
use crate::inject::{install, InjectorSinks, Restart};
use crate::plan::FaultPlan;

/// Sizing and tuning of the gray-failure rig.
#[derive(Clone, Debug)]
pub struct GrayChaosConfig {
    /// Client machines (one client thread each), on machines `2..`.
    pub clients: usize,
    /// Keys per client; each client both writes and reads only its own.
    pub keys_per_client: usize,
    /// Operations each client issues before stopping.
    pub ops_per_client: usize,
    /// Fraction of operations that are PUTs (always routed `call`,
    /// never hedged — mutations anchor on the primary).
    pub put_ratio: f64,
    /// Whether GETs go through [`ReplicaClient::call_hedged`] (the
    /// gray-routed read path) or plain [`ReplicaClient::call`]. The
    /// sweep's baseline cell turns this off together with the gray
    /// config so the run is byte-identical to the pre-gray router.
    pub hedged_reads: bool,
    /// Primary-side replication tuning (`Sync` ack on — standby reads
    /// lean on acked ⇒ applied-at-backup).
    pub replication: ReplicationConfig,
    /// Client-side router policy; `failover.gray` is the subsystem
    /// under test.
    pub failover: FailoverConfig,
    /// Cluster timing profile.
    pub profile: ClusterProfile,
    /// Master seed for workloads and recovery jitter.
    pub seed: u64,
}

impl Default for GrayChaosConfig {
    fn default() -> Self {
        GrayChaosConfig {
            clients: 3,
            keys_per_client: 4,
            ops_per_client: 400,
            put_ratio: 0.3,
            hedged_reads: true,
            replication: ReplicationConfig {
                enabled: true,
                ..ReplicationConfig::default()
            },
            failover: FailoverConfig {
                recovery: rfp_core::RecoveryConfig {
                    retry: rfp_simnet::RetryPolicy::exponential(
                        6,
                        SimSpan::micros(10),
                        SimSpan::micros(200),
                        0.2,
                    ),
                    ..rfp_core::RecoveryConfig::default()
                },
                ..FailoverConfig::default()
            },
            profile: ClusterProfile::paper_testbed(),
            seed: 23,
        }
    }
}

/// Shared outcome state, updated online by every client loop.
pub struct GrayState {
    /// Completed calls (all kinds).
    pub completed: Cell<u64>,
    /// Acknowledged PUTs.
    pub acked_puts: Cell<u64>,
    /// PUT calls issued (acked or not) — the duplicate-apply ceiling.
    pub issued_puts: Cell<u64>,
    /// Calls that exhausted the router's whole budget.
    pub failed_calls: Cell<u64>,
    /// Acked-write losses (see the failover rig; must stay 0 here).
    pub lost_acked: Cell<u64>,
    /// Reads that ran backwards vs. an earlier-completed read.
    pub stale_reads: Cell<u64>,
    /// GETs answered `NotFound`.
    pub not_found: Cell<u64>,
    /// Clients that finished their op budget.
    pub done_clients: Cell<usize>,
    /// key id → value of the last acked PUT.
    acked: RefCell<HashMap<u64, u64>>,
    /// key id → newest value any completed read observed.
    observed: RefCell<HashMap<u64, u64>>,
    /// Full operation history, in completion/abandonment order.
    history: RefCell<Vec<HistEntry>>,
    /// Every completed GET as `(start_ns, latency_ns)`.
    read_lats: RefCell<Vec<(u64, u64)>>,
}

impl GrayState {
    /// The recorded history (for [`rfp_workload::check_history`]).
    pub fn history(&self) -> Vec<HistEntry> {
        self.history.borrow().clone()
    }

    /// Read latencies of GETs that *started* at or after `from` —
    /// the measurement-phase slice.
    pub fn read_lats_since(&self, from: SimTime) -> Vec<u64> {
        let floor = from.as_nanos();
        self.read_lats
            .borrow()
            .iter()
            .filter(|(start, _)| *start >= floor)
            .map(|(_, lat)| *lat)
            .collect()
    }

    /// p99 read latency (ns) over GETs started at or after `from`;
    /// `None` with fewer than 10 samples.
    pub fn read_p99_since(&self, from: SimTime) -> Option<u64> {
        let mut lats = self.read_lats_since(from);
        if lats.len() < 10 {
            return None;
        }
        lats.sort_unstable();
        Some(lats[(lats.len() * 99) / 100 - 1])
    }

    /// Largest number of operations landed on any single key.
    pub fn max_ops_per_key(&self) -> usize {
        let mut per_key: HashMap<u64, usize> = HashMap::new();
        for e in self.history.borrow().iter() {
            *per_key.entry(e.key).or_default() += 1;
        }
        per_key.values().copied().max().unwrap_or(0)
    }
}

/// A running gray-failure rig.
pub struct GrayKv {
    /// The simulated cluster (0 = primary, 1 = backup, `2..` clients).
    pub cluster: Cluster,
    /// Unified instruments (`rfp.client.*`, `fault.*`, `recovery.*`,
    /// `routing.*`).
    pub registry: MetricsRegistry,
    /// Shared trace.
    pub trace: TraceLog,
    /// Request-lifecycle spans.
    pub spans: SpanRecorder,
    /// Flight recorder: `chaos.slow_link` / `chaos.flaky_link` /
    /// `chaos.slow_server` fault roots and the router's
    /// `routing.demote` / `recovery.hedge.*` reaction chains.
    pub recorder: FlightRecorder,
    /// Rolling per-connection health (keyed `client * 2 + replica`).
    pub health: HealthHub,
    /// Shared outcome state.
    pub state: Rc<GrayState>,
    /// One router per client, in machine order.
    pub routers: Vec<Rc<ReplicaClient>>,
    /// Primary-side replication bookkeeping (and the apply ledger).
    pub primary_role: Rc<PrimaryRole>,
    /// Backup-side replication bookkeeping (and the refusal ledger).
    pub backup_role: Rc<BackupRole>,
    /// The primary's store.
    pub primary_part: Rc<RefCell<Partition>>,
    /// The backup's store.
    pub backup_part: Rc<RefCell<Partition>>,
}

impl GrayKv {
    /// Total replica re-homings across all clients.
    pub fn total_failovers(&self) -> u64 {
        self.routers.iter().map(|r| r.failovers()).sum()
    }

    /// `(issued, won, wasted)` hedge legs across all routers.
    pub fn total_hedges(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for r in &self.routers {
            let (i, w, x) = r.hedges();
            t.0 += i;
            t.1 += w;
            t.2 += x;
        }
        t
    }

    /// Retry-budget tokens consumed and grants denied, summed.
    pub fn budget_totals(&self) -> (u64, u64) {
        let mut t = (0, 0);
        for r in &self.routers {
            t.0 += r.budget().consumed();
            t.1 += r.budget().denied();
        }
        t
    }
}

/// Spawns the rig; pass a [`FaultPlan`] carrying `slow_link` /
/// `flaky_link` / `slow_server` windows to install its injector. The
/// backup is never promoted — gray faults are exactly the ones a crash
/// detector cannot see.
pub fn spawn_grayfail_kv(
    sim: &mut Simulation,
    cfg: &GrayChaosConfig,
    plan: Option<&FaultPlan>,
) -> GrayKv {
    assert!(cfg.clients > 0, "rig needs at least one client");
    assert!(cfg.keys_per_client > 0, "rig needs at least one key");
    let cluster = Cluster::new(sim, cfg.profile.clone(), 2 + cfg.clients);
    let (primary_m, backup_m) = (cluster.machine(0), cluster.machine(1));
    let registry = MetricsRegistry::new();
    cluster.attach_metrics(&registry);
    let trace = TraceLog::new(64 * 1024);
    let spans = SpanRecorder::new(1024);
    let recorder = FlightRecorder::new(64 * 1024);
    let health = HealthHub::default();
    cluster.attach_recorder(&recorder);

    let partition_cap = (cfg.clients * cfg.keys_per_client * 2).max(64);
    let primary_part = Rc::new(RefCell::new(Partition::new(partition_cap)));
    let backup_part = Rc::new(RefCell::new(Partition::new(partition_cap)));
    let primary_role = Rc::new(PrimaryRole::default());
    let backup_role = Rc::new(BackupRole::default());
    // Standby reads power scored routing and hedging; they stay off in
    // the baseline cell so the disabled run is byte-identical to the
    // pre-gray rig.
    backup_role.standby_reads.set(cfg.failover.gray.enabled);

    let state = Rc::new(GrayState {
        completed: Cell::new(0),
        acked_puts: Cell::new(0),
        issued_puts: Cell::new(0),
        failed_calls: Cell::new(0),
        lost_acked: Cell::new(0),
        stale_reads: Cell::new(0),
        not_found: Cell::new(0),
        done_clients: Cell::new(0),
        acked: RefCell::new(HashMap::new()),
        observed: RefCell::new(HashMap::new()),
        history: RefCell::new(Vec::new()),
        read_lats: RefCell::new(Vec::new()),
    });

    let (ship, repl_conn) = connect(
        &primary_m,
        &backup_m,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig {
            enable_mode_switch: false,
            ..RfpConfig::default()
        },
    );
    ship.set_reconnect(cluster.qp_factory(0, 1));
    let repl_conn = Rc::new(repl_conn);

    let mut primary_conns: Vec<Rc<RfpServerConn>> = Vec::new();
    let mut backup_conns: Vec<Rc<RfpServerConn>> = Vec::new();
    let mut routers: Vec<Rc<ReplicaClient>> = Vec::new();
    let overload = OverloadConfig::default();
    let integrity = IntegrityConfig::default();

    for c in 0..cfg.clients {
        let client_m = cluster.machine(2 + c);
        let thread = client_m.thread(format!("gray-c{c}"));
        let mut replicas: Vec<Rc<RfpClient>> = Vec::new();
        for (replica, server_m) in [(0usize, &primary_m), (1usize, &backup_m)] {
            let (cl, sc) = connect(
                &client_m,
                server_m,
                cluster.qp(2 + c, replica),
                cluster.qp(replica, 2 + c),
                rig_rfp_cfg(
                    &registry,
                    &spans,
                    &trace,
                    &recorder,
                    &health,
                    &overload,
                    &integrity,
                    c * 2 + replica,
                ),
            );
            cl.set_reconnect(cluster.qp_factory(2 + c, replica));
            let sc = Rc::new(sc);
            if replica == 0 {
                primary_conns.push(sc);
            } else {
                backup_conns.push(sc);
            }
            replicas.push(Rc::new(cl));
        }
        let router = Rc::new(ReplicaClient::new(
            replicas,
            FailoverConfig {
                recovery: rfp_core::RecoveryConfig {
                    seed: derive_seed(cfg.seed, 0x64AF + c as u64),
                    ..cfg.failover.recovery.clone()
                },
                gray: rfp_core::GrayConfig {
                    seed: derive_seed(cfg.failover.gray.seed, c as u64),
                    ..cfg.failover.gray.clone()
                },
                ..cfg.failover.clone()
            },
        ));
        routers.push(Rc::clone(&router));

        let st = Rc::clone(&state);
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 1 + c as u64));
        let keys = cfg.keys_per_client;
        let ops = cfg.ops_per_client;
        let put_ratio = cfg.put_ratio;
        let hedged = cfg.hedged_reads;
        sim.spawn(async move {
            let mut version = 0u64;
            for _ in 0..ops {
                let is_put = rng.gen::<f64>() < put_ratio;
                // Writers AND readers stay inside the client's own
                // range: standby reads make cross-client reads
                // legitimately non-linearizable (see module docs).
                let key_id = (c * keys + rng.gen_range(0..keys)) as u64;
                let key = format!("k{key_id}").into_bytes();
                let (req, value) = if is_put {
                    version += 1;
                    let value = ((c as u64) << 32) | version;
                    (
                        KvRequest::Put {
                            key: &key,
                            value: &value.to_le_bytes(),
                        }
                        .encode(),
                        Some(value),
                    )
                } else {
                    (KvRequest::Get { key: &key }.encode(), None)
                };
                let acked_floor = st.acked.borrow().get(&key_id).copied();
                let observed_floor = st.observed.borrow().get(&key_id).copied();
                let start = thread.now().as_nanos();
                if is_put {
                    st.issued_puts.set(st.issued_puts.get() + 1);
                }
                let outcome = if is_put || !hedged {
                    router.call(&thread, &req).await
                } else {
                    router.call_hedged(&thread, &req).await
                };
                match outcome {
                    Ok(out) => {
                        let end = thread.now().as_nanos();
                        st.completed.set(st.completed.get() + 1);
                        let resp = KvResponse::decode(&out.data).expect("server response");
                        let op = match (value, resp) {
                            (Some(v), KvResponse::Stored) => {
                                st.acked_puts.set(st.acked_puts.get() + 1);
                                st.acked.borrow_mut().insert(key_id, v);
                                RegOp::Write(v)
                            }
                            (None, KvResponse::Found(bytes)) => {
                                let raw: [u8; 8] =
                                    bytes.as_slice().try_into().expect("8-byte value");
                                let v = u64::from_le_bytes(raw);
                                if acked_floor.is_some_and(|floor| v < floor) {
                                    st.lost_acked.set(st.lost_acked.get() + 1);
                                }
                                if observed_floor.is_some_and(|floor| v < floor) {
                                    st.stale_reads.set(st.stale_reads.get() + 1);
                                }
                                let mut obs = st.observed.borrow_mut();
                                let slot = obs.entry(key_id).or_insert(v);
                                *slot = (*slot).max(v);
                                st.read_lats.borrow_mut().push((start, end - start));
                                RegOp::Read(Some(v))
                            }
                            (None, KvResponse::NotFound) => {
                                st.not_found.set(st.not_found.get() + 1);
                                if acked_floor.is_some() {
                                    st.lost_acked.set(st.lost_acked.get() + 1);
                                }
                                st.read_lats.borrow_mut().push((start, end - start));
                                RegOp::Read(None)
                            }
                            (_, other) => panic!("unexpected response {other:?}"),
                        };
                        st.history.borrow_mut().push(HistEntry {
                            key: key_id,
                            client: c as u32,
                            start,
                            end: Some(end),
                            op,
                        });
                    }
                    Err(_) => {
                        st.failed_calls.set(st.failed_calls.get() + 1);
                        if let Some(v) = value {
                            st.history.borrow_mut().push(HistEntry {
                                key: key_id,
                                client: c as u32,
                                start,
                                end: None,
                                op: RegOp::Write(v),
                            });
                        }
                    }
                }
            }
            st.done_clients.set(st.done_clients.get() + 1);
        });
    }

    sim.spawn(primary_serve_loop(
        primary_m.thread("gray-primary"),
        primary_conns.clone(),
        Rc::clone(&primary_part),
        Rc::new(ship),
        cfg.replication.clone(),
        Rc::clone(&primary_role),
        SimSpan::nanos(100),
    ));
    sim.spawn(backup_serve_loop(
        backup_m.thread("gray-backup"),
        Rc::clone(&repl_conn),
        backup_conns.clone(),
        Rc::clone(&backup_part),
        Rc::clone(&backup_role),
        SimSpan::nanos(100),
    ));

    if let Some(plan) = plan {
        let hook_primary = primary_conns.clone();
        let hook_backup = backup_conns;
        let hook_repl = Rc::clone(&repl_conn);
        install(
            sim,
            &cluster,
            plan,
            InjectorSinks {
                registry: Some(registry.clone()),
                trace: Some(trace.clone()),
                // A restarted replica rebuilds its server-side
                // connection state before serving resumed clients;
                // the backup additionally recovers the replication
                // stream's receive conn.
                on_restart: Some(Rc::new(move |restart: &Restart| match restart.machine {
                    0 => {
                        for conn in &hook_primary {
                            conn.recover_after_restart();
                        }
                    }
                    1 => {
                        for conn in &hook_backup {
                            conn.recover_after_restart();
                        }
                        hook_repl.recover_after_restart();
                    }
                    _ => {}
                })),
                recorder: Some(recorder.clone()),
            },
        );
    }

    GrayKv {
        cluster,
        registry,
        trace,
        spans,
        recorder,
        health,
        state,
        routers,
        primary_role,
        backup_role,
        primary_part,
        backup_part,
    }
}
