//! Criterion micro-benchmarks of the substrate hot paths: the data
//! structures and codecs every simulated request crosses. These measure
//! *wall-clock* cost of our implementation (the simulated-time results
//! live in the `figNN_*` harness binaries).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfp_kvstore::{
    crc64, hash_bytes, CompactPartition, KvRequest, KvResponse, LruCache, Partition, PilafStore,
};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::Simulation;
use rfp_workload::Zipf;

fn bench_crc64(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc64");
    for size in [32usize, 256, 1024, 8192] {
        let data = vec![0xA5u8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| crc64(black_box(data)));
        });
    }
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let key = [7u8; 16];
    c.bench_function("hash_bytes/16B", |b| {
        b.iter(|| hash_bytes(black_box(1), black_box(&key)))
    });
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket_partition");
    g.bench_function("compact_put_get_mixed", |b| {
        let mut part = CompactPartition::new(4096);
        for i in 0..10_000u32 {
            part.put(&i.to_le_bytes(), b"value-32-bytes-value-32-bytes-vv");
        }
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let key = (i % 10_000).to_le_bytes();
            if i.is_multiple_of(20) {
                part.put(black_box(&key), b"value-32-bytes-value-32-bytes-vv");
            } else {
                black_box(part.get(black_box(&key)));
            }
        });
    });
    g.bench_function("put_get_mixed", |b| {
        let mut part = Partition::new(4096);
        for i in 0..10_000u32 {
            part.put(&i.to_le_bytes(), b"value-32-bytes-value-32-bytes-vv");
        }
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let key = (i % 10_000).to_le_bytes();
            if i.is_multiple_of(20) {
                part.put(black_box(&key), b"value-32-bytes-value-32-bytes-vv");
            } else {
                black_box(part.get(black_box(&key)));
            }
        });
    });
    g.finish();
}

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo");
    g.bench_function("lookup_local_75pct", |b| {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let store = PilafStore::new(&cluster.machine(0), 8192, 8192, 128);
        let n = 6144u32; // 75% fill, as the paper quotes for Pilaf
        for i in 0..n {
            store
                .insert_local(&i.to_le_bytes(), b"32B-value-32B-value-32B-value-32")
                .expect("75% fill fits");
        }
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(store.lookup_local(black_box(&(i % n).to_le_bytes())))
        });
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru/put_get", |b| {
        let mut lru: LruCache<u32, u64> = LruCache::new(4096);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            lru.put(i % 8192, i as u64);
            black_box(lru.get(&(i % 4096)));
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf/sample_128M", |b| {
        let z = Zipf::new(128 * 1024 * 1024, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

fn bench_proto(c: &mut Criterion) {
    let key = vec![1u8; 16];
    let value = vec![2u8; 32];
    c.bench_function("proto/put_round_trip", |b| {
        b.iter_batched(
            || {
                KvRequest::Put {
                    key: &key,
                    value: &value,
                }
                .encode()
            },
            |bytes| {
                let req = KvRequest::decode(black_box(&bytes)).expect("well-formed");
                black_box(req.key().len())
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("proto/response_decode", |b| {
        let bytes = KvResponse::Found(vec![9u8; 32]).encode();
        b.iter(|| KvResponse::decode(black_box(&bytes)).expect("well-formed"));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_crc64, bench_hash, bench_partition, bench_cuckoo, bench_lru, bench_zipf, bench_proto
}
criterion_main!(benches);
