//! Criterion benchmarks of the simulation engine itself: how fast the
//! executor retires events and how much wall-clock one simulated
//! millisecond of each experiment costs. These bound the turnaround of
//! the figure-regeneration harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

use rfp_bench::kvrun::run_kv;
use rfp_bench::micro;
use rfp_kvstore::{spawn_jakiro, SystemConfig};
use rfp_simnet::{FifoServer, SimSpan, Simulation};
use rfp_workload::WorkloadSpec;

/// Raw executor throughput: a storm of interleaved sleeps.
fn bench_executor(c: &mut Criterion) {
    c.bench_function("simnet/sleep_storm_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0);
            for i in 0..100u64 {
                let h = sim.handle();
                sim.spawn(async move {
                    for k in 0..100u64 {
                        h.sleep(SimSpan::nanos(1 + (i * 37 + k) % 97)).await;
                    }
                });
            }
            sim.run();
            black_box(sim.now())
        });
    });
}

/// FIFO resource under contention.
fn bench_fifo(c: &mut Criterion) {
    c.bench_function("simnet/fifo_10k_ops", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0);
            let server = Rc::new(FifoServer::new(sim.handle()));
            for _ in 0..10 {
                let s = Rc::clone(&server);
                sim.spawn(async move {
                    for _ in 0..1000 {
                        s.serve(SimSpan::nanos(100)).await;
                    }
                });
            }
            sim.run();
            black_box(server.completed())
        });
    });
}

/// Wall-clock cost of one simulated millisecond of saturated
/// micro-benchmark (the Figure 3-5 workhorse).
fn bench_micro_ms(c: &mut Criterion) {
    c.bench_function("experiments/inbound_saturation_1ms", |b| {
        b.iter(|| black_box(micro::inbound_mops(5, 32, SimSpan::millis(1))));
    });
}

/// Wall-clock cost of one simulated millisecond of the full Jakiro
/// system (35 clients, 6 server threads).
fn bench_jakiro_ms(c: &mut Criterion) {
    c.bench_function("experiments/jakiro_1ms", |b| {
        let cfg = SystemConfig {
            spec: WorkloadSpec {
                key_count: 2_000,
                ..WorkloadSpec::paper_default()
            },
            ..SystemConfig::default()
        };
        b.iter(|| {
            black_box(run_kv(
                spawn_jakiro,
                &cfg,
                SimSpan::millis(0),
                SimSpan::millis(1),
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor, bench_fifo, bench_micro_ms, bench_jakiro_ms
}
criterion_main!(benches);
