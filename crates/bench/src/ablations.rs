//! Ablations beyond the paper's figures — the design-choice checks
//! DESIGN.md calls out:
//!
//! * transports — RFP (RC) vs server-reply (RC) vs HERD-style (UC/UD),
//!   with and without packet loss (§5's discussion, made measurable),
//! * NIC generations — the in/out asymmetry and the resulting system
//!   ordering across ConnectX-2/-3/-4-class hardware (§2.2's "appears
//!   on all these different versions"),
//! * EREW — Jakiro's partitioned store vs the same store behind one
//!   lock (§4.1's design choice),
//! * parameter selection — the §3.2 enumeration vs naive fetch sizes,
//! * pipelining — posted verbs and doorbell batching (§2.2's excluded
//!   optimizations),
//! * load-latency — think-time clients sweeping offered load.

use std::io::{self, Write};

use rfp_core::{ParamSelector, RfpConfig, WorkloadSample};
use rfp_kvstore::{
    spawn_farm, spawn_herd, spawn_jakiro, spawn_jakiro_shared, spawn_pilaf, spawn_server_reply_kv,
    SystemConfig,
};
use rfp_rnic::{ClusterProfile, LinkProfile, NicProfile};
use rfp_simnet::SimSpan;
use rfp_workload::{OpMix, ValueSize, WorkloadSpec};

use crate::kvrun::run_kv;
use crate::micro;
use crate::{DEFAULT_WARMUP_MS, DEFAULT_WINDOW_MS};

fn window() -> SimSpan {
    SimSpan::millis(DEFAULT_WINDOW_MS)
}

fn warmup() -> SimSpan {
    SimSpan::millis(DEFAULT_WARMUP_MS)
}

fn row(
    w: &mut dyn Write,
    fig: &str,
    series: &str,
    x: impl std::fmt::Display,
    y: f64,
) -> io::Result<()> {
    writeln!(w, "{fig},{series},{x},{y:.4}")
}

fn base_cfg() -> SystemConfig {
    SystemConfig {
        spec: WorkloadSpec {
            key_count: 2_000,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    }
}

/// Transports: the three paradigms head-to-head, then the HERD-style
/// system under increasing packet loss (reliability is not free to give
/// up).
pub fn ablation_transports(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# ablation_transports: RC-RFP vs RC-server-reply vs UC/UD HERD-style"
    )?;
    let cfg = base_cfg();
    row(
        w,
        "transports",
        "jakiro_rc_rfp",
        "lossless",
        run_kv(spawn_jakiro, &cfg, warmup(), window()).mops,
    )?;
    row(
        w,
        "transports",
        "server_reply_rc",
        "lossless",
        run_kv(spawn_server_reply_kv, &cfg, warmup(), window()).mops,
    )?;
    row(
        w,
        "transports",
        "herd_uc_ud",
        "lossless",
        run_kv(spawn_herd, &cfg, warmup(), window()).mops,
    )?;
    for loss_pct in [0.1f64, 1.0, 5.0] {
        let mut cfg = base_cfg();
        cfg.profile.nic.unreliable_loss = loss_pct / 100.0;
        let run = run_kv(spawn_herd, &cfg, warmup(), window());
        row(
            w,
            "transports",
            "herd_uc_ud",
            format!("loss_{loss_pct}pct"),
            run.mops,
        )?;
        row(
            w,
            "transports",
            "herd_p99_us",
            format!("loss_{loss_pct}pct"),
            run.p99_us,
        )?;
    }
    Ok(())
}

/// NIC generations: asymmetry and system peaks on ConnectX-2/-3/-4.
pub fn ablation_nic_generations(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# ablation_nic_generations: asymmetry and peaks across hardware"
    )?;
    let generations: [(&str, NicProfile); 3] = [
        ("connectx2", NicProfile::connectx2_40g()),
        ("connectx3", NicProfile::connectx3_40g()),
        ("connectx4", NicProfile::connectx4_100g()),
    ];
    for (name, nic) in generations {
        let profile = ClusterProfile {
            nic,
            link: LinkProfile::infiniscale(),
        };
        let inb = micro::inbound_mops_with(profile.clone(), 5, 32, window());
        let out = micro::outbound_mops_with(profile.clone(), 4, 32, window());
        row(w, "nic_gen", &format!("{name}_inbound"), 32, inb)?;
        row(w, "nic_gen", &format!("{name}_outbound"), 32, out)?;
        row(w, "nic_gen", &format!("{name}_asymmetry"), 32, inb / out)?;

        let cfg = SystemConfig {
            profile,
            ..base_cfg()
        };
        let jak = run_kv(spawn_jakiro, &cfg, warmup(), window()).mops;
        let sr = run_kv(spawn_server_reply_kv, &cfg, warmup(), window()).mops;
        row(w, "nic_gen", &format!("{name}_jakiro"), 32, jak)?;
        row(w, "nic_gen", &format!("{name}_server_reply"), 32, sr)?;
        row(w, "nic_gen", &format!("{name}_gain"), 32, jak / sr)?;
    }
    Ok(())
}

/// EREW vs one shared lock, across GET ratios: the partitioned design's
/// write-insensitivity is where it earns its keep.
pub fn ablation_erew(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# ablation_erew: EREW partitions vs shared-lock store")?;
    for (label, mix) in [
        ("95", OpMix::READ_INTENSIVE),
        ("50", OpMix::BALANCED),
        ("5", OpMix::WRITE_INTENSIVE),
    ] {
        let mut cfg = base_cfg();
        cfg.spec.mix = mix;
        let erew = run_kv(spawn_jakiro, &cfg, warmup(), window()).mops;
        let shared = run_kv(spawn_jakiro_shared, &cfg, warmup(), window()).mops;
        row(w, "erew", "erew", label, erew)?;
        row(w, "erew", "shared_lock", label, shared)?;
    }
    Ok(())
}

/// Parameter selection vs naive fetch sizes on a mid-size workload
/// (600 B results — squarely between the grid points, where getting `F`
/// wrong costs a second READ on every call).
pub fn ablation_param_selection(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# ablation_param_selection: selected (R,F) vs naive choices, 600B values"
    )?;
    let profile = ClusterProfile::paper_testbed();
    let selector = ParamSelector::new(profile.nic.clone(), profile.link.clone());
    let sample = WorkloadSample {
        result_sizes: vec![605],
        process_time: SimSpan::nanos(350),
        request_size: 64,
        client_threads: 35,
    };
    let picked = selector.select(&sample);
    writeln!(w, "# selector picked R={} F={}", picked.r, picked.f)?;

    let run_with = |r: u32, f: usize| {
        let cfg = SystemConfig {
            spec: WorkloadSpec {
                key_count: 2_000,
                values: ValueSize::Fixed(600),
                ..WorkloadSpec::paper_default()
            },
            rfp: RfpConfig {
                retry_threshold: r,
                fetch_size: f,
                check_cpu: SimSpan::nanos(30),
                post_cpu: SimSpan::nanos(50),
                ..RfpConfig::default()
            },
            ..SystemConfig::default()
        };
        run_kv(spawn_jakiro, &cfg, warmup(), window())
    };

    let selected = run_with(picked.r, picked.f);
    row(w, "params", "selected", picked.f, selected.mops)?;
    row(
        w,
        "params",
        "selected_extra_read_frac",
        picked.f,
        // Extra reads per call under the chosen F.
        selected.inbound_per_req - 2.0,
    )?;
    for naive_f in [64usize.max(rfp_core::RESP_HDR), 256, 2048, 8192] {
        let run = run_with(5, naive_f);
        row(w, "params", "naive", naive_f, run.mops)?;
    }
    Ok(())
}

/// Pipelining / doorbell batching — the optimizations the paper sets
/// aside in §2.2: per-thread read throughput vs in-flight window depth,
/// synchronous vs posted vs doorbell-batched.
pub fn ablation_pipelining(w: &mut dyn Write) -> io::Result<()> {
    use rfp_rnic::Cluster;
    use rfp_simnet::Simulation;
    use std::rc::Rc;

    writeln!(
        w,
        "# ablation_pipelining: ONE client thread reading 32B, vs in-flight depth"
    )?;
    writeln!(
        w,
        "# (depth hides the round trip until the issuing NIC's out-bound engine caps)"
    )?;
    let run = |depth: usize, batched: bool| -> f64 {
        let mut sim = Simulation::new(105);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let server = cluster.machine(0);
        let remote = server.alloc_mr(4096);
        for t in 0..1usize {
            let qp = cluster.qp(1, 0);
            let client = cluster.machine(1);
            let local = client.alloc_mr(4096);
            let thread = client.thread(format!("c{t}"));
            let r = Rc::clone(&remote);
            sim.spawn(async move {
                loop {
                    if batched {
                        let entries: Vec<_> = (0..depth)
                            .map(|i| (Rc::clone(&local), i * 64, Rc::clone(&r), i * 64, 32))
                            .collect();
                        let completions = qp.post_read_batch(&thread, &entries).await;
                        for c in completions {
                            c.wait(&thread).await;
                        }
                    } else {
                        let mut completions = Vec::with_capacity(depth);
                        for i in 0..depth {
                            completions
                                .push(qp.read_post(&thread, &local, i * 64, &r, i * 64, 32).await);
                        }
                        for c in completions {
                            c.wait(&thread).await;
                        }
                    }
                }
            });
        }
        sim.run_for(SimSpan::millis(1));
        server.nic().reset_counters();
        let t0 = sim.now();
        sim.run_for(window());
        server.nic().counters().inbound_ops as f64 / (sim.now() - t0).as_secs_f64() / 1e6
    };
    for depth in [1usize, 2, 4, 8, 16] {
        row(w, "pipelining", "posted", depth, run(depth, false))?;
        row(w, "pipelining", "doorbell_batched", depth, run(depth, true))?;
    }
    Ok(())
}

/// Latency vs offered load: think-time clients sweep the arrival rate
/// from light load to saturation; the latency knee appears where each
/// system's bottleneck resource saturates (the classic curve the
/// paper's peak-throughput methodology summarises in one point).
pub fn ablation_load_latency(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# ablation_load_latency: mean think time (us) -> mops, p50, p99 (us)"
    )?;
    for think_us in [50u64, 20, 10, 5, 2, 1, 0] {
        let mut cfg = base_cfg();
        cfg.think_time = SimSpan::micros(think_us);
        for (name, run) in [
            ("jakiro", run_kv(spawn_jakiro, &cfg, warmup(), window())),
            (
                "server_reply",
                run_kv(spawn_server_reply_kv, &cfg, warmup(), window()),
            ),
        ] {
            row(w, "load", &format!("{name}_mops"), think_us, run.mops)?;
            row(w, "load", &format!("{name}_p50_us"), think_us, run.p50_us)?;
            row(w, "load", &format!("{name}_p99_us"), think_us, run.p99_us)?;
        }
    }
    Ok(())
}

/// The §5 FaRM comparison: the three bypass/fetch designs head-to-head
/// on ops and bytes per GET. FaRM-style neighborhood reads use the
/// fewest server ops but the most bytes; Jakiro sits in between on
/// bytes while keeping the server involved; Pilaf pays the op
/// amplification.
pub fn ablation_farm(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# ablation_farm: Jakiro vs Pilaf-style vs FaRM-style, uniform, 32B values"
    )?;
    for (label, mix) in [("95", OpMix::READ_INTENSIVE), ("50", OpMix::BALANCED)] {
        let mut cfg = base_cfg();
        cfg.spec.mix = mix;
        for (name, run) in [
            ("jakiro", run_kv(spawn_jakiro, &cfg, warmup(), window())),
            ("pilaf", run_kv(spawn_pilaf, &cfg, warmup(), window())),
            ("farm", run_kv(spawn_farm, &cfg, warmup(), window())),
        ] {
            row(w, "farm", &format!("{name}_mops"), label, run.mops)?;
            row(
                w,
                "farm",
                &format!("{name}_inbound_ops_per_req"),
                label,
                run.inbound_per_req.max(run.bypass_ops_per_get),
            )?;
            row(
                w,
                "farm",
                &format!("{name}_inbound_bytes_per_req"),
                label,
                run.inbound_bytes_per_req,
            )?;
        }
    }
    Ok(())
}

/// All ablations, in order.
pub fn all(w: &mut dyn Write) -> io::Result<()> {
    for (name, f) in ABLATIONS {
        writeln!(w, "## {name}")?;
        f(w)?;
    }
    Ok(())
}

/// Registry of the ablation experiments.
pub const ABLATIONS: &[(&str, crate::figures::ExperimentFn)] = &[
    ("ablation_transports", ablation_transports),
    ("ablation_nic_generations", ablation_nic_generations),
    ("ablation_erew", ablation_erew),
    ("ablation_param_selection", ablation_param_selection),
    ("ablation_pipelining", ablation_pipelining),
    ("ablation_load_latency", ablation_load_latency),
    ("ablation_farm", ablation_farm),
];
