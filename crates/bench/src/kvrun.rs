//! One-shot runner for the KV systems: spawn, warm up, measure, report.
//!
//! [`run_kv`] measures in one sweep; [`run_kv_telemetry`] additionally
//! samples the system's metric registry at fixed sim-time intervals and
//! writes the full telemetry bundle (metrics CSV/JSON, time series,
//! Chrome trace) to a directory.

use std::fs::File;
use std::io;
use std::path::Path;

use rfp_kvstore::{KvSystem, SystemConfig};
use rfp_simnet::{SimSpan, Simulation, TimeSeriesSampler};

/// Everything one measurement window yields.
#[derive(Clone, Debug)]
pub struct KvRun {
    /// Completed requests per second, in millions.
    pub mops: f64,
    /// Mean end-to-end latency in µs.
    pub mean_latency_us: f64,
    /// Median latency in µs.
    pub p50_us: f64,
    /// 99th-percentile latency in µs.
    pub p99_us: f64,
    /// Latency CDF points `(µs, cumulative probability)`.
    pub cdf: Vec<(f64, f64)>,
    /// Server in-bound one-sided ops per completed request.
    pub inbound_per_req: f64,
    /// Server out-bound one-sided ops per completed request.
    pub outbound_per_req: f64,
    /// Server in-bound payload bytes per completed request (the §5
    /// bandwidth-waste comparison: FaRM-style GETs fetch whole
    /// neighborhoods).
    pub inbound_bytes_per_req: f64,
    /// Mean client-thread CPU utilisation (0..1).
    pub client_util: f64,
    /// Mean remote-fetch attempts per call (RFP connections only).
    pub mean_attempts: f64,
    /// Fraction of calls needing more than one fetch attempt.
    pub frac_attempts_gt1: f64,
    /// Fraction of calls whose retry count exceeded one (the paper's
    /// Table 3 "percentage of N > 1", N = failed-fetch retries), i.e.
    /// three or more fetch attempts.
    pub frac_retries_gt1: f64,
    /// Largest fetch-attempt count observed.
    pub max_attempts: u32,
    /// Mode switches into server-reply across all connections.
    pub switches_to_reply: u64,
    /// One-sided ops per GET on the bypass path (Pilaf only).
    pub bypass_ops_per_get: f64,
    /// Checksum retries observed by bypass GETs (Pilaf only).
    pub crc_retries: u64,
}

/// Spawns `spawn(cfg)`, warms up `warmup`, measures `window`, and
/// aggregates the statistics.
pub fn run_kv(
    spawn: impl FnOnce(&mut Simulation, &SystemConfig) -> KvSystem,
    cfg: &SystemConfig,
    warmup: SimSpan,
    window: SimSpan,
) -> KvRun {
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn(&mut sim, cfg);
    sim.run_for(warmup);
    sys.reset_measurements();
    let t0 = sim.now();
    sim.run_for(window);
    collect_run(&sys, (sim.now() - t0).as_secs_f64())
}

/// Rows sampled across a [`run_kv_telemetry`] measurement window (plus
/// one zero baseline row at the window start).
pub const TELEMETRY_SAMPLES: u64 = 40;

/// Like [`run_kv`], but advances the measurement window in
/// [`TELEMETRY_SAMPLES`] fixed sim-time steps, sampling every registered
/// metric after each, then writes to `dir`:
///
/// * `metrics.csv` / `metrics.json` — the end-of-window registry snapshot,
/// * `timeseries.csv` — the sampled series (`time_ns` + one column per metric),
/// * `trace.json` — retained request spans as Chrome trace events.
///
/// All four files are byte-deterministic for a given configuration.
pub fn run_kv_telemetry(
    spawn: impl FnOnce(&mut Simulation, &SystemConfig) -> KvSystem,
    cfg: &SystemConfig,
    warmup: SimSpan,
    window: SimSpan,
    dir: &Path,
) -> io::Result<KvRun> {
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn(&mut sim, cfg);
    sim.run_for(warmup);
    sys.reset_measurements();
    let mut sampler = TimeSeriesSampler::new(sys.registry.clone(), Vec::new());
    let t0 = sim.now();
    sampler.sample(sim.now());
    let step = (window.as_nanos() / TELEMETRY_SAMPLES).max(1);
    let mut covered = 0u64;
    while covered < window.as_nanos() {
        let chunk = step.min(window.as_nanos() - covered);
        sim.run_for(SimSpan::nanos(chunk));
        covered += chunk;
        sampler.sample(sim.now());
    }
    let run = collect_run(&sys, (sim.now() - t0).as_secs_f64());

    std::fs::create_dir_all(dir)?;
    let snap = sys.registry.snapshot();
    snap.write_csv(&mut File::create(dir.join("metrics.csv"))?)?;
    snap.write_json(&mut File::create(dir.join("metrics.json"))?)?;
    sampler.write_csv(&mut File::create(dir.join("timeseries.csv"))?)?;
    sys.spans
        .write_chrome_trace(&mut File::create(dir.join("trace.json"))?)?;
    Ok(run)
}

/// Aggregates one finished measurement window; also folds the headline
/// numbers into the process-wide [`bench
/// registry`](crate::telemetry::bench_registry).
fn collect_run(sys: &KvSystem, secs: f64) -> KvRun {
    let stats = &sys.stats;
    let completed = stats.completed.get().max(1);
    let counters = sys.server_machine.nic().counters();
    let us = |s: Option<SimSpan>| s.map(|v| v.as_micros_f64()).unwrap_or(0.0);

    let (mut attempts_sum, mut attempts_gt1, mut retries_gt1, mut calls) = (0.0, 0.0, 0.0, 0u64);
    let (mut max_attempts, mut switches) = (0u32, 0u64);
    for c in &sys.rfp_clients {
        let s = c.stats();
        calls += s.calls();
        attempts_sum += s.mean_attempts() * s.calls() as f64;
        attempts_gt1 += s.frac_attempts_above(1) * s.calls() as f64;
        retries_gt1 += s.frac_attempts_above(2) * s.calls() as f64;
        max_attempts = max_attempts.max(s.max_attempts());
        switches += s.switches_to_reply();
    }
    let calls_f = calls.max(1) as f64;

    let bench = crate::telemetry::bench_registry();
    bench.counter("bench.runs").incr();
    bench.counter("bench.completed").add(stats.completed.get());
    bench.counter("bench.switches.to_reply").add(switches);
    if let Some(mean) = stats.latency.mean() {
        bench.histogram("bench.run.mean_latency").record(mean);
    }

    KvRun {
        mops: stats.completed.get() as f64 / secs / 1e6,
        mean_latency_us: us(stats.latency.mean()),
        p50_us: us(stats.latency.percentile(50.0)),
        p99_us: us(stats.latency.percentile(99.0)),
        cdf: stats
            .latency
            .cdf(100)
            .into_iter()
            .map(|(l, p)| (l.as_micros_f64(), p))
            .collect(),
        inbound_per_req: counters.inbound_ops as f64 / completed as f64,
        outbound_per_req: counters.outbound_ops as f64 / completed as f64,
        inbound_bytes_per_req: counters.inbound_bytes as f64 / completed as f64,
        client_util: sys.mean_client_utilization(),
        mean_attempts: attempts_sum / calls_f,
        frac_attempts_gt1: attempts_gt1 / calls_f,
        frac_retries_gt1: retries_gt1 / calls_f,
        max_attempts,
        switches_to_reply: switches,
        bypass_ops_per_get: stats.bypass_ops.get() as f64 / stats.gets.get().max(1) as f64,
        crc_retries: stats.crc_retries.get(),
    }
}
