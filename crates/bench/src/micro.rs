//! Micro-benchmark drivers for the §2 hardware-characterisation figures
//! (3, 4, 5, 6): saturation loops of raw one-sided verbs.

use std::rc::Rc;

use rfp_paradigms::BypassClient;
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{SimSpan, Simulation};

/// Cluster size used by the paper's micro-benchmarks (1 server + 7
/// clients).
pub const MACHINES: usize = 8;

/// Measures the server's **in-bound** IOPS (MOPS): 7 client machines ×
/// `threads_per_client` threads issue synchronous READs of `bytes`.
pub fn inbound_mops(threads_per_client: usize, bytes: usize, window: SimSpan) -> f64 {
    inbound_mops_with(
        ClusterProfile::paper_testbed(),
        threads_per_client,
        bytes,
        window,
    )
}

/// [`inbound_mops`] against an arbitrary hardware profile (used by the
/// NIC-generation ablation).
pub fn inbound_mops_with(
    profile: ClusterProfile,
    threads_per_client: usize,
    bytes: usize,
    window: SimSpan,
) -> f64 {
    let mut sim = Simulation::new(101);
    let cluster = Cluster::new(&mut sim, profile, MACHINES);
    let server = cluster.machine(0);
    let remote = server.alloc_mr(bytes.max(64) * 2);

    for c in 1..MACHINES {
        let client = cluster.machine(c);
        for t in 0..threads_per_client {
            let qp = cluster.qp(c, 0);
            let local = client.alloc_mr(bytes.max(64) * 2);
            let thread = client.thread(format!("c{c}.{t}"));
            let r = Rc::clone(&remote);
            sim.spawn(async move {
                loop {
                    qp.read(&thread, &local, 0, &r, 0, bytes).await;
                }
            });
        }
    }

    sim.run_for(SimSpan::millis(1));
    server.nic().reset_counters();
    let t0 = sim.now();
    sim.run_for(window);
    let ops = server.nic().counters().inbound_ops;
    record_micro_run("inbound", ops);
    ops as f64 / (sim.now() - t0).as_secs_f64() / 1e6
}

/// Measures the server's **out-bound** IOPS (MOPS): `threads` server
/// threads issue synchronous WRITEs of `bytes` to the 7 clients.
pub fn outbound_mops(threads: usize, bytes: usize, window: SimSpan) -> f64 {
    outbound_mops_with(ClusterProfile::paper_testbed(), threads, bytes, window)
}

/// [`outbound_mops`] against an arbitrary hardware profile.
pub fn outbound_mops_with(
    profile: ClusterProfile,
    threads: usize,
    bytes: usize,
    window: SimSpan,
) -> f64 {
    let mut sim = Simulation::new(102);
    let cluster = Cluster::new(&mut sim, profile, MACHINES);
    let server = cluster.machine(0);

    for t in 0..threads {
        let target = 1 + (t % (MACHINES - 1));
        let qp = cluster.qp(0, target);
        let local = server.alloc_mr(bytes.max(64) * 2);
        let remote = cluster.machine(target).alloc_mr(bytes.max(64) * 2);
        let thread = server.thread(format!("s{t}"));
        sim.spawn(async move {
            loop {
                qp.write(&thread, &local, 0, &remote, 0, bytes).await;
            }
        });
    }

    sim.run_for(SimSpan::millis(1));
    server.nic().reset_counters();
    let t0 = sim.now();
    sim.run_for(window);
    let ops = server.nic().counters().outbound_ops;
    record_micro_run("outbound", ops);
    ops as f64 / (sim.now() - t0).as_secs_f64() / 1e6
}

/// Figure 6 driver: 21 client threads complete "requests" of `rounds`
/// dependent 32 B READs each. Returns `(request MOPS, raw IOPS)`.
pub fn amplified_throughput(rounds: u32, window: SimSpan) -> (f64, f64) {
    let mut sim = Simulation::new(103);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), MACHINES);
    let server = cluster.machine(0);
    let region = server.alloc_mr(4096);
    let completed = Rc::new(std::cell::Cell::new(0u64));

    // The paper tests Figure 6 with 21 client threads (footnote 3).
    for i in 0..21 {
        let machine = 1 + (i % (MACHINES - 1));
        let client = BypassClient::new(cluster.qp(machine, 0), 512);
        let thread = cluster.machine(machine).thread(format!("c{i}"));
        let r = Rc::clone(&region);
        let done = Rc::clone(&completed);
        sim.spawn(async move {
            loop {
                client.amplified_request(&thread, &r, rounds, 32).await;
                done.set(done.get() + 1);
            }
        });
    }

    sim.run_for(SimSpan::millis(1));
    server.nic().reset_counters();
    completed.set(0);
    let t0 = sim.now();
    sim.run_for(window);
    let secs = (sim.now() - t0).as_secs_f64();
    record_micro_run("amplified", server.nic().counters().inbound_ops);
    crate::telemetry::bench_registry()
        .counter("bench.micro.amplified.requests")
        .add(completed.get());
    let reqs = completed.get() as f64 / secs / 1e6;
    let iops = server.nic().counters().inbound_ops as f64 / secs / 1e6;
    (reqs, iops)
}

/// Folds one micro-benchmark measurement into the process-wide bench
/// registry so figure binaries built purely on these drivers still
/// export a populated `BENCH_<name>.json`.
fn record_micro_run(direction: &str, ops: u64) {
    let bench = crate::telemetry::bench_registry();
    bench.counter("bench.micro.runs").incr();
    bench
        .counter(&format!("bench.micro.{direction}.ops"))
        .add(ops);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drivers_produce_sane_numbers() {
        let w = SimSpan::millis(2);
        let inb = inbound_mops(5, 32, w);
        assert!((10.0..12.0).contains(&inb), "{inb}");
        let out = outbound_mops(4, 32, w);
        assert!((1.8..2.3).contains(&out), "{out}");
        let (reqs, iops) = amplified_throughput(4, w);
        assert!(reqs > 0.5 && iops > 3.9 * reqs, "{reqs} {iops}");
    }
}
