//! Table 3: remote-fetch retry statistics per workload.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::table3(&mut out).expect("write to stdout");
}
