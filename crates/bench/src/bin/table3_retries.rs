//! Table 3: remote-fetch retry statistics per workload.

fn main() {
    rfp_bench::run_experiment("table3_retries");
}
