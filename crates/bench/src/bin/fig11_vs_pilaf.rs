//! Figure 11: Jakiro vs the Pilaf-style store at 50% GET.

fn main() {
    rfp_bench::run_experiment("fig11_vs_pilaf");
}
