//! Figure 11: Jakiro vs the Pilaf-style store at 50% GET.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig11(&mut out).expect("write to stdout");
}
