//! Figure 14: hybrid mode switch across request process time.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig14(&mut out).expect("write to stdout");
}
