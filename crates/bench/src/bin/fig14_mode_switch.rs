//! Figure 14: hybrid mode switch across request process time.

fn main() {
    rfp_bench::run_experiment("fig14_mode_switch");
}
