//! Figure 17: throughput vs value size.

fn main() {
    rfp_bench::run_experiment("fig17_value_size");
}
