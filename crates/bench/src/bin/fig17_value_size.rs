//! Figure 17: throughput vs value size.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig17(&mut out).expect("write to stdout");
}
