//! Figure 9: repeated remote fetching vs server-reply across process time.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig09(&mut out).expect("write to stdout");
}
