//! Figure 9: repeated remote fetching vs server-reply across process time.

fn main() {
    rfp_bench::run_experiment("fig09_process_time");
}
