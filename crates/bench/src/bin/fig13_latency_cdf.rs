//! Figure 13: latency CDF at peak throughput.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig13(&mut out).expect("write to stdout");
}
