//! Figure 13: latency CDF at peak throughput.

fn main() {
    rfp_bench::run_experiment("fig13_latency_cdf");
}
