//! Figure 16: throughput vs GET percentage (uniform).

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig16(&mut out).expect("write to stdout");
}
