//! Figure 16: throughput vs GET percentage (uniform).

fn main() {
    rfp_bench::run_experiment("fig16_get_ratio");
}
