//! Overload sweep: goodput vs offered load, with and without the
//! overload-control subsystem (credit-based admission, deadline-aware
//! shedding, cooperative client backoff).
//!
//! The rig is the Jakiro KV system with an artificial per-request
//! process time that makes the server CPU the bottleneck, swept over
//! closed-loop client counts from 0.5× to 4× of the saturation point.
//! Goodput counts only requests completed within the deadline; under
//! overload the uncontrolled system keeps executing every request —
//! all of them late — while the controlled one sheds cheaply and keeps
//! the server's cycles on requests that can still make their deadline.
//!
//! Also verifies the subsystem's headline cost claim: a shed request
//! costs the server exactly **two in-bound ops and zero out-bound ops**
//! (the client's request WRITE plus one verdict-bearing fetch READ).
//!
//! ```text
//! cargo run --release -p rfp-bench --bin overload [seed]
//! ```

use std::rc::Rc;

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_core::{connect, serve_loop, OverloadConfig, RespStatus, RfpConfig};
use rfp_kvstore::systems::spawn_jakiro;
use rfp_kvstore::SystemConfig;
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{RetryPolicy, SimSpan, Simulation};

/// Closed-loop clients at 1× offered load (calibrated so the server CPU
/// saturates right around here).
const BASE_CLIENTS: usize = 6;
/// Offered-load multipliers swept (client count = mult × BASE_CLIENTS).
const MULTS: [f64; 5] = [0.5, 1.0, 2.0, 3.0, 4.0];
/// Artificial per-request process time: makes server CPU the bottleneck.
const EXTRA_PROCESS: SimSpan = SimSpan::micros(2);
/// Server threads (= CPU capacity ≈ threads / process time).
const SERVER_THREADS: usize = 2;
/// The latency bound goodput is measured against — also the shedding
/// deadline stamped on every request when the subsystem is on.
const DEADLINE: SimSpan = SimSpan::micros(20);
/// Warm-up before, and length of, each measurement window.
const WARMUP: SimSpan = SimSpan::millis(2);
const WINDOW: SimSpan = SimSpan::millis(8);

struct Row {
    mult: f64,
    clients: usize,
    controlled: bool,
    mops: f64,
    goodput: f64,
    p99_us: f64,
    shed_rate: f64,
}

fn sweep_cfg(seed: u64, clients: usize, controlled: bool) -> SystemConfig {
    let mut cfg = SystemConfig {
        server_threads: SERVER_THREADS,
        client_machines: clients,
        clients_per_machine: 1,
        extra_process: EXTRA_PROCESS,
        // The overload path must stand on its own against CPU pile-up;
        // outliers are a different experiment's tail.
        outlier_prob: 0.0,
        seed,
        ..SystemConfig::default()
    };
    if controlled {
        cfg.rfp.overload = OverloadConfig {
            enabled: true,
            deadline: DEADLINE,
            // A short queue and fast, tightly-capped re-admission: a
            // request rejected once must still be able to finish within
            // its 20µs deadline, and admitted batches must not queue
            // past it either.
            queue_limit: 4,
            retry: RetryPolicy::exponential(3, SimSpan::micros(2), SimSpan::micros(8), 0.3),
            credit_wait: SimSpan::micros(2),
            probe_pause: SimSpan::micros(2),
            ..OverloadConfig::default()
        };
    }
    cfg
}

fn run_point(seed: u64, mult: f64, controlled: bool) -> Row {
    let clients = ((BASE_CLIENTS as f64 * mult).round() as usize).max(1);
    let cfg = sweep_cfg(seed, clients, controlled);
    let mut sim = Simulation::new(seed);
    let sys = spawn_jakiro(&mut sim, &cfg);
    sim.run_for(WARMUP);
    sys.reset_measurements();
    let t0 = sim.now();
    sim.run_for(WINDOW);
    let secs = (sim.now() - t0).as_secs_f64();

    let st = &sys.stats;
    let completed = st.completed.get();
    let rejected = st.rejected_busy.get() + st.rejected_shed.get();
    let mops = completed as f64 / secs / 1e6;
    Row {
        mult,
        clients,
        controlled,
        mops,
        goodput: mops * st.latency.frac_at_most(DEADLINE),
        p99_us: st
            .latency
            .percentile(99.0)
            .map(|s| s.as_micros_f64())
            .unwrap_or(0.0),
        shed_rate: rejected as f64 / (completed + rejected).max(1) as f64,
    }
}

/// Pins the shed cost on the wire: one request deliberately stamped
/// with an already-expired deadline is shed by the server, and the
/// server NIC must account exactly 2 in-bound ops (request WRITE +
/// verdict fetch READ) and 0 out-bound ops for it.
fn shed_cost_check(seed: u64) -> (u64, u64) {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        overload: OverloadConfig {
            enabled: true,
            ..OverloadConfig::default()
        },
        ..RfpConfig::default()
    };
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));
    let ct = cm.thread("client");
    let server_m = Rc::clone(&sm);
    let counted = Rc::new(std::cell::Cell::new((0u64, 0u64)));
    let out_counts = Rc::clone(&counted);
    sim.spawn(async move {
        // Let the serve loop settle, then snapshot the NIC.
        ct.handle().sleep(SimSpan::micros(5)).await;
        let before = server_m.nic().counters();
        let out = client.call_overload(&ct, b"doomed", Some(ct.now())).await;
        assert_eq!(out.info.status, RespStatus::Shed, "expired call must shed");
        let after = server_m.nic().counters();
        out_counts.set((
            after.inbound_ops - before.inbound_ops,
            after.outbound_ops - before.outbound_ops,
        ));
    });
    sim.run_for(SimSpan::millis(1));
    counted.get()
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    let (inbound, outbound) = shed_cost_check(seed);
    assert_eq!(
        (inbound, outbound),
        (2, 0),
        "a shed must cost exactly one request WRITE + one fetch READ in-bound"
    );

    println!("# overload sweep: Jakiro goodput vs offered load, control off/on");
    println!(
        "# seed={seed} base_clients={BASE_CLIENTS} threads={SERVER_THREADS} \
         process={}us deadline={}us window={}ms",
        EXTRA_PROCESS.as_nanos() / 1_000,
        DEADLINE.as_nanos() / 1_000,
        WINDOW.as_nanos() / 1_000_000,
    );
    println!(
        "# shed_cost_check: inbound={inbound} outbound={outbound} (request WRITE + verdict READ)"
    );
    println!("mult,clients,control,mops,goodput_mops,p99_us,shed_rate");

    let bench = bench_registry();
    let mut rows = Vec::new();
    for &mult in &MULTS {
        for controlled in [false, true] {
            let row = run_point(seed, mult, controlled);
            let mode = if controlled { "on" } else { "off" };
            println!(
                "{:.1},{},{mode},{:.4},{:.4},{:.2},{:.4}",
                row.mult, row.clients, row.mops, row.goodput, row.p99_us, row.shed_rate
            );
            for (metric, value) in [
                ("goodput_kops", (row.goodput * 1e3) as u64),
                ("p99_ns", (row.p99_us * 1e3) as u64),
                ("shed_permille", (row.shed_rate * 1e3) as u64),
            ] {
                bench
                    .counter(&format!("bench.overload.x{}.{mode}.{metric}", row.mult))
                    .add(value);
            }
            rows.push(row);
        }
    }

    // The headline claim: at 4× saturation the controlled system keeps
    // most of its peak goodput while the uncontrolled one collapses.
    let peak = rows.iter().map(|r| r.goodput).fold(0.0, f64::max);
    let at = |mult: f64, controlled: bool| {
        rows.iter()
            .find(|r| r.mult == mult && r.controlled == controlled)
            .expect("swept point")
            .goodput
    };
    let (on4, off4) = (at(4.0, true), at(4.0, false));
    assert!(
        on4 >= 0.70 * peak,
        "controlled goodput collapsed at 4x: {on4:.4} vs peak {peak:.4}"
    );
    assert!(
        off4 < 0.70 * peak,
        "uncontrolled goodput failed to degrade at 4x: {off4:.4} vs peak {peak:.4} — \
         the sweep no longer saturates the server"
    );

    let path = emit_bench_json("overload").expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}
